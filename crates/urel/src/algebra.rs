//! The parsimonious translation of positive relational algebra onto
//! U-relations (§2.3, following Antova–Jansen–Koch–Olteanu, ICDE 2008).
//!
//! Each positive-RA operator maps to the *same* operator over the
//! representation, with condition-column bookkeeping:
//!
//! * σ filters on data columns only, WSDs ride along;
//! * π keeps WSDs and performs **no** duplicate elimination (distinct
//!   tuples with different conditions are different evidence);
//! * ⋈ concatenates data and *conjoins* WSDs, dropping pairs whose
//!   conjunction is unsatisfiable;
//! * ∪ is bag union.
//!
//! Evaluation cost is polynomial in the size of the representation and
//! completely independent of the (possibly exponential) number of worlds —
//! the property benchmarked by experiment E5.

use std::sync::Arc;

use maybms_engine::hash::FastMap;
use maybms_engine::ops::{
    tuple_key_hash, tuple_keys_eq, ProjectItem, PAR_MIN_CHUNK, PAR_MIN_ROWS,
};
use maybms_engine::tuple::TupleBatch;
use maybms_engine::{EngineError, Expr};
use maybms_par::ThreadPool;

use crate::error::Result;
use crate::urelation::{zip_batch, URelation, UTuple};
use crate::wsd::Wsd;

/// σ: keep tuples whose *data* satisfies the predicate. Runs as a
/// selection vector — WSDs and row data are shared with the input, not
/// copied. Large inputs evaluate the selection vector chunk-parallel;
/// output is identical to the sequential scan.
pub fn select(input: &URelation, predicate: &Expr) -> Result<URelation> {
    if input.len() >= PAR_MIN_ROWS {
        let pool = maybms_par::pool();
        if pool.threads() > 1 {
            return select_with(input, predicate, &pool, PAR_MIN_CHUNK);
        }
    }
    let bound = predicate.bind(input.schema())?;
    let mut sel = Vec::new();
    for (i, t) in input.tuples().iter().enumerate() {
        if bound.eval_predicate(&t.data)? {
            sel.push(i);
        }
    }
    Ok(input.gather(&sel))
}

/// [`select`] on an explicit pool: chunk-local selection vectors are
/// concatenated in chunk order, so the gathered output equals the
/// sequential scan row-for-row at any thread count.
pub fn select_with(
    input: &URelation,
    predicate: &Expr,
    pool: &ThreadPool,
    min_chunk: usize,
) -> Result<URelation> {
    let bound = predicate.bind(input.schema())?;
    let chunk = maybms_par::auto_chunk(input.len(), pool.threads(), min_chunk);
    let partials: Vec<Result<Vec<usize>>> =
        pool.par_map_chunks(input.len(), chunk, |range| {
            let mut sel = Vec::new();
            for i in range {
                if bound.eval_predicate(&input.tuples()[i].data)? {
                    sel.push(i);
                }
            }
            Ok(sel)
        });
    let mut sel = Vec::new();
    for p in partials {
        sel.extend(p?);
    }
    Ok(input.gather(&sel))
}

/// π: evaluate the projection list per tuple; conditions are preserved and
/// duplicates are *not* eliminated (§2.2 forbids `select distinct` on
/// uncertain relations precisely because conditions differ per duplicate).
pub fn project(input: &URelation, items: &[ProjectItem]) -> Result<URelation> {
    let in_schema = input.schema();
    let bound: Vec<(Expr, maybms_engine::Field)> = items
        .iter()
        .map(|item| {
            let e = item.expr.bind(in_schema)?;
            let dtype = e.data_type(in_schema);
            Ok::<_, EngineError>((e, maybms_engine::Field::new(item.name.clone(), dtype)))
        })
        .collect::<std::result::Result<_, _>>()?;
    let schema = Arc::new(maybms_engine::Schema::new(
        bound.iter().map(|(_, f)| f.clone()).collect(),
    ));
    let mut batch = TupleBatch::new();
    let mut wsds = Vec::with_capacity(input.len());
    for t in input.tuples() {
        batch.begin_row();
        for (e, _) in &bound {
            batch.push_value(e.eval(&t.data)?);
        }
        wsds.push(t.wsd.clone());
    }
    Ok(URelation::new(schema, zip_batch(batch, wsds)))
}

/// ⋈ (nested loop): concatenate data, conjoin conditions, drop
/// unsatisfiable combinations; optional predicate over the combined data
/// schema.
pub fn nested_loop_join(
    left: &URelation,
    right: &URelation,
    predicate: Option<&Expr>,
) -> Result<URelation> {
    let schema = Arc::new(left.schema().join(right.schema()));
    let bound = predicate.map(|p| p.bind(&schema)).transpose()?;
    let mut batch = TupleBatch::new();
    let mut wsds = Vec::new();
    let mut gov = maybms_gov::Ticker::new();
    for l in left.tuples() {
        for r in right.tuples() {
            // Quadratic output: tick the governor per candidate so a
            // runaway cross product stays cancellable and budget-bound.
            gov.tick().map_err(EngineError::from)?;
            let Some(wsd) = l.wsd.conjoin(&r.wsd) else { continue };
            // Stage the candidate row in the batch, evaluate in place,
            // and drop it if the predicate rejects — one copy per row.
            batch.push_concat(&l.data, &r.data);
            if let Some(p) = &bound {
                if !p.eval_predicate_values(batch.last_row())? {
                    batch.abandon_last();
                    continue;
                }
            }
            wsds.push(wsd);
        }
    }
    Ok(URelation::new(schema, zip_batch(batch, wsds)))
}

/// ⋈ (hash): equi-join on positional keys with WSD conjunction. NULL keys
/// never match.
///
/// **Builds on the right input and probes with the left** — the fixed
/// convention shared with the engine's `hash_join` and the morsel-driven
/// probes in `maybms-pipe`: output rows are emitted in left-row order
/// with right-side candidates in build (ascending row) order, so a
/// streaming executor can probe the left side morsel-by-morsel and
/// reproduce this output bit-for-bit. The build table maps a 64-bit key
/// hash to build-row indices (no per-row `Vec<Value>` key allocation);
/// hash matches are verified by comparing the key columns before the
/// WSDs are conjoined. Single-column keys hash columnar. Large inputs
/// dispatch to the chunk-parallel path ([`hash_join_with`]); output is
/// identical either way.
pub fn hash_join(
    left: &URelation,
    right: &URelation,
    left_keys: &[usize],
    right_keys: &[usize],
) -> Result<URelation> {
    if left.len() + right.len() >= PAR_MIN_ROWS {
        let pool = maybms_par::pool();
        if pool.threads() > 1 {
            return hash_join_with(left, right, left_keys, right_keys, &pool, PAR_MIN_CHUNK);
        }
    }
    if left_keys.len() != right_keys.len() || left_keys.is_empty() {
        return Err(EngineError::InvalidOperator {
            message: "hash join requires matching, non-empty key lists".into(),
        }
        .into());
    }
    let schema = Arc::new(left.schema().join(right.schema()));
    let mut table: FastMap<u64, Vec<usize>> =
        FastMap::with_capacity_and_hasher(right.len(), Default::default());
    for (i, t) in right.tuples().iter().enumerate() {
        if let Some(h) = tuple_key_hash(&t.data, right_keys) {
            table.entry(h).or_default().push(i);
        }
    }
    let mut batch = TupleBatch::new();
    let mut wsds = Vec::new();
    for l in left.tuples() {
        let Some(h) = tuple_key_hash(&l.data, left_keys) else { continue };
        let Some(candidates) = table.get(&h) else { continue };
        for &ri in candidates {
            let r = &right.tuples()[ri];
            if !tuple_keys_eq(&r.data, right_keys, &l.data, left_keys) {
                continue; // hash collision
            }
            if let Some(wsd) = l.wsd.conjoin(&r.wsd) {
                batch.push_concat(&l.data, &r.data);
                wsds.push(wsd);
            }
        }
    }
    Ok(URelation::new(schema, zip_batch(batch, wsds)))
}

/// [`hash_join`] on an explicit pool: hash-partitioned parallel build
/// over the right side, chunked parallel probe over the left, exactly
/// mirroring the engine's `hash_join_with` but conjoining WSDs (and
/// dropping unsatisfiable pairs) per emitted row.
///
/// Determinism: partition tables insert build rows in ascending index
/// order (the sequential candidate order) and probe chunk outputs are
/// concatenated in chunk order, so the output U-relation — tuples, WSDs,
/// and order — is identical to the sequential join at any thread count.
pub fn hash_join_with(
    left: &URelation,
    right: &URelation,
    left_keys: &[usize],
    right_keys: &[usize],
    pool: &ThreadPool,
    min_chunk: usize,
) -> Result<URelation> {
    if left_keys.len() != right_keys.len() || left_keys.is_empty() {
        return Err(EngineError::InvalidOperator {
            message: "hash join requires matching, non-empty key lists".into(),
        }
        .into());
    }
    let schema = Arc::new(left.schema().join(right.schema()));

    // Partitioned build: partition p owns hashes ≡ p (mod P). The
    // chunked hash pass pre-buckets (hash, row) pairs by partition, so
    // each partition task touches only its own pairs (O(rows) total
    // build work); chunk order = row order keeps every bucket's
    // candidate list in the sequential insertion order.
    let parts = if pool.threads() > 1 && right.len() >= min_chunk {
        pool.threads()
    } else {
        1
    };
    let chunk = maybms_par::auto_chunk(right.len(), pool.threads(), min_chunk);
    let bucketed: Vec<Vec<Vec<(u64, u32)>>> =
        pool.par_map_chunks(right.len(), chunk, |range| {
            let mut buckets: Vec<Vec<(u64, u32)>> = vec![Vec::new(); parts];
            for i in range {
                if let Some(h) = tuple_key_hash(&right.tuples()[i].data, right_keys) {
                    buckets[(h as usize) % parts].push((h, i as u32));
                }
            }
            buckets
        });
    let tables: Vec<FastMap<u64, Vec<usize>>> =
        pool.par_map((0..parts).collect::<Vec<_>>(), |p| {
            let mut table: FastMap<u64, Vec<usize>> = FastMap::with_capacity_and_hasher(
                right.len() / parts + 1,
                Default::default(),
            );
            for chunk_buckets in &bucketed {
                for &(h, i) in &chunk_buckets[p] {
                    table.entry(h).or_default().push(i as usize);
                }
            }
            table
        });

    // Chunked probe over the left input, with WSD conjunction.
    let chunk = maybms_par::auto_chunk(left.len(), pool.threads(), min_chunk);
    let outputs: Vec<Vec<UTuple>> = pool.par_map_chunks(left.len(), chunk, |range| {
        let mut batch = TupleBatch::new();
        let mut wsds: Vec<Wsd> = Vec::new();
        for li in range {
            let l = &left.tuples()[li];
            let Some(h) = tuple_key_hash(&l.data, left_keys) else { continue };
            let Some(candidates) = tables[(h as usize) % parts].get(&h) else { continue };
            for &ri in candidates {
                let r = &right.tuples()[ri];
                if !tuple_keys_eq(&r.data, right_keys, &l.data, left_keys) {
                    continue; // hash collision
                }
                if let Some(wsd) = l.wsd.conjoin(&r.wsd) {
                    batch.push_concat(&l.data, &r.data);
                    wsds.push(wsd);
                }
            }
        }
        zip_batch(batch, wsds)
    });
    let mut tuples = Vec::with_capacity(outputs.iter().map(Vec::len).sum());
    for o in outputs {
        tuples.extend(o);
    }
    Ok(URelation::new(schema, tuples))
}

/// ∪: multiset union (§2.2 — `union` over uncertain relations is the
/// multiset union of the representations).
pub fn union_all(inputs: &[&URelation]) -> Result<URelation> {
    let Some(first) = inputs.first() else {
        return Err(EngineError::InvalidOperator {
            message: "union of zero inputs".into(),
        }
        .into());
    };
    for r in &inputs[1..] {
        if r.schema().len() != first.schema().len() {
            return Err(EngineError::SchemaMismatch {
                message: format!(
                    "UNION arity mismatch: {} vs {}",
                    first.schema().len(),
                    r.schema().len()
                ),
            }
            .into());
        }
    }
    let mut tuples = Vec::with_capacity(inputs.iter().map(|r| r.len()).sum());
    for r in inputs {
        tuples.extend(r.tuples().iter().cloned());
    }
    Ok(URelation::new(first.schema().clone(), tuples))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::urelation::UTuple;
    use crate::var::Var;
    use crate::world_table::WorldTable;
    use crate::wsd::Wsd;
    use maybms_engine::{rel, BinaryOp, DataType};

    /// Two players, each with a variable choosing their state.
    fn setup() -> (WorldTable, URelation) {
        let mut wt = WorldTable::new();
        let x = wt.new_var(&[0.8, 0.2]).unwrap();
        let y = wt.new_var(&[0.5, 0.5]).unwrap();
        let base = rel(
            &[("player", DataType::Text), ("state", DataType::Text)],
            vec![
                vec!["Bryant".into(), "F".into()],
                vec!["Bryant".into(), "SE".into()],
                vec!["Duncan".into(), "F".into()],
                vec!["Duncan".into(), "SL".into()],
            ],
        );
        let mut u = URelation::from_certain(&base);
        u.tuples_mut()[0].wsd = Wsd::of(x, 0);
        u.tuples_mut()[1].wsd = Wsd::of(x, 1);
        u.tuples_mut()[2].wsd = Wsd::of(y, 0);
        u.tuples_mut()[3].wsd = Wsd::of(y, 1);
        (wt, u)
    }

    #[test]
    fn select_preserves_conditions() {
        let (_, u) = setup();
        let out = select(&u, &Expr::col("state").eq(Expr::lit("F"))).unwrap();
        assert_eq!(out.len(), 2);
        assert_eq!(out.tuples()[0].wsd, Wsd::of(Var(0), 0));
    }

    #[test]
    fn project_keeps_duplicate_tuples_with_their_conditions() {
        let (_, u) = setup();
        let out = project(&u, &[ProjectItem::col("player")]).unwrap();
        assert_eq!(out.len(), 4); // no dedup: two Bryant rows, two Duncan rows
        assert_eq!(out.schema().names(), vec!["player"]);
    }

    #[test]
    fn join_conjoins_conditions_and_drops_conflicts() {
        let (_, u) = setup();
        // Self-join on player: tuples of the same player with different
        // alternatives of the same variable must vanish.
        let l = u.clone().with_schema(Arc::new(u.schema().with_qualifier("a")));
        let r = u.clone().with_schema(Arc::new(u.schema().with_qualifier("b")));
        let out = nested_loop_join(
            &l,
            &r,
            Some(&Expr::qcol("a", "player").eq(Expr::qcol("b", "player"))),
        )
        .unwrap();
        // Per player: 2×2 pairs minus 2 conflicting = 2 surviving; ×2 players.
        assert_eq!(out.len(), 4);
        for t in out.tuples() {
            // survivors pair a tuple with itself, so the condition is the
            // single shared assignment
            assert_eq!(t.wsd.len(), 1);
        }
    }

    #[test]
    fn hash_join_agrees_with_nested_loop() {
        let (_, u) = setup();
        let hj = hash_join(&u, &u, &[0], &[0]).unwrap();
        let nl = nested_loop_join(
            &u,
            &u,
            Some(&Expr::ColumnIdx(0).eq(Expr::ColumnIdx(2))),
        )
        .unwrap();
        assert_eq!(hj.len(), nl.len());
        let key = |t: &UTuple| (t.data.clone(), t.wsd.clone());
        let mut a: Vec<_> = hj.tuples().iter().map(key).collect();
        let mut b: Vec<_> = nl.tuples().iter().map(key).collect();
        a.sort_by(|x, y| x.partial_cmp(y).unwrap());
        b.sort_by(|x, y| x.partial_cmp(y).unwrap());
        assert_eq!(a, b);
    }

    #[test]
    fn parallel_join_and_select_identical_to_sequential() {
        let (_, u) = setup();
        // Grow the input so chunking actually splits it (conflicting WSDs
        // included via self-join).
        let mut big = u.clone();
        for _ in 0..4 {
            big = union_all(&[&big, &u]).unwrap();
        }
        let pred = Expr::col("state").eq(Expr::lit("F"));
        let seq_sel = select(&big, &pred).unwrap();
        let seq_join = hash_join(&big, &big, &[0], &[0]).unwrap();
        for threads in [1, 2, 8] {
            let pool = maybms_par::ThreadPool::new(threads);
            let par_sel = select_with(&big, &pred, &pool, 3).unwrap();
            assert_eq!(seq_sel.tuples(), par_sel.tuples(), "select, threads = {threads}");
            let par_join = hash_join_with(&big, &big, &[0], &[0], &pool, 3).unwrap();
            assert_eq!(seq_join.tuples(), par_join.tuples(), "join, threads = {threads}");
        }
    }

    #[test]
    fn union_concatenates() {
        let (_, u) = setup();
        let out = union_all(&[&u, &u]).unwrap();
        assert_eq!(out.len(), 8);
    }

    #[test]
    fn union_arity_checked() {
        let (_, u) = setup();
        let narrow = project(&u, &[ProjectItem::col("player")]).unwrap();
        assert!(union_all(&[&u, &narrow]).is_err());
    }

    /// The core soundness property on a small instance: evaluating the
    /// translated query and instantiating per world equals instantiating
    /// per world and evaluating the ordinary query.
    #[test]
    fn translation_commutes_with_instantiation() {
        let (wt, u) = setup();
        let pred = Expr::col("state").eq(Expr::lit("F"));
        let translated = select(&u, &pred).unwrap();
        for (world, _p) in wt.enumerate_worlds(100).unwrap() {
            let lhs = translated.instantiate(&world);
            let rhs =
                maybms_engine::ops::filter(&u.instantiate(&world), &pred).unwrap();
            assert_eq!(lhs.tuples(), rhs.tuples(), "world {world:?}");
        }
    }

    #[test]
    fn join_commutes_with_instantiation() {
        let (wt, u) = setup();
        let l = u.clone().with_schema(Arc::new(u.schema().with_qualifier("a")));
        let r = u.clone().with_schema(Arc::new(u.schema().with_qualifier("b")));
        let pred = Expr::qcol("a", "player").eq(Expr::qcol("b", "player"));
        let translated = nested_loop_join(&l, &r, Some(&pred)).unwrap();
        for (world, _p) in wt.enumerate_worlds(100).unwrap() {
            let lhs = translated.instantiate(&world);
            let rhs = maybms_engine::ops::nested_loop_join(
                &l.instantiate(&world),
                &r.instantiate(&world),
                Some(&pred),
            )
            .unwrap();
            let mut a = lhs.tuples().to_vec();
            let mut b = rhs.tuples().to_vec();
            a.sort();
            b.sort();
            assert_eq!(a, b, "world {world:?}");
        }
    }

    #[test]
    fn select_condition_on_missing_column_errors() {
        let (_, u) = setup();
        assert!(select(&u, &Expr::col("nope").eq(Expr::lit(1i64))).is_err());
    }

    #[test]
    fn join_with_comparison_predicate() {
        let (_, u) = setup();
        let out = nested_loop_join(
            &u,
            &u,
            Some(
                &Expr::ColumnIdx(1)
                    .binary(BinaryOp::Lt, Expr::ColumnIdx(3)),
            ),
        )
        .unwrap();
        // string comparison on states; just verify it runs and drops
        // conflicting conditions
        for t in out.tuples() {
            assert!(t.wsd.len() <= 2);
        }
    }
}
