//! The world table: the database-wide registry of independent random
//! variables, their finite domains, and their probability distributions.
//!
//! In released MayBMS this is the `W` system table holding
//! `(variable, assignment, probability)` rows; here it is an indexed
//! structure with the same information. The set of possible worlds is the
//! product of the variables' domains; a world's probability is the product
//! of its chosen alternatives' probabilities (§2.1).

use rand::Rng;

use crate::error::{Result, UrelError};
use crate::var::{Assignment, Var};

/// Tolerance for validating that a distribution sums to 1.
const DIST_TOLERANCE: f64 = 1e-6;

/// A total choice of alternatives, one per registered variable
/// (`world[v]` = the alternative variable `v` takes).
pub type World = Vec<u16>;

/// Registry of all random variables in a database.
#[derive(Debug, Clone, Default)]
pub struct WorldTable {
    /// `dists[v]` = probabilities of variable v's alternatives.
    dists: Vec<Vec<f64>>,
}

impl WorldTable {
    /// An empty world table (zero variables; exactly one world).
    pub fn new() -> WorldTable {
        WorldTable::default()
    }

    /// Register a fresh independent variable with the given alternative
    /// probabilities. The distribution must be non-empty, contain only
    /// finite values in `[0, 1]`, and sum to 1 (±1e-6).
    pub fn new_var(&mut self, probs: &[f64]) -> Result<Var> {
        if probs.is_empty() {
            return Err(UrelError::BadDistribution {
                message: "empty distribution".into(),
            });
        }
        if probs.len() > u16::MAX as usize {
            return Err(UrelError::BadDistribution {
                message: format!("domain size {} exceeds u16::MAX", probs.len()),
            });
        }
        let mut sum = 0.0;
        for &p in probs {
            if !p.is_finite() || !(0.0..=1.0).contains(&p) {
                return Err(UrelError::BadDistribution {
                    message: format!("probability {p} outside [0, 1]"),
                });
            }
            sum += p;
        }
        if (sum - 1.0).abs() > DIST_TOLERANCE {
            return Err(UrelError::BadDistribution {
                message: format!("distribution sums to {sum}, expected 1"),
            });
        }
        let var = Var(self.dists.len() as u32);
        self.dists.push(probs.to_vec());
        Ok(var)
    }

    /// Number of registered variables.
    pub fn num_vars(&self) -> usize {
        self.dists.len()
    }

    /// Domain size of `var`.
    pub fn domain_size(&self, var: Var) -> Result<usize> {
        self.dists
            .get(var.0 as usize)
            .map(Vec::len)
            .ok_or(UrelError::UnknownVariable { var: var.0 })
    }

    /// Probability of an assignment.
    pub fn prob(&self, a: Assignment) -> Result<f64> {
        let dist = self
            .dists
            .get(a.var.0 as usize)
            .ok_or(UrelError::UnknownVariable { var: a.var.0 })?;
        dist.get(a.alt as usize).copied().ok_or(UrelError::BadAlternative {
            var: a.var.0,
            alt: a.alt,
            domain: dist.len(),
        })
    }

    /// The full distribution of `var`.
    pub fn distribution(&self, var: Var) -> Result<&[f64]> {
        self.dists
            .get(var.0 as usize)
            .map(Vec::as_slice)
            .ok_or(UrelError::UnknownVariable { var: var.0 })
    }

    /// Number of possible worlds (product of domain sizes), or `None` when
    /// it exceeds `u128`.
    pub fn world_count(&self) -> Option<u128> {
        let mut n: u128 = 1;
        for d in &self.dists {
            n = n.checked_mul(d.len() as u128)?;
        }
        Some(n)
    }

    /// Probability of a full world (product over all variables).
    pub fn world_prob(&self, world: &[u16]) -> Result<f64> {
        if world.len() != self.dists.len() {
            return Err(UrelError::BadDistribution {
                message: format!(
                    "world has {} assignments, expected {}",
                    world.len(),
                    self.dists.len()
                ),
            });
        }
        let mut p = 1.0;
        for (v, &alt) in world.iter().enumerate() {
            p *= self.prob(Assignment::new(Var(v as u32), alt))?;
        }
        Ok(p)
    }

    /// Sample a world (independent draw per variable).
    pub fn sample_world<R: Rng + ?Sized>(&self, rng: &mut R) -> World {
        self.dists.iter().map(|d| sample_categorical(d, rng)).collect()
    }

    /// Sample only the variables in `vars`, writing into a sparse world
    /// overlay; other positions keep the supplied defaults. Used by the
    /// Karp–Luby estimator, which conditions part of a world and samples
    /// the rest.
    pub fn sample_into<R: Rng + ?Sized>(
        &self,
        world: &mut [u16],
        vars: &[Var],
        rng: &mut R,
    ) {
        for &v in vars {
            world[v.0 as usize] = sample_categorical(&self.dists[v.0 as usize], rng);
        }
    }

    /// Iterate every world with its probability. Errors if the world count
    /// exceeds `limit` (enumeration is the *testing oracle*, exponential by
    /// design).
    pub fn enumerate_worlds(&self, limit: u128) -> Result<WorldIter<'_>> {
        let count = self.world_count().ok_or(UrelError::WorldLimitExceeded {
            count: u128::MAX,
            limit,
        })?;
        if count > limit {
            return Err(UrelError::WorldLimitExceeded { count, limit });
        }
        Ok(WorldIter { table: self, current: vec![0; self.dists.len()], done: false })
    }
}

/// Sample an index from a categorical distribution.
fn sample_categorical<R: Rng + ?Sized>(dist: &[f64], rng: &mut R) -> u16 {
    let x: f64 = rng.gen();
    let mut acc = 0.0;
    for (i, &p) in dist.iter().enumerate() {
        acc += p;
        if x < acc {
            return i as u16;
        }
    }
    // Float round-off: fall back to the last alternative with nonzero mass.
    dist.iter().rposition(|&p| p > 0.0).unwrap_or(dist.len() - 1) as u16
}

/// Odometer iterator over all worlds of a [`WorldTable`].
#[derive(Debug)]
pub struct WorldIter<'a> {
    table: &'a WorldTable,
    current: World,
    done: bool,
}

impl Iterator for WorldIter<'_> {
    type Item = (World, f64);

    fn next(&mut self) -> Option<Self::Item> {
        if self.done {
            return None;
        }
        let world = self.current.clone();
        let prob = self
            .table
            .world_prob(&world)
            .expect("odometer worlds are always in range");
        // Advance the odometer.
        let mut i = self.current.len();
        loop {
            if i == 0 {
                self.done = true;
                break;
            }
            i -= 1;
            let dom = self.table.dists[i].len() as u16;
            if self.current[i] + 1 < dom {
                self.current[i] += 1;
                for c in &mut self.current[i + 1..] {
                    *c = 0;
                }
                break;
            }
        }
        Some((world, prob))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn new_var_validates_distribution() {
        let mut wt = WorldTable::new();
        assert!(wt.new_var(&[]).is_err());
        assert!(wt.new_var(&[0.5, 0.6]).is_err()); // sums to 1.1
        assert!(wt.new_var(&[-0.1, 1.1]).is_err());
        assert!(wt.new_var(&[f64::NAN, 1.0]).is_err());
        assert!(wt.new_var(&[0.25, 0.75]).is_ok());
    }

    #[test]
    fn variables_get_sequential_ids() {
        let mut wt = WorldTable::new();
        let a = wt.new_var(&[1.0]).unwrap();
        let b = wt.new_var(&[0.5, 0.5]).unwrap();
        assert_eq!(a, Var(0));
        assert_eq!(b, Var(1));
        assert_eq!(wt.num_vars(), 2);
    }

    #[test]
    fn prob_and_domain_lookups() {
        let mut wt = WorldTable::new();
        let v = wt.new_var(&[0.8, 0.05, 0.15]).unwrap();
        assert_eq!(wt.domain_size(v).unwrap(), 3);
        assert_eq!(wt.prob(Assignment::new(v, 0)).unwrap(), 0.8);
        assert!(wt.prob(Assignment::new(v, 3)).is_err());
        assert!(wt.prob(Assignment::new(Var(9), 0)).is_err());
    }

    #[test]
    fn world_count_and_enumeration() {
        let mut wt = WorldTable::new();
        wt.new_var(&[0.5, 0.5]).unwrap();
        wt.new_var(&[0.2, 0.3, 0.5]).unwrap();
        assert_eq!(wt.world_count(), Some(6));
        let worlds: Vec<_> = wt.enumerate_worlds(100).unwrap().collect();
        assert_eq!(worlds.len(), 6);
        let total: f64 = worlds.iter().map(|(_, p)| p).sum();
        assert!((total - 1.0).abs() < 1e-12);
        // Lexicographic order.
        assert_eq!(worlds[0].0, vec![0, 0]);
        assert_eq!(worlds[5].0, vec![1, 2]);
    }

    #[test]
    fn empty_table_has_one_world() {
        let wt = WorldTable::new();
        assert_eq!(wt.world_count(), Some(1));
        let worlds: Vec<_> = wt.enumerate_worlds(10).unwrap().collect();
        assert_eq!(worlds.len(), 1);
        assert_eq!(worlds[0].1, 1.0);
    }

    #[test]
    fn enumeration_limit_enforced() {
        let mut wt = WorldTable::new();
        for _ in 0..20 {
            wt.new_var(&[0.5, 0.5]).unwrap();
        }
        assert!(matches!(
            wt.enumerate_worlds(1000),
            Err(UrelError::WorldLimitExceeded { .. })
        ));
    }

    #[test]
    fn world_prob_is_product() {
        let mut wt = WorldTable::new();
        wt.new_var(&[0.8, 0.2]).unwrap();
        wt.new_var(&[0.1, 0.9]).unwrap();
        let p = wt.world_prob(&[0, 1]).unwrap();
        assert!((p - 0.72).abs() < 1e-12);
        assert!(wt.world_prob(&[0]).is_err());
    }

    #[test]
    fn sampling_matches_distribution() {
        let mut wt = WorldTable::new();
        wt.new_var(&[0.8, 0.05, 0.15]).unwrap();
        let mut rng = StdRng::seed_from_u64(42);
        let n = 20_000;
        let mut counts = [0usize; 3];
        for _ in 0..n {
            let w = wt.sample_world(&mut rng);
            counts[w[0] as usize] += 1;
        }
        let freq0 = counts[0] as f64 / n as f64;
        assert!((freq0 - 0.8).abs() < 0.02, "freq0 = {freq0}");
    }

    #[test]
    fn sample_into_only_touches_requested_vars() {
        let mut wt = WorldTable::new();
        let a = wt.new_var(&[0.0, 1.0]).unwrap(); // always alt 1
        let _b = wt.new_var(&[1.0]).unwrap();
        let mut world = vec![7, 7];
        let mut rng = StdRng::seed_from_u64(1);
        wt.sample_into(&mut world, &[a], &mut rng);
        assert_eq!(world[0], 1);
        assert_eq!(world[1], 7); // untouched
    }

    #[test]
    fn zero_probability_alternative_never_sampled() {
        let mut wt = WorldTable::new();
        wt.new_var(&[0.0, 1.0]).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..100 {
            assert_eq!(wt.sample_world(&mut rng)[0], 1);
        }
    }
}
