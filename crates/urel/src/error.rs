//! Errors for the U-relational layer.

use std::fmt;

use maybms_engine::EngineError;

/// Error raised by U-relation construction and algebra.
#[derive(Debug, Clone, PartialEq)]
pub enum UrelError {
    /// An underlying relational-engine error.
    Engine(EngineError),
    /// An operation that requires a t-certain input received an uncertain
    /// one (e.g. `repair key` over an uncertain relation, §2.2).
    NotTCertain {
        /// The operation that was attempted.
        operation: String,
    },
    /// A `weight by` expression produced an unusable weight.
    BadWeight {
        /// Description (negative, NaN, non-numeric, all-zero group, …).
        message: String,
    },
    /// A `with probability` expression produced a value outside [0, 1].
    BadProbability {
        /// Description.
        message: String,
    },
    /// A variable id was used that the world table does not know.
    UnknownVariable {
        /// The variable id.
        var: u32,
    },
    /// An alternative index was out of range for its variable.
    BadAlternative {
        /// The variable id.
        var: u32,
        /// The offending alternative.
        alt: u16,
        /// The variable's domain size.
        domain: usize,
    },
    /// A probability distribution did not sum to 1 (or had invalid entries).
    BadDistribution {
        /// Description.
        message: String,
    },
    /// World enumeration was requested over a world set larger than the
    /// given limit.
    WorldLimitExceeded {
        /// Number of worlds represented.
        count: u128,
        /// The enumeration limit.
        limit: u128,
    },
    /// Vertical decomposition/recomposition received inconsistent pieces.
    BadDecomposition {
        /// Description.
        message: String,
    },
}

impl fmt::Display for UrelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UrelError::Engine(e) => write!(f, "{e}"),
            UrelError::NotTCertain { operation } => {
                write!(f, "{operation} requires a t-certain input relation")
            }
            UrelError::BadWeight { message } => write!(f, "invalid weight: {message}"),
            UrelError::BadProbability { message } => {
                write!(f, "invalid probability: {message}")
            }
            UrelError::UnknownVariable { var } => write!(f, "unknown variable x{var}"),
            UrelError::BadAlternative { var, alt, domain } => write!(
                f,
                "alternative {alt} out of range for variable x{var} (domain size {domain})"
            ),
            UrelError::BadDistribution { message } => {
                write!(f, "invalid distribution: {message}")
            }
            UrelError::WorldLimitExceeded { count, limit } => write!(
                f,
                "world set has {count} worlds, above the enumeration limit {limit}"
            ),
            UrelError::BadDecomposition { message } => {
                write!(f, "invalid vertical decomposition: {message}")
            }
        }
    }
}

impl std::error::Error for UrelError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            UrelError::Engine(e) => Some(e),
            _ => None,
        }
    }
}

impl From<EngineError> for UrelError {
    fn from(e: EngineError) -> Self {
        UrelError::Engine(e)
    }
}

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, UrelError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn engine_error_wraps_and_sources() {
        let e: UrelError = EngineError::TableNotFound { name: "ft".into() }.into();
        assert!(e.to_string().contains("ft"));
        assert!(std::error::Error::source(&e).is_some());
    }

    #[test]
    fn display_not_t_certain() {
        let e = UrelError::NotTCertain { operation: "repair key".into() };
        assert!(e.to_string().contains("repair key"));
        assert!(e.to_string().contains("t-certain"));
    }
}
