//! Random variables and assignments.
//!
//! MayBMS represents uncertainty with "a finite set of independent random
//! variables" (§2.1) over finite domains; physically, "variables and their
//! possible assignments [are stored] as pairs of integers" (§2.4). This
//! module is that encoding: [`Var`] is the variable id, [`Assignment`] the
//! `(variable, alternative)` integer pair.

use std::fmt;

/// A random variable identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Var(pub u32);

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

/// `var ↦ alt`: the variable `var` takes its `alt`-th alternative
/// (0-based; the paper's Figure 1 displays 1-based `x ↦ 1`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Assignment {
    /// The variable.
    pub var: Var,
    /// The chosen alternative (index into the variable's distribution).
    pub alt: u16,
}

impl Assignment {
    /// Construct an assignment.
    pub fn new(var: Var, alt: u16) -> Assignment {
        Assignment { var, alt }
    }
}

impl fmt::Display for Assignment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} \u{21a6} {}", self.var, self.alt + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_is_by_var_then_alt() {
        let a = Assignment::new(Var(1), 2);
        let b = Assignment::new(Var(2), 0);
        let c = Assignment::new(Var(2), 1);
        assert!(a < b && b < c);
    }

    #[test]
    fn display_matches_paper_figure() {
        // Figure 1 writes "x ↦ 1" for the first alternative.
        assert_eq!(Assignment::new(Var(0), 0).to_string(), "x0 ↦ 1");
    }
}
