//! `pick tuples` (§2.2, construct 2): "creates a probabilistic relation
//! representing all the possible subsets of the input table".
//!
//! Each input tuple receives a fresh Boolean variable: alternative 0 =
//! absent, alternative 1 = present with the tuple's probability (default
//! 0.5 — the uniform distribution over all subsets). The `independently`
//! keyword makes the tuple-independence explicit; it is the semantics we
//! implement in both spellings (see DESIGN.md §5.5 — materialising the
//! correlated 2^n-ary choice is intentionally not supported).

use maybms_engine::{Expr, Relation};

use crate::error::{Result, UrelError};
use crate::urelation::{URelation, UTuple};
use crate::world_table::WorldTable;
use crate::wsd::Wsd;

/// Options for [`pick_tuples`].
#[derive(Debug, Clone, Default)]
pub struct PickTuplesOptions {
    /// `with probability` expression (per tuple); `None` = 0.5.
    pub probability: Option<Expr>,
}

/// Apply `pick tuples from R [independently] [with probability e]`.
///
/// Probabilities must lie in `[0, 1]`. A tuple with probability 0 exists in
/// no subset and is dropped; probability 1 keeps the tuple certain without
/// spending a variable.
pub fn pick_tuples(
    input: &Relation,
    options: &PickTuplesOptions,
    wt: &mut WorldTable,
) -> Result<URelation> {
    let bound = options.probability.as_ref().map(|e| e.bind(input.schema())).transpose()?;
    let mut out = Vec::with_capacity(input.len());
    for t in input.tuples() {
        let p = match &bound {
            None => 0.5,
            Some(e) => {
                let v = e.eval(t)?;
                v.as_f64().ok_or_else(|| UrelError::BadProbability {
                    message: format!("probability expression produced non-numeric value {v}"),
                })?
            }
        };
        if !p.is_finite() || !(0.0..=1.0).contains(&p) {
            return Err(UrelError::BadProbability {
                message: format!("tuple probability {p} outside [0, 1]"),
            });
        }
        if p == 0.0 {
            continue;
        }
        if p == 1.0 {
            out.push(UTuple::certain(t.clone()));
            continue;
        }
        let var = wt.new_var(&[1.0 - p, p])?;
        out.push(UTuple::new(t.clone(), Wsd::of(var, 1)));
    }
    Ok(URelation::new(input.schema().clone(), out))
}

/// `pick tuples` over a U-relation input; enforces t-certainty (§2.2).
pub fn pick_tuples_u(
    input: &URelation,
    options: &PickTuplesOptions,
    wt: &mut WorldTable,
) -> Result<URelation> {
    if !input.is_t_certain() {
        return Err(UrelError::NotTCertain { operation: "pick tuples".into() });
    }
    let certain = Relation::new_unchecked(
        input.schema().clone(),
        input.tuples().iter().map(|t| t.data.clone()).collect(),
    );
    pick_tuples(&certain, options, wt)
}

#[cfg(test)]
mod tests {
    use super::*;
    use maybms_engine::{rel, DataType, Value};

    fn three_rows() -> Relation {
        rel(
            &[("v", DataType::Int)],
            vec![vec![1.into()], vec![2.into()], vec![3.into()]],
        )
    }

    #[test]
    fn default_probability_is_half_over_all_subsets() {
        let mut wt = WorldTable::new();
        let out = pick_tuples(&three_rows(), &PickTuplesOptions::default(), &mut wt).unwrap();
        assert_eq!(out.len(), 3);
        assert_eq!(wt.num_vars(), 3);
        assert_eq!(wt.world_count(), Some(8)); // all 2^3 subsets
        for t in out.tuples() {
            assert!((t.wsd.prob(&wt).unwrap() - 0.5).abs() < 1e-12);
        }
        // Every subset cardinality appears among the worlds.
        let mut sizes = std::collections::HashSet::new();
        for (w, _) in wt.enumerate_worlds(10).unwrap() {
            sizes.insert(out.instantiate(&w).len());
        }
        assert_eq!(sizes, [0usize, 1, 2, 3].into_iter().collect());
    }

    #[test]
    fn per_tuple_probability_expression() {
        let mut wt = WorldTable::new();
        let r = rel(
            &[("v", DataType::Int), ("p", DataType::Float)],
            vec![
                vec![1.into(), Value::Float(0.9)],
                vec![2.into(), Value::Float(0.1)],
            ],
        );
        let out = pick_tuples(
            &r,
            &PickTuplesOptions { probability: Some(Expr::col("p")) },
            &mut wt,
        )
        .unwrap();
        let probs: Vec<f64> =
            out.tuples().iter().map(|t| t.wsd.prob(&wt).unwrap()).collect();
        assert!((probs[0] - 0.9).abs() < 1e-12);
        assert!((probs[1] - 0.1).abs() < 1e-12);
    }

    #[test]
    fn probability_one_keeps_tuple_certain() {
        let mut wt = WorldTable::new();
        let r = rel(
            &[("v", DataType::Int), ("p", DataType::Float)],
            vec![vec![1.into(), Value::Float(1.0)]],
        );
        let out = pick_tuples(
            &r,
            &PickTuplesOptions { probability: Some(Expr::col("p")) },
            &mut wt,
        )
        .unwrap();
        assert!(out.is_t_certain());
        assert_eq!(wt.num_vars(), 0);
    }

    #[test]
    fn probability_zero_drops_tuple() {
        let mut wt = WorldTable::new();
        let r = rel(
            &[("v", DataType::Int), ("p", DataType::Float)],
            vec![vec![1.into(), Value::Float(0.0)], vec![2.into(), Value::Float(0.5)]],
        );
        let out = pick_tuples(
            &r,
            &PickTuplesOptions { probability: Some(Expr::col("p")) },
            &mut wt,
        )
        .unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out.tuples()[0].data.value(0), &Value::Int(2));
    }

    #[test]
    fn out_of_range_probability_rejected() {
        let mut wt = WorldTable::new();
        let r = rel(
            &[("p", DataType::Float)],
            vec![vec![Value::Float(1.5)]],
        );
        let out = pick_tuples(
            &r,
            &PickTuplesOptions { probability: Some(Expr::col("p")) },
            &mut wt,
        );
        assert!(matches!(out, Err(UrelError::BadProbability { .. })));
    }

    #[test]
    fn non_numeric_probability_rejected() {
        let mut wt = WorldTable::new();
        let r = rel(&[("p", DataType::Text)], vec![vec!["x".into()]]);
        let out = pick_tuples(
            &r,
            &PickTuplesOptions { probability: Some(Expr::col("p")) },
            &mut wt,
        );
        assert!(matches!(out, Err(UrelError::BadProbability { .. })));
    }

    #[test]
    fn pick_tuples_u_requires_t_certain() {
        let mut wt = WorldTable::new();
        let r = three_rows();
        let mut u = URelation::from_certain(&r);
        let x = wt.new_var(&[0.5, 0.5]).unwrap();
        u.tuples_mut()[0].wsd = Wsd::of(x, 1);
        assert!(matches!(
            pick_tuples_u(&u, &PickTuplesOptions::default(), &mut wt),
            Err(UrelError::NotTCertain { .. })
        ));
    }

    /// Brute-force check: the probability that tuple i is present equals
    /// its probability, and tuple presences are independent.
    #[test]
    fn subset_semantics_exact() {
        let mut wt = WorldTable::new();
        let r = rel(
            &[("v", DataType::Int), ("p", DataType::Float)],
            vec![
                vec![1.into(), Value::Float(0.25)],
                vec![2.into(), Value::Float(0.75)],
            ],
        );
        let out = pick_tuples(
            &r,
            &PickTuplesOptions { probability: Some(Expr::col("p")) },
            &mut wt,
        )
        .unwrap();
        let mut p_both = 0.0;
        let mut p_first = 0.0;
        for (w, p) in wt.enumerate_worlds(10).unwrap() {
            let inst = out.instantiate(&w);
            let has1 = inst.tuples().iter().any(|t| t.value(0) == &Value::Int(1));
            let has2 = inst.tuples().iter().any(|t| t.value(0) == &Value::Int(2));
            if has1 {
                p_first += p;
            }
            if has1 && has2 {
                p_both += p;
            }
        }
        assert!((p_first - 0.25).abs() < 1e-12);
        assert!((p_both - 0.25 * 0.75).abs() < 1e-12); // independence
    }
}
