//! # maybms-urel — U-relational databases
//!
//! "MayBMS stores probabilistic data in U-relational databases, a succinct
//! and complete representation system for large sets of possible worlds"
//! (§2.1). This crate implements that representation system and the query
//! machinery that works directly on it:
//!
//! * [`var`] / [`world_table`] — finite independent random variables,
//!   their distributions, world sampling and enumeration;
//! * [`wsd`] — world-set descriptors: the per-tuple condition columns;
//! * [`urelation`] — U-relations and the t-certain test;
//! * [`algebra`] — the parsimonious positive-RA translation (σ, π, ⋈, ∪ on
//!   the representation; cost independent of the number of worlds);
//! * [`repair`] / [`pick`] — the `repair key` and `pick tuples`
//!   hypothesis-space constructs (§2.2);
//! * [`vertical`] — attribute-level uncertainty through vertical
//!   decomposition with system tuple ids (§2.1);
//! * [`worlds`] — exponential possible-world enumeration, used as the
//!   ground-truth oracle in tests.
//!
//! ## Example: Figure 1's one-step random walk
//!
//! ```
//! use maybms_engine::{rel, DataType, Expr, Value};
//! use maybms_urel::repair::{repair_key, RepairKeyOptions};
//! use maybms_urel::world_table::WorldTable;
//!
//! let ft = rel(
//!     &[("player", DataType::Text), ("init", DataType::Text),
//!       ("final", DataType::Text), ("p", DataType::Float)],
//!     vec![
//!         vec!["Bryant".into(), "F".into(), "F".into(), Value::Float(0.8)],
//!         vec!["Bryant".into(), "F".into(), "SE".into(), Value::Float(0.05)],
//!         vec!["Bryant".into(), "F".into(), "SL".into(), Value::Float(0.15)],
//!     ],
//! );
//! let mut wt = WorldTable::new();
//! let r2 = repair_key(
//!     &ft,
//!     &[Expr::col("player"), Expr::col("init")],
//!     &RepairKeyOptions { weight: Some(Expr::col("p")) },
//!     &mut wt,
//! ).unwrap();
//! assert_eq!(r2.len(), 3);            // three conditioned alternatives
//! assert_eq!(wt.num_vars(), 1);       // one variable for the (Bryant, F) group
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod algebra;
pub mod error;
pub mod pick;
pub mod repair;
pub mod urelation;
pub mod var;
pub mod vertical;
pub mod world_table;
pub mod worlds;
pub mod wsd;

pub use error::{Result, UrelError};
pub use pick::{pick_tuples, pick_tuples_u, PickTuplesOptions};
pub use repair::{repair_key, repair_key_u, RepairKeyOptions};
pub use urelation::{URelation, UTuple};
pub use var::{Assignment, Var};
pub use world_table::{World, WorldTable};
pub use wsd::Wsd;
