//! Property tests for the U-relational layer.
//!
//! The central theorem behind U-relations ([1], §2.3) is that the
//! parsimonious translation of positive RA *commutes with possible-world
//! instantiation*: rep(q(D))'s worlds are exactly q applied to D's worlds.
//! These tests check that on randomly generated databases and operators,
//! plus the algebraic laws of WSDs.

use maybms_engine::ops::ProjectItem;
use maybms_engine::{rel, BinaryOp, DataType, Expr, Value};
use maybms_urel::algebra;
use maybms_urel::pick::{pick_tuples, PickTuplesOptions};
use maybms_urel::repair::{repair_key, RepairKeyOptions};
use maybms_urel::world_table::WorldTable;
use maybms_urel::wsd::Wsd;
use maybms_urel::{Assignment, URelation, Var};
use proptest::prelude::*;

// ---------- generators ----------------------------------------------------

/// A random tuple-independent U-relation with schema (k, v) over a fresh
/// world table: rows with probabilities in {0.1 … 0.9}.
fn arb_ti_relation(max_rows: usize) -> impl Strategy<Value = (WorldTable, URelation)> {
    prop::collection::vec((0i64..4, 0i64..4, 1u32..10), 0..max_rows).prop_map(|rows| {
        let mut wt = WorldTable::new();
        let certain = rel(
            &[("k", DataType::Int), ("v", DataType::Int), ("p", DataType::Float)],
            rows.iter()
                .map(|(k, v, p10)| {
                    vec![
                        Value::Int(*k),
                        Value::Int(*v),
                        Value::Float(f64::from(*p10) / 10.0),
                    ]
                })
                .collect(),
        );
        let u = pick_tuples(
            &certain,
            &PickTuplesOptions { probability: Some(Expr::col("p")) },
            &mut wt,
        )
        .unwrap();
        (wt, u)
    })
}

fn arb_assignments() -> impl Strategy<Value = Vec<Assignment>> {
    prop::collection::vec((0u32..6, 0u16..3), 0..6)
        .prop_map(|v| v.into_iter().map(|(var, alt)| Assignment::new(Var(var), alt)).collect())
}

// ---------- WSD laws -------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Conjunction is commutative.
    #[test]
    fn wsd_conjoin_commutative(a in arb_assignments(), b in arb_assignments()) {
        let (Some(wa), Some(wb)) = (
            Wsd::from_assignments(a),
            Wsd::from_assignments(b),
        ) else { return Ok(()); };
        prop_assert_eq!(wa.conjoin(&wb), wb.conjoin(&wa));
    }

    /// Conjunction is associative.
    #[test]
    fn wsd_conjoin_associative(
        a in arb_assignments(),
        b in arb_assignments(),
        c in arb_assignments(),
    ) {
        let (Some(wa), Some(wb), Some(wc)) = (
            Wsd::from_assignments(a),
            Wsd::from_assignments(b),
            Wsd::from_assignments(c),
        ) else { return Ok(()); };
        let left = wa.conjoin(&wb).and_then(|x| x.conjoin(&wc));
        let right = wb.conjoin(&wc).and_then(|x| wa.conjoin(&x));
        prop_assert_eq!(left, right);
    }

    /// Conjunction is idempotent and the tautology is its unit.
    #[test]
    fn wsd_conjoin_idempotent_unit(a in arb_assignments()) {
        let Some(w) = Wsd::from_assignments(a) else { return Ok(()); };
        let self_conj = w.conjoin(&w);
        prop_assert_eq!(self_conj.as_ref(), Some(&w));
        let unit_conj = w.conjoin(&Wsd::tautology());
        prop_assert_eq!(unit_conj.as_ref(), Some(&w));
    }

    /// A world satisfies a ∧ b iff it satisfies both; unsatisfiable
    /// conjunctions are satisfied by no world.
    #[test]
    fn wsd_conjoin_semantics(
        a in arb_assignments(),
        b in arb_assignments(),
        world in prop::collection::vec(0u16..3, 6),
    ) {
        let (Some(wa), Some(wb)) = (
            Wsd::from_assignments(a),
            Wsd::from_assignments(b),
        ) else { return Ok(()); };
        let both = wa.satisfied_by(&world) && wb.satisfied_by(&world);
        match wa.conjoin(&wb) {
            Some(c) => prop_assert_eq!(c.satisfied_by(&world), both),
            None => prop_assert!(!both),
        }
    }
}

// ---------- translation ≡ possible worlds ---------------------------------

/// Compare a translated U-relation against per-world evaluation of the
/// equivalent certain query.
fn assert_commutes(
    wt: &WorldTable,
    translated: &URelation,
    per_world: impl Fn(&[u16]) -> maybms_engine::Relation,
) -> Result<(), TestCaseError> {
    for (world, _p) in wt.enumerate_worlds(1 << 16).unwrap() {
        let mut lhs = translated.instantiate(&world).into_tuples();
        let mut rhs = per_world(&world).into_tuples();
        lhs.sort();
        rhs.sort();
        prop_assert_eq!(lhs, rhs, "world {:?}", world);
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// σ commutes with instantiation on tuple-independent inputs.
    #[test]
    fn select_commutes((wt, u) in arb_ti_relation(8), bound in 0i64..4) {
        let pred = Expr::col("v").binary(BinaryOp::GtEq, Expr::lit(bound));
        let translated = algebra::select(&u, &pred).unwrap();
        assert_commutes(&wt, &translated, |w| {
            maybms_engine::ops::filter(&u.instantiate(w), &pred).unwrap()
        })?;
    }

    /// π commutes with instantiation.
    #[test]
    fn project_commutes((wt, u) in arb_ti_relation(8)) {
        let items = [
            ProjectItem::col("k"),
            ProjectItem::new(
                Expr::col("v").binary(BinaryOp::Add, Expr::lit(1i64)),
                "v1",
            ),
        ];
        let translated = algebra::project(&u, &items).unwrap();
        assert_commutes(&wt, &translated, |w| {
            maybms_engine::ops::project(&u.instantiate(w), &items).unwrap()
        })?;
    }

    /// ⋈ commutes with instantiation (equi-join on k), including the
    /// conflict-dropping rule for shared variables (self-join case).
    #[test]
    fn join_commutes((wt, u) in arb_ti_relation(6)) {
        let translated = algebra::hash_join(&u, &u, &[0], &[0]).unwrap();
        assert_commutes(&wt, &translated, |w| {
            let inst = u.instantiate(w);
            maybms_engine::ops::hash_join(&inst, &inst, &[0], &[0]).unwrap()
        })?;
    }

    /// ∪ commutes with instantiation.
    #[test]
    fn union_commutes((wt, u) in arb_ti_relation(6)) {
        let translated = algebra::union_all(&[&u, &u]).unwrap();
        assert_commutes(&wt, &translated, |w| {
            let inst = u.instantiate(w);
            maybms_engine::ops::union_all(&[&inst, &inst]).unwrap()
        })?;
    }

    /// A composite plan σ(π(R ⋈ R)) commutes with instantiation.
    #[test]
    fn composite_plan_commutes((wt, u) in arb_ti_relation(5), bound in 0i64..4) {
        let items = [ProjectItem::new(Expr::ColumnIdx(1), "v")];
        let pred = Expr::col("v").binary(BinaryOp::Lt, Expr::lit(bound));
        let translated = {
            let j = algebra::hash_join(&u, &u, &[0], &[0]).unwrap();
            let p = algebra::project(&j, &items).unwrap();
            algebra::select(&p, &pred).unwrap()
        };
        assert_commutes(&wt, &translated, |w| {
            let inst = u.instantiate(w);
            let j = maybms_engine::ops::hash_join(&inst, &inst, &[0], &[0]).unwrap();
            let p = maybms_engine::ops::project(&j, &items).unwrap();
            maybms_engine::ops::filter(&p, &pred).unwrap()
        })?;
    }

    /// repair-key alternatives are mutually exclusive within a group and
    /// the marginal masses match the normalised weights.
    #[test]
    fn repair_key_distribution(
        rows in prop::collection::vec((0i64..3, 1u32..10), 1..9),
    ) {
        let mut wt = WorldTable::new();
        let certain = rel(
            &[("k", DataType::Int), ("w", DataType::Float)],
            rows.iter()
                .map(|(k, w)| vec![Value::Int(*k), Value::Float(f64::from(*w))])
                .collect(),
        );
        let u = repair_key(
            &certain,
            &[Expr::col("k")],
            &RepairKeyOptions { weight: Some(Expr::col("w")) },
            &mut wt,
        ).unwrap();

        // Every world selects exactly one tuple per key group.
        let keys: std::collections::HashSet<i64> =
            rows.iter().map(|(k, _)| *k).collect();
        for (world, _p) in wt.enumerate_worlds(1 << 16).unwrap() {
            let inst = u.instantiate(&world);
            prop_assert_eq!(inst.len(), keys.len());
        }

        // Marginal of each alternative = weight / group total.
        for (i, t) in u.tuples().iter().enumerate() {
            let k = t.data.value(0).as_int().unwrap();
            let w = t.data.value(1).as_f64().unwrap();
            let total: f64 = rows
                .iter()
                .filter(|(rk, _)| *rk == k)
                .map(|(_, rw)| f64::from(*rw))
                .sum();
            let p = t.wsd.prob(&wt).unwrap();
            prop_assert!((p - w / total).abs() < 1e-9, "tuple {} p={} w/total={}", i, p, w / total);
        }
    }
}
