//! # maybms-pipe — morsel-driven streaming execution
//!
//! The substrate's original executors run bottom-up and fully materialise
//! every intermediate relation: a `σ → π → σ → π` chain allocates four
//! complete relations, and memory traffic — not the probabilistic
//! bookkeeping — dominates the hot path. This crate is the push-based
//! streaming layer on top of the same operators:
//!
//! * a query plan is decomposed into **pipelines** split at *breakers* —
//!   operators that must see all of their input before emitting anything
//!   (hash-join *build*, aggregation, sort, distinct, limit, union,
//!   nested-loop join);
//! * within a pipeline, fused `Scan → Filter → Project → (join-probe)`
//!   stages consume the source in **morsels** (contiguous row ranges) and
//!   push each row through the whole stage chain with **no intermediate
//!   materialisation** — only the pipeline's final output is built, one
//!   morsel-local [`TupleBatch`](maybms_engine::tuple::TupleBatch) at a
//!   time;
//! * hash-join **builds are morsel-local**: each morsel constructs a
//!   private hash table and the per-key candidate lists are merged in
//!   morsel order ([`BuildTable`]), so the merged table is identical to a
//!   sequential build at any thread count;
//! * grouped aggregation is **streaming**: the breaker's input pipeline
//!   folds each surviving row into a morsel-local [`GroupTable`] of
//!   mergeable accumulator states, merged in morsel order with global
//!   first-seen key order ([`groupby`]) — `GROUP BY` plans never
//!   materialise their input;
//! * the **kernel-eligible σ/π prefix** of a pipeline runs *columnar*:
//!   each morsel pivots into a typed
//!   [`ColumnBatch`](maybms_engine::column::ColumnBatch) (only the
//!   referenced source columns), predicates and projections evaluate
//!   through the vectorised kernels of
//!   [`maybms_engine::vector`], and rows pivot back to shared-row
//!   tuples at probes, breakers, and sinks (where the U-relational WSD
//!   bookkeeping lives). The planner decides eligibility per stage at
//!   plan time; `EXPLAIN` marks those stages `(vectorised)`. Off-switch:
//!   `MAYBMS_COLUMNAR=0` (see [`columnar_default`]);
//! * when the source table is **columnar at rest** (the catalog default
//!   since the storage refactor — see `maybms_engine::catalog`), a
//!   kernel-eligible scan skips the per-morsel pivot entirely: stages
//!   borrow the stored column slices (dictionary codes included) and
//!   the whole σ/π prefix runs **zero-pivot** — `EXPLAIN` marks the
//!   source `(columnar, zero-pivot)` and the
//!   `maybms_pipe_pivots_total` / `maybms_pipe_pivot_rows_total`
//!   counters stay flat. Dictionary-encoded text columns feed the
//!   hash-join build side and the dense GROUP BY key path with u32
//!   codes and pre-cached hashes instead of strings;
//! * morsels run on the `maybms-par` pool and morsel outputs are
//!   concatenated in morsel order, preserving PR 2's determinism
//!   contract: **pipelined output is bit-identical to the materialising
//!   path at any thread count** — and the columnar path is bit-identical
//!   to the row path, values *and* errors (property-tested at 1/2/8
//!   threads in `crates/bench/tests/pipe_equiv.rs` and
//!   `crates/bench/tests/vec_equiv.rs`).
//!
//! Two front ends share the machinery:
//!
//! * [`plan`] — decomposes and executes an engine
//!   [`PhysicalPlan`](maybms_engine::PhysicalPlan) (certain relations);
//! * [`ustream`] — a lazy [`UStream`] over U-relations that
//!   `maybms-core` threads through its select/project/join chains,
//!   conjoining world-set descriptors in the probe stage and dropping
//!   unsatisfiable rows exactly as `urel::algebra` does.
//!
//! Both expose an `explain`-style description of the decomposition —
//! what the SQL `EXPLAIN` statement prints.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod build;
pub(crate) mod fuse;
pub mod groupby;
pub mod plan;
pub mod ustream;

pub use build::BuildTable;
pub use groupby::GroupTable;
pub use plan::{decompose, execute, execute_opts, execute_with, explain, PipePlan};
pub use ustream::UStream;

/// Is the columnar (vectorised) execution path enabled by default?
///
/// On unless `MAYBMS_COLUMNAR=0` — the default [`execute`] /
/// [`UStream::collect`] entry points consult this; the `*_opts`
/// variants take the flag explicitly (what the columnar ≡ row
/// equivalence property tests pin). Read once per process.
pub fn columnar_default() -> bool {
    static ON: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *ON.get_or_init(|| {
        std::env::var("MAYBMS_COLUMNAR").map_or(true, |v| v.trim() != "0")
    })
}

/// Hash of a row slice's key columns (columnar single-key fast path),
/// `None` when any key is NULL. Agrees with the engine's
/// `tuple_key_hash`, so pipelined probes hit the same buckets as
/// materialised joins.
#[inline]
pub(crate) fn row_key_hash(row: &[maybms_engine::Value], keys: &[usize]) -> Option<u64> {
    if let [k] = keys {
        maybms_engine::ops::single_key_hash(&row[*k])
    } else {
        maybms_engine::ops::join_key_hash(row, keys)
    }
}
