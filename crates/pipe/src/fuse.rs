//! The shared fused-execution core: one morsel-driven stage walker
//! serving both front ends.
//!
//! The certain ([`plan`](crate::plan)) and U-relational
//! ([`ustream`](crate::ustream)) executors run the *same* machine — a
//! source of rows pushed through Filter/Project/Probe stages morsel by
//! morsel — differing only in the **payload** that rides along with
//! each row: nothing for certain relations, a [`Wsd`] for U-relations
//! (conjoined at probe stages, with unsatisfiable conjunctions dropping
//! the row). [`RowSource`] abstracts exactly that difference, so the
//! selection-vector fast path, the scratch-buffer recursion, and the
//! morsel-ordered merge exist once.
//!
//! What happens to a row that survives the whole stage chain is equally
//! pluggable: a [`MorselSink`] receives each output row. The default
//! sink batches rows into a morsel-local
//! [`TupleBatch`](maybms_engine::tuple::TupleBatch) (pipelines that
//! *materialise*); the grouped-aggregation breaker
//! ([`groupby`](crate::groupby)) instead folds each row straight into a
//! morsel-local group table, so grouped plans never materialise their
//! input at all.
//!
//! Build tables for probe stages are constructed *here*, at execution
//! time, morsel-locally on the caller's pool — deferring the build to
//! the same pool and morsel size the rest of the pipeline uses.

use maybms_engine::error::{EngineError, Result};
use maybms_engine::tuple::{Relation, Tuple, TupleBatch};
use maybms_engine::{ops, Expr, Value};
use maybms_par::ThreadPool;
use maybms_urel::{URelation, Wsd};

use crate::build::BuildTable;
use crate::row_key_hash;

/// A bag of rows, each a value slice plus a cheap-to-clone payload.
pub(crate) trait RowSource: Sync {
    /// What rides along with each row (conditions, or nothing).
    type Payload: Clone + Send;
    /// Number of rows.
    fn len(&self) -> usize;
    /// Row `i`'s values and payload.
    fn row(&self, i: usize) -> (&[Value], &Self::Payload);
    /// Combine the payloads of a probe row and a build row; `None`
    /// drops the joined row.
    fn conjoin(a: &Self::Payload, b: &Self::Payload) -> Option<Self::Payload>;
}

impl RowSource for Relation {
    type Payload = ();

    fn len(&self) -> usize {
        Relation::len(self)
    }

    fn row(&self, i: usize) -> (&[Value], &()) {
        (self.tuples()[i].values(), &())
    }

    fn conjoin(_: &(), _: &()) -> Option<()> {
        Some(())
    }
}

impl RowSource for URelation {
    type Payload = Wsd;

    fn len(&self) -> usize {
        URelation::len(self)
    }

    fn row(&self, i: usize) -> (&[Value], &Wsd) {
        let t = &self.tuples()[i];
        (t.data.values(), &t.wsd)
    }

    fn conjoin(a: &Wsd, b: &Wsd) -> Option<Wsd> {
        a.conjoin(b)
    }
}

/// One bound, ready-to-run stage. The build side of a probe has the
/// same row type as the stream (its table is built at run time).
pub(crate) enum Stage<S: RowSource> {
    /// σ — expressions bound to the incoming row shape.
    Filter(Expr),
    /// π — one bound expression per output column.
    Project(Vec<Expr>),
    /// Hash-join probe: `stream row ++ build row` per verified
    /// candidate, payloads conjoined.
    Probe {
        /// The materialised build side.
        build: S,
        /// Key columns in the incoming row.
        left_keys: Vec<usize>,
        /// Key columns in the build rows.
        right_keys: Vec<usize>,
    },
}

/// A morsel-local consumer of rows that survive the stage chain. One
/// sink exists per morsel; the caller merges finished sinks in morsel
/// order, so a sink never needs to be thread-safe itself.
///
/// The error type is associated (rather than fixed to [`EngineError`])
/// so U-relational sinks can fail with `maybms-urel` errors — stage
/// evaluation errors convert in via `From`.
pub(crate) trait MorselSink<P> {
    /// The error the sink's consumer works in.
    type Err: From<EngineError> + Send;
    /// Consume one surviving row and its payload.
    fn push(&mut self, row: &[Value], payload: &P) -> std::result::Result<(), Self::Err>;
}

/// The materialising sink: rows into a morsel-local [`TupleBatch`],
/// payloads alongside.
pub(crate) struct RowsSink<P> {
    pub(crate) batch: TupleBatch,
    pub(crate) payloads: Vec<P>,
}

impl<P: Clone + Send> MorselSink<P> for RowsSink<P> {
    type Err = EngineError;

    fn push(&mut self, row: &[Value], payload: &P) -> Result<()> {
        self.batch.begin_row();
        for v in row {
            self.batch.push_value(v.clone());
        }
        self.payloads.push(payload.clone());
        Ok(())
    }
}

/// What a fused pipeline produced.
pub(crate) enum FusedOutput<P> {
    /// All-filter pipeline: the surviving source indices, in order —
    /// gather them to share row storage with the source.
    Select(Vec<usize>),
    /// Constructed rows and their payloads, in order.
    Rows(Vec<Tuple>, Vec<P>),
}

/// Run `stages` over every row of `source`, morsel-parallel on `pool`,
/// feeding every surviving row into a fresh per-morsel sink built by
/// `make_sink`. Returns the finished sinks **in morsel order**; the
/// earliest morsel's error wins, so the error (if any) is identical to a
/// sequential scan at any thread count.
pub(crate) fn run_sink<S, Sk, MK>(
    source: &S,
    stages: &[Stage<S>],
    pool: &ThreadPool,
    min_morsel: usize,
    make_sink: MK,
) -> std::result::Result<Vec<Sk>, Sk::Err>
where
    S: RowSource,
    Sk: MorselSink<S::Payload> + Send,
    MK: Fn() -> Sk + Sync,
{
    // Morsel-local build tables for the probe stages, on this pool.
    let tables: Vec<Option<BuildTable>> = stages
        .iter()
        .map(|s| match s {
            Stage::Probe { build, right_keys, .. } => Some(BuildTable::build(
                build.len(),
                |i| row_key_hash(build.row(i).0, right_keys),
                pool,
                min_morsel,
            )),
            _ => None,
        })
        .collect();

    // A one-thread pool runs morsels back-to-back anyway; one morsel
    // spares the sink merges (the merged result is identical either way).
    let chunk = if pool.threads() == 1 {
        source.len().max(1)
    } else {
        maybms_par::auto_chunk(source.len(), pool.threads(), min_morsel)
    };
    let outputs: Vec<std::result::Result<Sk, Sk::Err>> =
        pool.par_map_chunks(source.len(), chunk, |range| {
            let mut sink = make_sink();
            let mut scratch: Vec<Vec<Value>> = vec![Vec::new(); stages.len()];
            for i in range {
                let (row, payload) = source.row(i);
                push_row::<S, Sk>(
                    row,
                    payload,
                    stages,
                    &tables,
                    0,
                    &mut scratch,
                    &mut sink,
                )?;
            }
            Ok(sink)
        });
    outputs.into_iter().collect()
}

/// Run `stages` over every row of `source`, morsel-parallel on `pool`,
/// materialising the surviving rows. Morsel outputs merge in morsel
/// order; the output (and error row, if any) is identical to a
/// sequential scan at any thread count.
pub(crate) fn run<S: RowSource>(
    source: &S,
    stages: &[Stage<S>],
    pool: &ThreadPool,
    min_morsel: usize,
) -> Result<FusedOutput<S::Payload>> {
    // All-filter pipelines stay a selection vector end to end.
    if stages.iter().all(|s| matches!(s, Stage::Filter(_))) {
        let chunk = maybms_par::auto_chunk(source.len(), pool.threads(), min_morsel);
        let partials: Vec<Result<Vec<usize>>> =
            pool.par_map_chunks(source.len(), chunk, |range| {
                let mut sel = Vec::new();
                'row: for i in range {
                    let (row, _) = source.row(i);
                    for s in stages {
                        let Stage::Filter(p) = s else { unreachable!() };
                        if !p.eval_predicate_values(row)? {
                            continue 'row;
                        }
                    }
                    sel.push(i);
                }
                Ok(sel)
            });
        let mut sel = Vec::new();
        for p in partials {
            sel.extend(p?);
        }
        return Ok(FusedOutput::Select(sel));
    }

    // General fused path: push every source row through the stage chain
    // into a morsel-local batch.
    let sinks = run_sink(source, stages, pool, min_morsel, || RowsSink {
        batch: TupleBatch::new(),
        payloads: Vec::new(),
    })?;
    let mut tuples = Vec::new();
    let mut payloads = Vec::new();
    for sink in sinks {
        tuples.extend(sink.batch.finish());
        payloads.extend(sink.payloads);
    }
    Ok(FusedOutput::Rows(tuples, payloads))
}

/// Push one in-flight row through `stages[depth..]`. `scratch[depth]`
/// is the reusable value buffer of the constructing stage at `depth` —
/// taken out around the recursion and always restored, so the morsel
/// allocates nothing after warmup even across evaluation errors.
fn push_row<S: RowSource, Sk: MorselSink<S::Payload>>(
    row: &[Value],
    payload: &S::Payload,
    stages: &[Stage<S>],
    tables: &[Option<BuildTable>],
    depth: usize,
    scratch: &mut [Vec<Value>],
    sink: &mut Sk,
) -> std::result::Result<(), Sk::Err> {
    let Some(stage) = stages.get(depth) else {
        return sink.push(row, payload);
    };
    match stage {
        Stage::Filter(p) => {
            if p.eval_predicate_values(row).map_err(Sk::Err::from)? {
                push_row::<S, Sk>(row, payload, stages, tables, depth + 1, scratch, sink)?;
            }
            Ok(())
        }
        Stage::Project(exprs) => {
            let mut vals = std::mem::take(&mut scratch[depth]);
            vals.clear();
            let mut result = Ok(());
            for e in exprs {
                match e.eval_values(row) {
                    Ok(v) => vals.push(v),
                    Err(e) => {
                        result = Err(Sk::Err::from(e));
                        break;
                    }
                }
            }
            if result.is_ok() {
                result = push_row::<S, Sk>(
                    &vals,
                    payload,
                    stages,
                    tables,
                    depth + 1,
                    scratch,
                    sink,
                );
            }
            scratch[depth] = vals;
            result
        }
        Stage::Probe { build, left_keys, right_keys } => {
            let Some(h) = row_key_hash(row, left_keys) else { return Ok(()) };
            let table = tables[depth].as_ref().expect("probe stage has a build table");
            let mut vals = std::mem::take(&mut scratch[depth]);
            let mut result = Ok(());
            for &ri in table.candidates(h) {
                let (brow, bpayload) = build.row(ri as usize);
                if !ops::join_keys_eq(row, left_keys, brow, right_keys) {
                    continue; // hash collision
                }
                let Some(joined) = S::conjoin(payload, bpayload) else { continue };
                vals.clear();
                vals.extend_from_slice(row);
                vals.extend_from_slice(brow);
                if let Err(e) = push_row::<S, Sk>(
                    &vals,
                    &joined,
                    stages,
                    tables,
                    depth + 1,
                    scratch,
                    sink,
                ) {
                    result = Err(e);
                    break;
                }
            }
            scratch[depth] = vals;
            result
        }
    }
}
