//! The shared fused-execution core: one morsel-driven stage walker
//! serving both front ends.
//!
//! The certain ([`plan`](crate::plan)) and U-relational
//! ([`ustream`](crate::ustream)) executors run the *same* machine — a
//! source of rows pushed through Filter/Project/Probe stages morsel by
//! morsel — differing only in the **payload** that rides along with
//! each row: nothing for certain relations, a [`Wsd`] for U-relations
//! (conjoined at probe stages, with unsatisfiable conjunctions dropping
//! the row). [`RowSource`] abstracts exactly that difference, so the
//! selection-vector fast path, the scratch-buffer recursion, and the
//! morsel-ordered merge exist once.
//!
//! What happens to a row that survives the whole stage chain is equally
//! pluggable: a [`MorselSink`] receives each output row. The default
//! sink batches rows into a morsel-local
//! [`TupleBatch`](maybms_engine::tuple::TupleBatch) (pipelines that
//! *materialise*); the grouped-aggregation breaker
//! ([`groupby`](crate::groupby)) instead folds each row straight into a
//! morsel-local group table, so grouped plans never materialise their
//! input at all.
//!
//! Build tables for probe stages are constructed *here*, at execution
//! time, morsel-locally on the caller's pool — deferring the build to
//! the same pool and morsel size the rest of the pipeline uses.

use maybms_engine::column::ColumnBatch;
use maybms_engine::error::{EngineError, Result};
use maybms_engine::tuple::{Relation, Tuple, TupleBatch};
use maybms_engine::{ops, vector, Expr, Value};
use maybms_par::ThreadPool;
use maybms_urel::{URelation, Wsd};

use crate::build::BuildTable;
use crate::row_key_hash;

/// A bag of rows, each a value slice plus a cheap-to-clone payload.
pub(crate) trait RowSource: Sync {
    /// What rides along with each row (conditions, or nothing).
    type Payload: Clone + Send;
    /// Number of rows.
    fn len(&self) -> usize;
    /// Row `i`'s values and payload.
    fn row(&self, i: usize) -> (&[Value], &Self::Payload);
    /// Row `i`'s payload alone — unlike [`RowSource::row`], never forces
    /// a columnar-at-rest source to materialise its row view.
    fn payload(&self, i: usize) -> &Self::Payload {
        self.row(i).1
    }
    /// The at-rest column batch, when the source stores its rows
    /// column-major. Kernel-eligible prefixes slice it directly instead
    /// of pivoting each morsel (the zero-pivot scan path).
    fn at_rest(&self) -> Option<&ColumnBatch> {
        None
    }
    /// Combine the payloads of a probe row and a build row; `None`
    /// drops the joined row.
    fn conjoin(a: &Self::Payload, b: &Self::Payload) -> Option<Self::Payload>;
}

impl RowSource for Relation {
    type Payload = ();

    fn len(&self) -> usize {
        Relation::len(self)
    }

    fn row(&self, i: usize) -> (&[Value], &()) {
        (self.tuples()[i].values(), &())
    }

    fn payload(&self, _i: usize) -> &() {
        &()
    }

    fn at_rest(&self) -> Option<&ColumnBatch> {
        Relation::at_rest(self)
    }

    fn conjoin(_: &(), _: &()) -> Option<()> {
        Some(())
    }
}

impl RowSource for URelation {
    type Payload = Wsd;

    fn len(&self) -> usize {
        URelation::len(self)
    }

    fn row(&self, i: usize) -> (&[Value], &Wsd) {
        let t = &self.tuples()[i];
        (t.data.values(), &t.wsd)
    }

    fn payload(&self, i: usize) -> &Wsd {
        match URelation::at_rest(self) {
            Some((_, wsds)) => &wsds[i],
            None => &self.tuples()[i].wsd,
        }
    }

    fn at_rest(&self) -> Option<&ColumnBatch> {
        URelation::at_rest(self).map(|(batch, _)| batch)
    }

    fn conjoin(a: &Wsd, b: &Wsd) -> Option<Wsd> {
        a.conjoin(b)
    }
}

/// One bound, ready-to-run stage. The build side of a probe has the
/// same row type as the stream (its table is built at run time).
pub(crate) enum Stage<S: RowSource> {
    /// σ — expressions bound to the incoming row shape.
    Filter(Expr),
    /// π — one bound expression per output column.
    Project(Vec<Expr>),
    /// Hash-join probe: `stream row ++ build row` per verified
    /// candidate, payloads conjoined.
    Probe {
        /// The materialised build side.
        build: S,
        /// Key columns in the incoming row.
        left_keys: Vec<usize>,
        /// Key columns in the build rows.
        right_keys: Vec<usize>,
    },
}

/// Can no stage of this chain raise a runtime error? Probes evaluate no
/// expressions (hash, verify, conjoin), so only σ/π expressions count.
/// This is the guard for the bind-time `σ_false → empty` shortcut: an
/// all-infallible chain can be skipped without swallowing an error.
pub(crate) fn stages_infallible<S: RowSource>(stages: &[Stage<S>]) -> bool {
    stages.iter().all(|s| match s {
        Stage::Filter(p) => p.infallible(),
        Stage::Project(es) => es.iter().all(Expr::infallible),
        Stage::Probe { .. } => true,
    })
}

/// How many leading stages of `stages` are kernel-eligible: a run of
/// σ/π whose expressions all pass [`vector::vectorisable`], ending at
/// the first probe (probes — and the U-relational WSD bookkeeping that
/// rides on them — stay row-wise; the batch pivots back to shared-row
/// tuples there). This is the per-stage decision `EXPLAIN` reports.
pub(crate) fn vector_prefix_len<S: RowSource>(stages: &[Stage<S>]) -> usize {
    stages
        .iter()
        .take_while(|s| match s {
            Stage::Filter(p) => vector::vectorisable(p),
            Stage::Project(es) => es.iter().all(vector::vectorisable),
            Stage::Probe { .. } => false,
        })
        .count()
}

/// One stage of the columnar plan, expressions remapped (where they
/// predate the first projection) to the pivoted column subset.
enum VecStage {
    Filter(Expr),
    Project(Vec<Expr>),
}

/// The columnar execution plan for a pipeline's kernel-eligible prefix,
/// computed once per pipeline run (plan time), shared by every morsel.
pub(crate) struct VecPrefix {
    /// Number of `stages` covered (the rest run row-wise).
    len: usize,
    stages: Vec<VecStage>,
    /// Source columns to pivot — only those the prefix reads (up to and
    /// including the first projection, which replaces the row shape).
    pivot_cols: Vec<usize>,
}

/// Plan the columnar prefix, or `None` when nothing vectorises.
pub(crate) fn plan_vec<S: RowSource>(stages: &[Stage<S>], columnar: bool) -> Option<VecPrefix> {
    if !columnar {
        return None;
    }
    let len = vector_prefix_len(stages);
    if len == 0 {
        return None;
    }
    let first_proj = stages[..len]
        .iter()
        .position(|s| matches!(s, Stage::Project(_)));
    // Stages up to (and including) the first projection read the source
    // row shape; later prefix stages read the projected batch whole.
    let remap_upto = first_proj.map_or(len, |p| p + 1);
    let mut pivot_cols = Vec::new();
    for s in &stages[..remap_upto] {
        match s {
            Stage::Filter(p) => p.referenced_columns(&mut pivot_cols),
            Stage::Project(es) => es.iter().for_each(|e| e.referenced_columns(&mut pivot_cols)),
            Stage::Probe { .. } => unreachable!("prefix stops at probes"),
        }
    }
    pivot_cols.sort_unstable();
    pivot_cols.dedup();
    let map = |i: usize| {
        pivot_cols.binary_search(&i).expect("referenced column collected above")
    };
    let mut vec_stages = Vec::with_capacity(len);
    for (k, s) in stages[..len].iter().enumerate() {
        let remap = k < remap_upto;
        match s {
            Stage::Filter(p) => vec_stages.push(VecStage::Filter(if remap {
                p.remap_columns(&map)
            } else {
                p.clone()
            })),
            Stage::Project(es) => vec_stages.push(VecStage::Project(
                es.iter()
                    .map(|e| if remap { e.remap_columns(&map) } else { e.clone() })
                    .collect(),
            )),
            Stage::Probe { .. } => unreachable!("prefix stops at probes"),
        }
    }
    Some(VecPrefix { len, stages: vec_stages, pivot_cols })
}

/// Per-morsel, per-stage row tally: `(rows in, rows out)` for each
/// stage, accumulated on the morsel's stack and flushed to an attached
/// [`maybms_obs::PipelineStats`] once per morsel. Row counts per stage
/// are independent of morsel boundaries, so their sums are identical to
/// a sequential scan at any thread count or morsel size — attaching a
/// collector never perturbs the determinism contract.
pub(crate) type StageTally = [(u64, u64)];

/// Run the columnar prefix over one morsel. Returns the surviving rows'
/// batch (when the prefix projected), their source indices (for
/// payloads, and for the row values when it did not), and the morsel's
/// pending error.
///
/// Error discipline (replicating the row-major scalar order): whenever a
/// stage errors at some row, the batch truncates to the rows *before*
/// it and later stages keep running on them — any error they find is at
/// a strictly earlier source row and replaces the pending one, so the
/// error that survives is the one the scalar row-at-a-time walk would
/// have hit first. Rows that survive every stage ahead of the error row
/// still reach the sink, exactly as the scalar walk pushed them before
/// erroring (the sink is discarded on error either way).
pub(crate) fn run_vec<S: RowSource>(
    pre: &VecPrefix,
    source: &S,
    range: std::ops::Range<usize>,
    tally: &mut StageTally,
) -> (Option<ColumnBatch>, Vec<u32>, Option<EngineError>) {
    let mut src: Vec<u32> = range.clone().map(|i| i as u32).collect();
    // Columnar-at-rest sources hand the prefix typed column slices
    // straight from storage — no pivot, no row materialisation. Row
    // stores pivot this one morsel (counted by the pivot metrics).
    let mut batch = match source.at_rest() {
        Some(rest) => rest.slice_cols(range.start, range.len(), &pre.pivot_cols),
        None => ColumnBatch::pivot(
            range.len(),
            range.clone().map(|i| source.row(i).0),
            &pre.pivot_cols,
        ),
    };
    let mut pending = None;
    let mut projected = false;
    for (k, stage) in pre.stages.iter().enumerate() {
        tally[k].0 += batch.rows() as u64;
        match stage {
            VecStage::Filter(p) => {
                let (sel, err) = vector::selection(p, &batch);
                if let Some((_, e)) = err {
                    pending = Some(e);
                }
                batch = batch.gather(&sel);
                src = sel.iter().map(|&j| src[j as usize]).collect();
            }
            VecStage::Project(es) => {
                let mut n_valid = batch.rows();
                let mut cols = Vec::with_capacity(es.len());
                for e in es {
                    let (col, err) = vector::eval_batch(e, &batch);
                    if let Some((k, er)) = err {
                        // Scalar order: expressions left to right within
                        // a row, rows in order — a later expression's
                        // error only wins at a strictly earlier row.
                        if k < n_valid {
                            n_valid = k;
                            pending = Some(er);
                        }
                    }
                    cols.push(col);
                }
                batch = ColumnBatch::from_columns(cols, n_valid);
                src.truncate(n_valid);
                projected = true;
            }
        }
        tally[k].1 += batch.rows() as u64;
    }
    (projected.then_some(batch), src, pending)
}

/// A morsel-local consumer of rows that survive the stage chain. One
/// sink exists per morsel; the caller merges finished sinks in morsel
/// order, so a sink never needs to be thread-safe itself.
///
/// The error type is associated (rather than fixed to [`EngineError`])
/// so U-relational sinks can fail with `maybms-urel` errors — stage
/// evaluation errors convert in via `From`.
pub(crate) trait MorselSink<P> {
    /// The error the sink's consumer works in.
    type Err: From<EngineError> + Send;
    /// Consume one surviving row and its payload.
    fn push(&mut self, row: &[Value], payload: &P) -> std::result::Result<(), Self::Err>;
}

/// The materialising sink: rows into a morsel-local [`TupleBatch`],
/// payloads alongside.
pub(crate) struct RowsSink<P> {
    pub(crate) batch: TupleBatch,
    pub(crate) payloads: Vec<P>,
}

impl<P: Clone + Send> MorselSink<P> for RowsSink<P> {
    type Err = EngineError;

    fn push(&mut self, row: &[Value], payload: &P) -> Result<()> {
        self.batch.begin_row();
        for v in row {
            self.batch.push_value(v.clone());
        }
        self.payloads.push(payload.clone());
        Ok(())
    }
}

/// What a fused pipeline produced.
pub(crate) enum FusedOutput<P> {
    /// All-filter pipeline: the surviving source indices, in order —
    /// gather them to share row storage with the source.
    Select(Vec<usize>),
    /// Constructed rows and their payloads, in order.
    Rows(Vec<Tuple>, Vec<P>),
}

/// Run `stages` over every row of `source`, morsel-parallel on `pool`,
/// feeding every surviving row into a fresh per-morsel sink built by
/// `make_sink`. Returns the finished sinks **in morsel order**; the
/// earliest morsel's error wins, so the error (if any) is identical to a
/// sequential scan at any thread count.
///
/// With `columnar` set, the kernel-eligible σ/π prefix of the chain
/// runs vectorised per morsel (pivot → typed kernels → gather), pivoting
/// back to rows for the remaining stages and the sink — output and
/// errors bit-identical to the row walk.
pub(crate) fn run_sink<S, Sk, MK>(
    source: &S,
    stages: &[Stage<S>],
    pool: &ThreadPool,
    min_morsel: usize,
    columnar: bool,
    stats: Option<&maybms_obs::PipelineStats>,
    make_sink: MK,
) -> std::result::Result<Vec<Sk>, Sk::Err>
where
    S: RowSource,
    Sk: MorselSink<S::Payload> + Send,
    MK: Fn() -> Sk + Sync,
{
    let metrics = maybms_obs::metrics();
    metrics.pipelines.inc();
    if let Some(st) = stats {
        for (k, s) in stages.iter().enumerate() {
            if let Stage::Probe { build, .. } = s {
                st.stages[k].build_rows.add(build.len() as u64);
            }
        }
    }
    for s in stages {
        if let Stage::Probe { build, .. } = s {
            metrics.join_build_rows.add(build.len() as u64);
        }
    }
    // Morsel-local build tables for the probe stages, on this pool.
    let tables: Vec<Option<BuildTable>> = stages
        .iter()
        .map(|s| match s {
            Stage::Probe { build, right_keys, .. } => {
                Some(build_table(build, right_keys, pool, min_morsel))
            }
            _ => None,
        })
        .collect();
    let pre = plan_vec(stages, columnar);

    // A one-thread pool runs morsels back-to-back anyway; one morsel
    // spares the sink merges (the merged result is identical either way).
    let chunk = if pool.threads() == 1 {
        source.len().max(1)
    } else {
        maybms_par::auto_chunk(source.len(), pool.threads(), min_morsel)
    };
    let outputs: Vec<std::result::Result<Sk, Sk::Err>> =
        pool.par_map_chunks(source.len(), chunk, |range| {
            // Governor checkpoint: one relaxed load per morsel when no
            // limit is armed.
            maybms_gov::check().map_err(|g| Sk::Err::from(EngineError::Gov(g)))?;
            let n_src = range.len() as u64;
            let mut tally = vec![(0u64, 0u64); stages.len()];
            let mut sink = make_sink();
            let mut gov = maybms_gov::Ticker::new();
            if let Some(pre) = &pre {
                // Columnar prefix, then the row walk for the rest.
                let rest = &stages[pre.len..];
                let rest_tables = &tables[pre.len..];
                let mut scratch: Vec<Vec<Value>> = vec![Vec::new(); rest.len()];
                let (prefix_tally, rest_tally) = tally.split_at_mut(pre.len);
                let (batch, src, pending) = run_vec(pre, source, range, prefix_tally);
                let mut rowbuf: Vec<Value> = Vec::new();
                for (j, &si) in src.iter().enumerate() {
                    let payload = source.payload(si as usize);
                    let row: &[Value] = match &batch {
                        Some(b) => {
                            b.write_row(j, &mut rowbuf);
                            &rowbuf
                        }
                        None => source.row(si as usize).0,
                    };
                    push_row::<S, Sk>(
                        row,
                        payload,
                        rest,
                        rest_tables,
                        0,
                        &mut scratch,
                        rest_tally,
                        &mut sink,
                        &mut gov,
                    )?;
                }
                // Any row-walk error above was at an earlier source row
                // than the prefix's pending error — row-major order.
                if let Some(e) = pending {
                    return Err(Sk::Err::from(e));
                }
            } else {
                let mut scratch: Vec<Vec<Value>> = vec![Vec::new(); stages.len()];
                for i in range {
                    let (row, payload) = source.row(i);
                    push_row::<S, Sk>(
                        row,
                        payload,
                        stages,
                        &tables,
                        0,
                        &mut scratch,
                        &mut tally,
                        &mut sink,
                        &mut gov,
                    )?;
                }
            }
            let pushed = tally.last().map_or(n_src, |t| t.1);
            metrics.morsels.inc();
            metrics.rows_in.add(n_src);
            metrics.rows_out.add(pushed);
            if let Some(st) = stats {
                st.flush_morsel(&tally);
            }
            Ok(sink)
        });
    outputs.into_iter().collect()
}

/// Build a probe stage's hash table. A columnar-at-rest build side with
/// a single dictionary-encoded key column hashes each *distinct*
/// dictionary entry once (cached on the dictionary itself, so repeated
/// joins against the same stored table never re-hash) and assigns row
/// hashes by code lookup — no build-row materialisation. The hash values
/// are exactly [`row_key_hash`]'s, so probe-side hashing, candidate
/// verification, and NULL-key handling are unchanged.
fn build_table<S: RowSource>(
    build: &S,
    right_keys: &[usize],
    pool: &ThreadPool,
    min_morsel: usize,
) -> BuildTable {
    if let ([k], Some(rest)) = (right_keys, build.at_rest()) {
        let col = rest.column(*k);
        if let maybms_engine::ColumnData::Dict { codes, dict } = col.data() {
            let entry_hashes = dict.cached_hashes(|entries| {
                entries
                    .iter()
                    .map(|s| {
                        maybms_engine::ops::single_key_hash(&Value::Str(s.clone()))
                            .expect("non-NULL string keys always hash")
                    })
                    .collect()
            });
            return BuildTable::build(
                build.len(),
                |i| {
                    if col.is_null(i) {
                        None // NULL keys never enter the table
                    } else {
                        Some(entry_hashes[codes[i] as usize])
                    }
                },
                pool,
                min_morsel,
            );
        }
    }
    BuildTable::build(
        build.len(),
        |i| row_key_hash(build.row(i).0, right_keys),
        pool,
        min_morsel,
    )
}

/// Run `stages` over every row of `source`, morsel-parallel on `pool`,
/// materialising the surviving rows. Morsel outputs merge in morsel
/// order; the output (and error row, if any) is identical to a
/// sequential scan at any thread count — with or without `columnar`.
pub(crate) fn run<S: RowSource>(
    source: &S,
    stages: &[Stage<S>],
    pool: &ThreadPool,
    min_morsel: usize,
    columnar: bool,
    stats: Option<&maybms_obs::PipelineStats>,
) -> Result<FusedOutput<S::Payload>> {
    // All-filter pipelines stay a selection vector end to end (columnar
    // predicates produce the selection directly; no project means no
    // batch survives — the output shares the source's row storage).
    if stages.iter().all(|s| matches!(s, Stage::Filter(_))) {
        let metrics = maybms_obs::metrics();
        metrics.pipelines.inc();
        let pre = plan_vec(stages, columnar);
        let chunk = maybms_par::auto_chunk(source.len(), pool.threads(), min_morsel);
        let partials: Vec<Result<Vec<usize>>> =
            pool.par_map_chunks(source.len(), chunk, |range| {
                maybms_gov::check().map_err(EngineError::Gov)?;
                let n_src = range.len() as u64;
                let mut tally = vec![(0u64, 0u64); stages.len()];
                let (src, pending, start) = match &pre {
                    Some(pre) => {
                        let (_, src, pending) = run_vec(pre, source, range, &mut tally);
                        (src, pending, pre.len)
                    }
                    None => (range.map(|i| i as u32).collect(), None, 0),
                };
                let mut sel = Vec::new();
                if stages[start..].is_empty() {
                    // Fully vectorised chain: the selection is final — on
                    // a columnar-at-rest source no row is ever touched.
                    sel.extend(src.iter().map(|&si| si as usize));
                } else {
                    let mut gov = maybms_gov::Ticker::new();
                    'row: for &si in &src {
                        gov.tick().map_err(EngineError::Gov)?;
                        let (row, _) = source.row(si as usize);
                        for (k, s) in stages[start..].iter().enumerate() {
                            let Stage::Filter(p) = s else { unreachable!() };
                            tally[start + k].0 += 1;
                            if !p.eval_predicate_values(row)? {
                                continue 'row;
                            }
                            tally[start + k].1 += 1;
                        }
                        sel.push(si as usize);
                    }
                }
                if let Some(e) = pending {
                    return Err(e);
                }
                let pushed = tally.last().map_or(n_src, |t| t.1);
                metrics.morsels.inc();
                metrics.rows_in.add(n_src);
                metrics.rows_out.add(pushed);
                if let Some(st) = stats {
                    st.flush_morsel(&tally);
                }
                Ok(sel)
            });
        let mut sel = Vec::new();
        for p in partials {
            sel.extend(p?);
        }
        return Ok(FusedOutput::Select(sel));
    }

    // General fused path: push every source row through the stage chain
    // into a morsel-local batch.
    let sinks = run_sink(source, stages, pool, min_morsel, columnar, stats, || RowsSink {
        batch: TupleBatch::new(),
        payloads: Vec::new(),
    })?;
    let mut tuples = Vec::new();
    let mut payloads = Vec::new();
    for sink in sinks {
        tuples.extend(sink.batch.finish());
        payloads.extend(sink.payloads);
    }
    Ok(FusedOutput::Rows(tuples, payloads))
}

/// Push one in-flight row through `stages[depth..]`. `scratch[depth]`
/// is the reusable value buffer of the constructing stage at `depth` —
/// taken out around the recursion and always restored, so the morsel
/// allocates nothing after warmup even across evaluation errors.
#[allow(clippy::too_many_arguments)]
fn push_row<S: RowSource, Sk: MorselSink<S::Payload>>(
    row: &[Value],
    payload: &S::Payload,
    stages: &[Stage<S>],
    tables: &[Option<BuildTable>],
    depth: usize,
    scratch: &mut [Vec<Value>],
    tally: &mut StageTally,
    sink: &mut Sk,
    gov: &mut maybms_gov::Ticker,
) -> std::result::Result<(), Sk::Err> {
    let Some(stage) = stages.get(depth) else {
        // Morsel-boundary checks alone are not enough here: a probe
        // chain can expand one source morsel into an unbounded cross
        // product (and a one-thread pool runs the whole source as a
        // single morsel), so a runaway join would be uncancellable and
        // blow straight through a memory budget.
        gov.tick().map_err(|g| Sk::Err::from(EngineError::Gov(g)))?;
        return sink.push(row, payload);
    };
    tally[depth].0 += 1;
    match stage {
        Stage::Filter(p) => {
            if p.eval_predicate_values(row).map_err(Sk::Err::from)? {
                tally[depth].1 += 1;
                push_row::<S, Sk>(
                    row,
                    payload,
                    stages,
                    tables,
                    depth + 1,
                    scratch,
                    tally,
                    sink,
                    gov,
                )?;
            }
            Ok(())
        }
        Stage::Project(exprs) => {
            let mut vals = std::mem::take(&mut scratch[depth]);
            vals.clear();
            let mut result = Ok(());
            for e in exprs {
                match e.eval_values(row) {
                    Ok(v) => vals.push(v),
                    Err(e) => {
                        result = Err(Sk::Err::from(e));
                        break;
                    }
                }
            }
            if result.is_ok() {
                tally[depth].1 += 1;
                result = push_row::<S, Sk>(
                    &vals,
                    payload,
                    stages,
                    tables,
                    depth + 1,
                    scratch,
                    tally,
                    sink,
                    gov,
                );
            }
            scratch[depth] = vals;
            result
        }
        Stage::Probe { build, left_keys, right_keys } => {
            let Some(h) = row_key_hash(row, left_keys) else { return Ok(()) };
            let table = tables[depth].as_ref().expect("probe stage has a build table");
            let mut vals = std::mem::take(&mut scratch[depth]);
            let mut result = Ok(());
            for &ri in table.candidates(h) {
                let (brow, bpayload) = build.row(ri as usize);
                if !ops::join_keys_eq(row, left_keys, brow, right_keys) {
                    continue; // hash collision
                }
                let Some(joined) = S::conjoin(payload, bpayload) else { continue };
                vals.clear();
                vals.extend_from_slice(row);
                vals.extend_from_slice(brow);
                tally[depth].1 += 1;
                if let Err(e) = push_row::<S, Sk>(
                    &vals,
                    &joined,
                    stages,
                    tables,
                    depth + 1,
                    scratch,
                    tally,
                    sink,
                    gov,
                ) {
                    result = Err(e);
                    break;
                }
            }
            scratch[depth] = vals;
            result
        }
    }
}
