//! Morsel-local grouped aggregation with a deterministic merge — the
//! grouped-aggregation **breaker**, sibling of [`crate::build`].
//!
//! Before this module, every `GROUP BY` plan materialised its full input
//! (the aggregation breaker collected the whole pipeline output, then a
//! second pass grouped it). Here the grouping *is* the sink: each morsel
//! of the fused stage chain folds its surviving rows into a **private**
//! [`GroupTable`] — hashed key → accumulator state — and the private
//! tables merge **in morsel order**:
//!
//! * a key's first-seen position is decided by the earliest morsel that
//!   contains it, so the merged key order equals the sequential scan's
//!   first-seen order at any thread count or morsel size;
//! * two states for the same key merge with a caller-supplied `merge`
//!   (e.g. [`AggState::merge`](maybms_engine::ops::AggState::merge)),
//!   whose contract is that fold-then-merge equals folding the
//!   concatenated rows — float sums use
//!   [`ExactSum`](maybms_engine::ops::ExactSum) to make that hold
//!   bit-for-bit.
//!
//! The state type is generic: the certain executor folds
//! `Vec<AggState>` per group; `maybms-core` threads the U-relational
//! side through [`UStream::collect_grouped`](crate::UStream::collect_grouped)
//! with an accumulator holding member WSDs (for the per-group `conf()`
//! fan-out) and running `esum`/`ecount` partial sums.

use maybms_engine::error::EngineError;
use maybms_engine::hash::{fast_hash_one, FastMap};
use maybms_engine::{Expr, Value};
use maybms_par::ThreadPool;

use crate::fuse::{self, MorselSink, RowSource, Stage};

/// A hashed group → state table in first-seen key order.
///
/// Keys are staged in a caller scratch buffer and cloned only when they
/// open a *new* group ([`GroupTable::entry`]), so grouping allocates per
/// group, not per row. [`GroupTable::merge_in`] absorbs a later
/// (higher-morsel) table deterministically.
#[derive(Debug)]
pub struct GroupTable<A> {
    /// key hash → indices into `keys`/`states` (equality-verified).
    buckets: FastMap<u64, Vec<u32>>,
    /// Group keys in first-seen order.
    keys: Vec<Vec<Value>>,
    /// One state per group, parallel to `keys`.
    states: Vec<A>,
    /// Governor working-memory tally: charged once per opened group
    /// (never per row), credited when the table drops.
    charge: maybms_gov::MemCharge,
}

impl<A> Default for GroupTable<A> {
    fn default() -> Self {
        GroupTable::new()
    }
}

impl<A> GroupTable<A> {
    /// An empty table.
    pub fn new() -> GroupTable<A> {
        GroupTable {
            buckets: Default::default(),
            keys: Vec::new(),
            states: Vec::new(),
            charge: maybms_gov::MemCharge::new(),
        }
    }

    /// Approximate bytes one group of `key_len` key values occupies.
    fn group_bytes(key_len: usize) -> usize {
        key_len * std::mem::size_of::<Value>()
            + std::mem::size_of::<Vec<Value>>()
            + std::mem::size_of::<A>()
            + std::mem::size_of::<u32>()
    }

    /// Number of groups.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// True when no group has been opened.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// The state for `key`, opening a new group (cloning the key and
    /// calling `new_state`) on first sight.
    pub fn entry(&mut self, key: &[Value], new_state: impl FnOnce() -> A) -> &mut A {
        let h = fast_hash_one(key);
        let bucket = self.buckets.entry(h).or_default();
        match bucket.iter().find(|&&g| self.keys[g as usize] == key) {
            Some(&g) => &mut self.states[g as usize],
            None => {
                bucket.push(self.keys.len() as u32);
                self.keys.push(key.to_vec());
                self.states.push(new_state());
                self.charge.add(Self::group_bytes(key.len()));
                self.states.last_mut().expect("just pushed")
            }
        }
    }

    /// Absorb a **later** table: `other`'s groups are visited in its
    /// first-seen order; a key already present merges states (`self`'s
    /// state is the earlier one), a new key appends. Merging tables in
    /// morsel order therefore reproduces the sequential first-seen key
    /// order exactly.
    pub fn merge_in<E>(
        &mut self,
        other: GroupTable<A>,
        mut merge: impl FnMut(&mut A, A) -> Result<(), E>,
    ) -> Result<(), E> {
        for (key, state) in other.keys.into_iter().zip(other.states) {
            let h = fast_hash_one(&key[..]);
            let bucket = self.buckets.entry(h).or_default();
            match bucket.iter().find(|&&g| self.keys[g as usize] == key) {
                Some(&g) => merge(&mut self.states[g as usize], state)?,
                None => {
                    bucket.push(self.keys.len() as u32);
                    self.charge.add(Self::group_bytes(key.len()));
                    self.keys.push(key);
                    self.states.push(state);
                }
            }
        }
        Ok(())
    }

    /// The keys and states, parallel, in first-seen order.
    pub fn into_parts(self) -> (Vec<Vec<Value>>, Vec<A>) {
        (self.keys, self.states)
    }

    /// Open a new group, returning its index. The dense-code fast path
    /// calls this only on a key's first sight (its own dense map
    /// guarantees absence), so no bucket probe is needed — but the bucket
    /// is still maintained, keeping the table valid as a merge target.
    fn open_group(&mut self, key: Vec<Value>, state: A) -> u32 {
        let g = self.keys.len() as u32;
        self.buckets.entry(fast_hash_one(&key[..])).or_default().push(g);
        self.charge.add(Self::group_bytes(key.len()));
        self.keys.push(key);
        self.states.push(state);
        g
    }

    /// The state of group `g` (an index returned by
    /// [`GroupTable::open_group`]).
    fn state_mut(&mut self, g: u32) -> &mut A {
        &mut self.states[g as usize]
    }
}

/// The grouped morsel sink: evaluates the (bound) key expressions into a
/// scratch buffer, opens/looks up the group, and folds the row.
struct GroupSink<'a, A, NF, FF> {
    table: GroupTable<A>,
    key_exprs: &'a [Expr],
    new_state: &'a NF,
    fold: &'a FF,
    scratch: Vec<Value>,
}

impl<'a, P, A, E, NF, FF> MorselSink<P> for GroupSink<'a, A, NF, FF>
where
    E: From<EngineError> + Send,
    NF: Fn() -> A,
    FF: Fn(&mut A, &[Value], &P) -> Result<(), E>,
{
    type Err = E;

    fn push(&mut self, row: &[Value], payload: &P) -> Result<(), E> {
        self.scratch.clear();
        for e in self.key_exprs {
            self.scratch.push(e.eval_values(row).map_err(E::from)?);
        }
        let state = self.table.entry(&self.scratch, self.new_state);
        (self.fold)(state, row, payload)
    }
}

/// Run a fused stage chain with grouped aggregation as the terminal
/// sink: per-morsel [`GroupTable`]s, merged in morsel order. Returns
/// `(keys, states)` in first-seen order.
///
/// With no key expressions, a single global group is guaranteed (even
/// over an empty input — SQL's scalar-aggregate behaviour).
#[allow(clippy::too_many_arguments)]
pub(crate) fn group_stream<S, A, E, NF, FF, MF>(
    source: &S,
    stages: &[Stage<S>],
    key_exprs: &[Expr],
    pool: &ThreadPool,
    min_morsel: usize,
    columnar: bool,
    stats: Option<&maybms_obs::PipelineStats>,
    new_state: NF,
    fold: FF,
    mut merge: MF,
) -> Result<(Vec<Vec<Value>>, Vec<A>), E>
where
    S: RowSource,
    A: Send,
    E: From<EngineError> + Send,
    NF: Fn() -> A + Sync,
    FF: Fn(&mut A, &[Value], &S::Payload) -> Result<(), E> + Sync,
    MF: FnMut(&mut A, A) -> Result<(), E>,
{
    let mut merged = GroupTable::new();
    if let Some(tables) =
        dense_dict_groups(source, stages, key_exprs, pool, min_morsel, stats, &new_state, &fold)?
    {
        for table in tables {
            merged.merge_in(table, &mut merge)?;
        }
    } else {
        let sinks =
            fuse::run_sink(source, stages, pool, min_morsel, columnar, stats, || GroupSink {
                table: GroupTable::new(),
                key_exprs,
                new_state: &new_state,
                fold: &fold,
                scratch: Vec::with_capacity(key_exprs.len()),
            })?;
        for sink in sinks {
            merged.merge_in(sink.table, &mut merge)?;
        }
    }
    if key_exprs.is_empty() && merged.is_empty() {
        merged.entry(&[], &new_state);
    }
    maybms_obs::metrics().groups.add(merged.len() as u64);
    if let Some(st) = stats {
        st.groups.add(merged.len() as u64);
    }
    Ok(merged.into_parts())
}

/// The dictionary-code grouped fold: a stage-less pipeline grouping a
/// columnar-at-rest source by one dictionary-encoded column resolves
/// each row's group through a **dense code → group map** (one slot per
/// dictionary entry, NULLs in their own slot) instead of evaluating,
/// hashing, and comparing the key string — the key `Value` is built once
/// per *group*, not per row. Rows are written straight out of the column
/// batch ([`maybms_engine::ColumnBatch::write_row`]): the lazy row view
/// is never materialised and nothing pivots.
///
/// Returns `None` when the shape doesn't apply (any recorded stage, a
/// non-columnar source, multiple or non-column keys, a non-dictionary
/// key column). Determinism matches the hashed sink exactly: per-morsel
/// first-seen group order, tables merged in morsel order.
#[allow(clippy::too_many_arguments)]
fn dense_dict_groups<S, A, E, NF, FF>(
    source: &S,
    stages: &[Stage<S>],
    key_exprs: &[Expr],
    pool: &ThreadPool,
    min_morsel: usize,
    stats: Option<&maybms_obs::PipelineStats>,
    new_state: &NF,
    fold: &FF,
) -> Result<Option<Vec<GroupTable<A>>>, E>
where
    S: RowSource,
    A: Send,
    E: From<EngineError> + Send,
    NF: Fn() -> A + Sync,
    FF: Fn(&mut A, &[Value], &S::Payload) -> Result<(), E> + Sync,
{
    let [Expr::ColumnIdx(k)] = key_exprs else { return Ok(None) };
    if !stages.is_empty() {
        return Ok(None);
    }
    let Some(batch) = source.at_rest() else { return Ok(None) };
    let col = batch.column(*k);
    let maybms_engine::ColumnData::Dict { codes, dict } = col.data() else {
        return Ok(None);
    };
    let metrics = maybms_obs::metrics();
    metrics.pipelines.inc();
    let chunk = if pool.threads() == 1 {
        source.len().max(1)
    } else {
        maybms_par::auto_chunk(source.len(), pool.threads(), min_morsel)
    };
    let tables: Vec<Result<GroupTable<A>, E>> =
        pool.par_map_chunks(source.len(), chunk, |range| {
            let n_src = range.len() as u64;
            let mut table: GroupTable<A> = GroupTable::new();
            let mut dense: Vec<u32> = vec![u32::MAX; dict.len()];
            let mut null_group = u32::MAX;
            let mut rowbuf: Vec<Value> = Vec::new();
            for i in range {
                let g = if col.is_null(i) {
                    if null_group == u32::MAX {
                        null_group = table.open_group(vec![Value::Null], new_state());
                    }
                    null_group
                } else {
                    let c = codes[i] as usize;
                    if dense[c] == u32::MAX {
                        let key = Value::Str(dict.get(codes[i]).clone());
                        dense[c] = table.open_group(vec![key], new_state());
                    }
                    dense[c]
                };
                batch.write_row(i, &mut rowbuf);
                fold(table.state_mut(g), &rowbuf, source.payload(i))?;
            }
            metrics.morsels.inc();
            metrics.rows_in.add(n_src);
            metrics.rows_out.add(n_src);
            if let Some(st) = stats {
                st.flush_morsel(&[]);
            }
            Ok(table)
        });
    let mut out = Vec::with_capacity(tables.len());
    for t in tables {
        out.push(t?);
    }
    Ok(Some(out))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Morsel-ordered merge reproduces the sequential first-seen key
    /// order and the sequential state (here: a simple count), regardless
    /// of how the rows were split into tables.
    #[test]
    fn merge_in_is_order_deterministic() {
        let rows: Vec<Vec<Value>> = (0..40)
            .map(|i| {
                vec![match i % 5 {
                    0 => Value::Null,
                    j => Value::Int(j as i64 % 3),
                }]
            })
            .collect();
        let sequential = {
            let mut t: GroupTable<u64> = GroupTable::new();
            for r in &rows {
                *t.entry(r, || 0) += 1;
            }
            t.into_parts()
        };
        for split in [1usize, 3, 7] {
            let mut merged: GroupTable<u64> = GroupTable::new();
            for chunk in rows.chunks(split) {
                let mut local: GroupTable<u64> = GroupTable::new();
                for r in chunk {
                    *local.entry(r, || 0) += 1;
                }
                merged
                    .merge_in(local, |a, b| -> Result<(), EngineError> {
                        *a += b;
                        Ok(())
                    })
                    .unwrap();
            }
            let got = merged.into_parts();
            assert_eq!(got.0, sequential.0, "keys, split {split}");
            assert_eq!(got.1, sequential.1, "states, split {split}");
        }
    }

    #[test]
    fn entry_clones_key_only_once() {
        let mut t: GroupTable<u32> = GroupTable::new();
        let key = [Value::Int(7)];
        *t.entry(&key, || 0) += 1;
        *t.entry(&key, || 0) += 1;
        assert_eq!(t.len(), 1);
        let (keys, states) = t.into_parts();
        assert_eq!(keys, vec![vec![Value::Int(7)]]);
        assert_eq!(states, vec![2]);
    }

    #[test]
    fn merge_error_propagates() {
        let mut a: GroupTable<u32> = GroupTable::new();
        a.entry(&[Value::Int(1)], || 0);
        let mut b: GroupTable<u32> = GroupTable::new();
        b.entry(&[Value::Int(1)], || 0);
        let err = a.merge_in(b, |_, _| {
            Err(EngineError::TypeMismatch { message: "boom".into() })
        });
        assert!(err.is_err());
    }
}
