//! Pipeline decomposition and morsel-driven execution of engine
//! [`PhysicalPlan`]s.
//!
//! [`decompose`] splits a plan into pipelines at breakers; [`execute`]
//! runs the decomposition, streaming every pipeline morsel-by-morsel on
//! the `maybms-par` pool. The output is **bit-identical** to
//! [`PhysicalPlan::execute`] — same schema, same tuples, same order — at
//! any thread count: fused stages preserve row order within a morsel and
//! morsel outputs are concatenated in morsel order, while breakers reuse
//! the materialising operators unchanged.

use std::fmt::Write as _;
use std::sync::Arc;

use maybms_engine::error::{EngineError, Result};
use maybms_engine::expr::Expr;
use maybms_engine::ops::{self, AggCall, ProjectItem, SortKey};
use maybms_engine::tuple::{Relation, Tuple};
use maybms_engine::types::Value;
use maybms_engine::{optimizer, vector, Catalog, PhysicalPlan, Schema};
use maybms_par::ThreadPool;

use crate::fuse::{self, FusedOutput, Stage};

/// A plan decomposed into pipelines: every node is one pipeline — a
/// source feeding a chain of fused stages. Breakers appear as pipeline
/// sources, each holding its own input pipeline(s).
#[derive(Debug, Clone)]
pub struct PipePlan {
    /// The pipeline's source.
    pub source: Source,
    /// Fused stages, applied in order to every source row.
    pub stages: Vec<StageSpec>,
}

/// Where a pipeline's rows come from.
#[derive(Debug, Clone)]
pub enum Source {
    /// A catalog table scan (optionally re-qualified).
    Scan {
        /// Table name.
        table: String,
        /// Optional alias qualifier.
        alias: Option<String>,
    },
    /// Literal rows.
    Values {
        /// Output schema.
        schema: Arc<Schema>,
        /// The rows.
        rows: Vec<Tuple>,
    },
    /// A full-materialisation operator: its input pipelines run to
    /// completion before this pipeline starts.
    Breaker(Box<Breaker>),
}

/// The pipeline-breaking operators (must see all input before emitting).
#[derive(Debug, Clone)]
pub enum Breaker {
    /// Duplicate elimination.
    Distinct {
        /// Input pipeline.
        input: PipePlan,
    },
    /// ORDER BY.
    Sort {
        /// Input pipeline.
        input: PipePlan,
        /// Sort keys.
        keys: Vec<SortKey>,
    },
    /// LIMIT.
    Limit {
        /// Input pipeline.
        input: PipePlan,
        /// Row cap.
        n: usize,
    },
    /// GROUP BY + aggregates.
    Aggregate {
        /// Input pipeline.
        input: PipePlan,
        /// Group key expressions.
        group_exprs: Vec<Expr>,
        /// Output names for the group keys.
        group_names: Vec<String>,
        /// Aggregate calls.
        aggs: Vec<AggCall>,
    },
    /// Bag union.
    UnionAll {
        /// Input pipelines.
        inputs: Vec<PipePlan>,
    },
    /// Inner join with an arbitrary predicate — no hash probe to fuse.
    NestedLoopJoin {
        /// Left input pipeline.
        left: PipePlan,
        /// Right input pipeline.
        right: PipePlan,
        /// Join predicate.
        predicate: Option<Expr>,
    },
}

/// One fused stage.
#[derive(Debug, Clone)]
pub enum StageSpec {
    /// σ — drop rows failing the predicate.
    Filter {
        /// Predicate over the incoming row shape.
        predicate: Expr,
    },
    /// π — compute a new row per incoming row.
    Project {
        /// Output columns.
        items: Vec<ProjectItem>,
    },
    /// Hash-join probe: the incoming (left) row probes the build table
    /// over the materialised right input, emitting `left ++ right` per
    /// verified candidate — the same convention as `ops::hash_join`.
    Probe {
        /// The build-side pipeline (a breaker: fully materialised first,
        /// then hashed morsel-locally).
        build: PipePlan,
        /// Key columns in the incoming row.
        left_keys: Vec<usize>,
        /// Key columns in the build rows.
        right_keys: Vec<usize>,
    },
}

/// Decompose a physical plan into pipelines split at breakers.
/// `Filter`/`Project`/`HashJoin`-probe chains fuse into the pipeline of
/// their input; everything else starts a fresh pipeline.
pub fn decompose(plan: &PhysicalPlan) -> PipePlan {
    match plan {
        PhysicalPlan::Scan { table, alias } => PipePlan {
            source: Source::Scan { table: table.clone(), alias: alias.clone() },
            stages: Vec::new(),
        },
        PhysicalPlan::Values { schema, rows } => PipePlan {
            source: Source::Values { schema: schema.clone(), rows: rows.clone() },
            stages: Vec::new(),
        },
        PhysicalPlan::Filter { input, predicate } => {
            let mut p = decompose(input);
            p.stages.push(StageSpec::Filter { predicate: predicate.clone() });
            p
        }
        PhysicalPlan::Project { input, items } => {
            let mut p = decompose(input);
            p.stages.push(StageSpec::Project { items: items.clone() });
            p
        }
        PhysicalPlan::HashJoin { left, right, left_keys, right_keys } => {
            let mut p = decompose(left);
            p.stages.push(StageSpec::Probe {
                build: decompose(right),
                left_keys: left_keys.clone(),
                right_keys: right_keys.clone(),
            });
            p
        }
        PhysicalPlan::Distinct { input } => {
            breaker(Breaker::Distinct { input: decompose(input) })
        }
        PhysicalPlan::Sort { input, keys } => {
            breaker(Breaker::Sort { input: decompose(input), keys: keys.clone() })
        }
        PhysicalPlan::Limit { input, n } => {
            breaker(Breaker::Limit { input: decompose(input), n: *n })
        }
        PhysicalPlan::Aggregate { input, group_exprs, group_names, aggs } => {
            breaker(Breaker::Aggregate {
                input: decompose(input),
                group_exprs: group_exprs.clone(),
                group_names: group_names.clone(),
                aggs: aggs.clone(),
            })
        }
        PhysicalPlan::UnionAll { inputs } => {
            breaker(Breaker::UnionAll { inputs: inputs.iter().map(decompose).collect() })
        }
        PhysicalPlan::NestedLoopJoin { left, right, predicate } => {
            breaker(Breaker::NestedLoopJoin {
                left: decompose(left),
                right: decompose(right),
                predicate: predicate.clone(),
            })
        }
    }
}

fn breaker(b: Breaker) -> PipePlan {
    PipePlan { source: Source::Breaker(Box::new(b)), stages: Vec::new() }
}

/// Execute a plan through the pipelined executor on the process-wide
/// pool. Output is bit-identical to [`PhysicalPlan::execute`].
pub fn execute(plan: &PhysicalPlan, catalog: &Catalog) -> Result<Relation> {
    let pool = maybms_par::pool();
    execute_with(plan, catalog, &pool, ops::PAR_MIN_CHUNK)
}

/// [`execute`] on an explicit pool with an explicit minimum morsel size
/// (what the 1/2/8-thread determinism property tests pin). Columnar
/// execution follows [`crate::columnar_default`].
pub fn execute_with(
    plan: &PhysicalPlan,
    catalog: &Catalog,
    pool: &ThreadPool,
    min_morsel: usize,
) -> Result<Relation> {
    execute_opts(plan, catalog, pool, min_morsel, crate::columnar_default())
}

/// [`execute_with`] with the columnar path pinned explicitly — what the
/// columnar ≡ row equivalence tests and the three-way benchmarks use.
pub fn execute_opts(
    plan: &PhysicalPlan,
    catalog: &Catalog,
    pool: &ThreadPool,
    min_morsel: usize,
    columnar: bool,
) -> Result<Relation> {
    let pipe = decompose(plan);
    run(&pipe, catalog, pool, min_morsel, columnar)
}

/// Run one pipeline (recursively running breaker inputs and build
/// sides), binding the stage chain and handing it to the shared fused
/// executor ([`fuse::run`]).
fn run(
    pipe: &PipePlan,
    catalog: &Catalog,
    pool: &ThreadPool,
    min_morsel: usize,
    columnar: bool,
) -> Result<Relation> {
    let source = run_source(&pipe.source, catalog, pool, min_morsel, columnar)?;
    if pipe.stages.is_empty() {
        return Ok(source);
    }
    let mut span = maybms_obs::trace::span("pipeline");
    span.attr("stages", pipe.stages.len());
    span.attr("source_rows", source.len());
    let (bound, schema, const_empty) =
        bind_stages(&pipe.stages, source.schema().clone(), catalog, pool, min_morsel, columnar)?;
    if const_empty {
        return Ok(Relation::empty(schema));
    }
    let out = match fuse::run(&source, &bound, pool, min_morsel, columnar, None)? {
        // All-filter pipeline: gather shares rows with the source,
        // exactly like a chain of materialising filters would.
        FusedOutput::Select(sel) => source.gather(&sel),
        FusedOutput::Rows(tuples, _) => Relation::new_unchecked(schema, tuples),
    };
    span.attr("rows_out", out.len());
    Ok(out)
}

/// Bind a stage chain against the evolving row schema, recursively
/// running probe build sides, **constant-folding every stage expression
/// at bind time** (fewer nodes reaching both evaluation and the
/// kernel-eligibility check). A predicate folding to `true` drops its
/// stage; one folding to `false`/`NULL` short-circuits the whole chain
/// to an empty output — but only when every stage bound so far is
/// infallible, so a runtime error a fused σ/π would have raised is
/// never swallowed. Returns the bound stages, the chain's output
/// schema, and whether the chain is constantly empty.
fn bind_stages(
    stages: &[StageSpec],
    mut schema: Arc<Schema>,
    catalog: &Catalog,
    pool: &ThreadPool,
    min_morsel: usize,
    columnar: bool,
) -> Result<(Vec<Stage<Relation>>, Arc<Schema>, bool)> {
    let mut bound: Vec<Stage<Relation>> = Vec::with_capacity(stages.len());
    let mut const_empty = false;
    for stage in stages {
        match stage {
            StageSpec::Filter { predicate } => {
                let p = optimizer::fold(predicate.bind(&schema)?);
                match &p {
                    Expr::Literal(Value::Bool(true)) => {} // σ_true: no stage
                    Expr::Literal(Value::Bool(false)) | Expr::Literal(Value::Null)
                        if fuse::stages_infallible(&bound) =>
                    {
                        const_empty = true;
                        bound.push(Stage::Filter(p));
                    }
                    _ => bound.push(Stage::Filter(p)),
                }
            }
            StageSpec::Project { items } => {
                let mut exprs = Vec::with_capacity(items.len());
                let mut fields = Vec::with_capacity(items.len());
                for item in items {
                    let e = item.expr.bind(&schema)?;
                    // Field type from the unfolded expression, so the
                    // output schema matches the materialising path.
                    fields.push(maybms_engine::Field::new(
                        item.name.clone(),
                        e.data_type(&schema),
                    ));
                    exprs.push(optimizer::fold(e));
                }
                schema = Arc::new(Schema::new(fields));
                bound.push(Stage::Project(exprs));
            }
            StageSpec::Probe { build, left_keys, right_keys } => {
                let build_rel = run(build, catalog, pool, min_morsel, columnar)?;
                validate_probe_keys(&schema, build_rel.schema(), left_keys, right_keys)?;
                schema = Arc::new(schema.join(build_rel.schema()));
                bound.push(Stage::Probe {
                    build: build_rel,
                    left_keys: left_keys.clone(),
                    right_keys: right_keys.clone(),
                });
            }
        }
    }
    Ok((bound, schema, const_empty))
}

/// The streaming grouped-aggregation breaker: runs the input pipeline's
/// fused stage chain with a morsel-local [`crate::GroupTable`] of
/// [`ops::AggState`]s as the sink — the input is never materialised.
/// Output is bit-identical to materialising the input and calling
/// [`ops::aggregate`] on it, at any thread count and morsel size.
#[allow(clippy::too_many_arguments)]
fn run_grouped_aggregate(
    input: &PipePlan,
    group_exprs: &[Expr],
    group_names: &[String],
    aggs: &[AggCall],
    catalog: &Catalog,
    pool: &ThreadPool,
    min_morsel: usize,
    columnar: bool,
) -> Result<Relation> {
    let source = run_source(&input.source, catalog, pool, min_morsel, columnar)?;
    let (stages, in_schema, const_empty) = bind_stages(
        &input.stages,
        source.schema().clone(),
        catalog,
        pool,
        min_morsel,
        columnar,
    )?;
    let out_schema = ops::aggregate_schema(&in_schema, group_exprs, group_names, aggs)?;
    let bound_aggs = ops::bind_agg_calls(&in_schema, aggs)?;
    let bound_keys: Vec<Expr> = group_exprs
        .iter()
        .map(|e| Ok(optimizer::fold(e.bind(&in_schema)?)))
        .collect::<Result<_>>()?;
    // A constantly-empty input still aggregates (a global group must
    // appear for GROUP-BY-less aggregates): fold over no rows at all.
    let empty_source;
    let (source, stages): (&Relation, &[Stage<Relation>]) = if const_empty {
        empty_source = Relation::empty(in_schema.clone());
        (&empty_source, &[])
    } else {
        (&source, stages.as_slice())
    };
    let (keys, states) = crate::groupby::group_stream(
        source,
        stages,
        &bound_keys,
        pool,
        min_morsel,
        columnar,
        None,
        || ops::new_agg_states(&bound_aggs),
        |states: &mut Vec<ops::AggState>, row: &[maybms_engine::Value], _: &()| {
            ops::fold_agg_row(states, &bound_aggs, row)
        },
        |a: &mut Vec<ops::AggState>, b| ops::merge_agg_states(a, b),
    )?;
    let mut out = Vec::with_capacity(keys.len());
    for (key, sts) in keys.into_iter().zip(states) {
        let mut row = key;
        for st in &sts {
            row.push(st.finish()?);
        }
        out.push(Tuple::new(row));
    }
    Ok(Relation::new_unchecked(out_schema, out))
}

/// Materialise a pipeline source.
fn run_source(
    source: &Source,
    catalog: &Catalog,
    pool: &ThreadPool,
    min_morsel: usize,
    columnar: bool,
) -> Result<Relation> {
    match source {
        Source::Scan { table, alias } => {
            let r = catalog.get(table)?.clone();
            match alias {
                None => Ok(r),
                Some(a) => {
                    let qualified = Arc::new(r.schema().with_qualifier(a));
                    r.with_schema(qualified)
                }
            }
        }
        Source::Values { schema, rows } => Relation::new(schema.clone(), rows.clone()),
        Source::Breaker(b) => {
            let kind = match &**b {
                Breaker::Distinct { .. } => "distinct",
                Breaker::Sort { .. } => "sort",
                Breaker::Limit { .. } => "limit",
                Breaker::Aggregate { .. } => "aggregate",
                Breaker::UnionAll { .. } => "union_all",
                Breaker::NestedLoopJoin { .. } => "nested_loop_join",
            };
            let mut span = maybms_obs::trace::span("breaker");
            span.attr("kind", kind);
            let out = match &**b {
                Breaker::Distinct { input } => {
                    Ok(ops::distinct(&run(input, catalog, pool, min_morsel, columnar)?))
                }
                Breaker::Sort { input, keys } => {
                    ops::sort(&run(input, catalog, pool, min_morsel, columnar)?, keys)
                }
                Breaker::Limit { input, n } => {
                    Ok(ops::limit(&run(input, catalog, pool, min_morsel, columnar)?, *n))
                }
                Breaker::Aggregate { input, group_exprs, group_names, aggs } => {
                    run_grouped_aggregate(
                        input, group_exprs, group_names, aggs, catalog, pool, min_morsel,
                        columnar,
                    )
                }
                Breaker::UnionAll { inputs } => {
                    if inputs.is_empty() {
                        return Err(EngineError::InvalidOperator {
                            message: "UNION of zero inputs".into(),
                        });
                    }
                    let rels: Vec<Relation> = inputs
                        .iter()
                        .map(|p| run(p, catalog, pool, min_morsel, columnar))
                        .collect::<Result<_>>()?;
                    let refs: Vec<&Relation> = rels.iter().collect();
                    ops::union_all(&refs)
                }
                Breaker::NestedLoopJoin { left, right, predicate } => {
                    ops::nested_loop_join(
                        &run(left, catalog, pool, min_morsel, columnar)?,
                        &run(right, catalog, pool, min_morsel, columnar)?,
                        predicate.as_ref(),
                    )
                }
            };
            if let Ok(rel) = &out {
                span.attr("rows_out", rel.len());
            }
            out
        }
    }
}

fn validate_probe_keys(
    left: &Schema,
    right: &Schema,
    left_keys: &[usize],
    right_keys: &[usize],
) -> Result<()> {
    if left_keys.len() != right_keys.len() || left_keys.is_empty() {
        return Err(EngineError::InvalidOperator {
            message: "hash join requires matching, non-empty key lists".into(),
        });
    }
    if let Some(&k) = left_keys.iter().find(|&&k| k >= left.len()) {
        return Err(EngineError::InvalidOperator {
            message: format!("left key #{k} out of range"),
        });
    }
    if let Some(&k) = right_keys.iter().find(|&&k| k >= right.len()) {
        return Err(EngineError::InvalidOperator {
            message: format!("right key #{k} out of range"),
        });
    }
    Ok(())
}

/// Render a plan's pipeline decomposition as indented text — what
/// `EXPLAIN` prints for the certain path. Breakers open new pipelines;
/// fused stages are listed under their pipeline's source.
pub fn explain(plan: &PhysicalPlan) -> String {
    let mut out = String::new();
    describe(&decompose(plan), 0, &mut out);
    out
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

/// How many leading stages the columnar planner would vectorise (the
/// per-stage plan-time decision `EXPLAIN` reports; 0 when the columnar
/// path is disabled).
fn spec_vector_prefix(stages: &[StageSpec]) -> usize {
    if !crate::columnar_default() {
        return 0;
    }
    stages
        .iter()
        .take_while(|s| match s {
            StageSpec::Filter { predicate } => vector::vectorisable(predicate),
            StageSpec::Project { items } => {
                items.iter().all(|i| vector::vectorisable(&i.expr))
            }
            StageSpec::Probe { .. } => false,
        })
        .count()
}

fn describe(pipe: &PipePlan, depth: usize, out: &mut String) {
    indent(out, depth);
    out.push_str("pipeline\n");
    describe_source(&pipe.source, depth + 1, out);
    let vectorised = spec_vector_prefix(&pipe.stages);
    for (k, stage) in pipe.stages.iter().enumerate() {
        let vec_mark = if k < vectorised { " (vectorised)" } else { "" };
        match stage {
            StageSpec::Filter { predicate } => {
                indent(out, depth + 1);
                let _ = writeln!(out, "-> filter {predicate}{vec_mark}");
            }
            StageSpec::Project { items } => {
                indent(out, depth + 1);
                let names: Vec<String> =
                    items.iter().map(|i| format!("{} as {}", i.expr, i.name)).collect();
                let _ = writeln!(out, "-> project [{}]{vec_mark}", names.join(", "));
            }
            StageSpec::Probe { build, left_keys, right_keys } => {
                indent(out, depth + 1);
                let keys: Vec<String> = left_keys
                    .iter()
                    .zip(right_keys)
                    .map(|(l, r)| format!("#{l} = build #{r}"))
                    .collect();
                let _ = writeln!(out, "-> hash probe [{}], build side:", keys.join(", "));
                describe(build, depth + 2, out);
            }
        }
    }
}

fn describe_source(source: &Source, depth: usize, out: &mut String) {
    match source {
        Source::Scan { table, alias } => {
            indent(out, depth);
            // Under the columnar store gate, catalog tables are installed
            // column-major at rest: the scan hands kernel prefixes column
            // slices and never pivots (`maybms_pipe_pivots_total` stays
            // flat across the query).
            let mark = if maybms_engine::columnar_store_default() {
                " (columnar, zero-pivot)"
            } else {
                ""
            };
            match alias {
                Some(a) => {
                    let _ = writeln!(out, "source: scan {table} as {a}{mark}");
                }
                None => {
                    let _ = writeln!(out, "source: scan {table}{mark}");
                }
            }
        }
        Source::Values { rows, .. } => {
            indent(out, depth);
            let _ = writeln!(out, "source: values ({} rows)", rows.len());
        }
        Source::Breaker(b) => {
            indent(out, depth);
            match &**b {
                Breaker::Distinct { input } => {
                    out.push_str("source: breaker distinct over\n");
                    describe(input, depth + 1, out);
                }
                Breaker::Sort { input, keys } => {
                    let ks: Vec<String> = keys
                        .iter()
                        .map(|k| {
                            format!("{}{}", k.expr, if k.ascending { "" } else { " desc" })
                        })
                        .collect();
                    let _ = writeln!(out, "source: breaker sort [{}] over", ks.join(", "));
                    describe(input, depth + 1, out);
                }
                Breaker::Limit { input, n } => {
                    let _ = writeln!(out, "source: breaker limit {n} over");
                    describe(input, depth + 1, out);
                }
                Breaker::Aggregate { input, group_exprs, aggs, .. } => {
                    let _ = writeln!(
                        out,
                        "source: grouped aggregation (streaming, {} keys, {} aggs) over",
                        group_exprs.len(),
                        aggs.len()
                    );
                    describe(input, depth + 1, out);
                }
                Breaker::UnionAll { inputs } => {
                    let _ = writeln!(out, "source: breaker union of {} inputs", inputs.len());
                    for i in inputs {
                        describe(i, depth + 1, out);
                    }
                }
                Breaker::NestedLoopJoin { left, right, predicate } => {
                    match predicate {
                        Some(p) => {
                            let _ =
                                writeln!(out, "source: breaker nested-loop join on {p} over");
                        }
                        None => {
                            out.push_str("source: breaker cross join over\n");
                        }
                    }
                    describe(left, depth + 1, out);
                    describe(right, depth + 1, out);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use maybms_engine::expr::BinaryOp;
    use maybms_engine::tuple::rel;
    use maybms_engine::types::{DataType, Value};

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.create(
            "games",
            rel(
                &[("player", DataType::Text), ("pts", DataType::Int)],
                vec![
                    vec!["Bryant".into(), 30.into()],
                    vec!["Bryant".into(), 40.into()],
                    vec!["Duncan".into(), 20.into()],
                ],
            ),
        )
        .unwrap();
        c.create(
            "teams",
            rel(
                &[("name", DataType::Text), ("team", DataType::Text)],
                vec![
                    vec!["Bryant".into(), "LAL".into()],
                    vec!["Duncan".into(), "SAS".into()],
                ],
            ),
        )
        .unwrap();
        c
    }

    fn scan(t: &str) -> PhysicalPlan {
        PhysicalPlan::Scan { table: t.into(), alias: None }
    }

    /// σ → π → probe → π fuses into one pipeline with the build side as
    /// its own pipeline.
    #[test]
    fn chain_fuses_into_one_pipeline() {
        let plan = PhysicalPlan::Project {
            input: Box::new(PhysicalPlan::HashJoin {
                left: Box::new(PhysicalPlan::Filter {
                    input: Box::new(scan("games")),
                    predicate: Expr::col("pts").binary(BinaryOp::GtEq, Expr::lit(30i64)),
                }),
                right: Box::new(scan("teams")),
                left_keys: vec![0],
                right_keys: vec![0],
            }),
            items: vec![ProjectItem::col("team")],
        };
        let pipe = decompose(&plan);
        assert!(matches!(pipe.source, Source::Scan { .. }));
        assert_eq!(pipe.stages.len(), 3); // filter, probe, project
        let c = catalog();
        let pipelined = execute(&plan, &c).unwrap();
        let materialized = plan.execute(&c).unwrap();
        assert_eq!(pipelined.schema().names(), materialized.schema().names());
        assert_eq!(pipelined.tuples(), materialized.tuples());
        assert_eq!(pipelined.len(), 2);
    }

    /// Breakers (sort, distinct, aggregate, union, limit) materialise and
    /// agree with the bottom-up executor.
    #[test]
    fn breakers_match_materialized() {
        let c = catalog();
        let plan = PhysicalPlan::Limit {
            input: Box::new(PhysicalPlan::Sort {
                input: Box::new(PhysicalPlan::Distinct {
                    input: Box::new(PhysicalPlan::UnionAll {
                        inputs: vec![scan("games"), scan("games")],
                    }),
                }),
                keys: vec![SortKey::desc(Expr::col("pts"))],
            }),
            n: 2,
        };
        let a = execute(&plan, &c).unwrap();
        let b = plan.execute(&c).unwrap();
        assert_eq!(a.tuples(), b.tuples());
    }

    /// Pure-filter pipelines share row storage with the source (gather).
    #[test]
    fn filter_chain_identical_at_any_thread_count() {
        let c = catalog();
        let plan = PhysicalPlan::Filter {
            input: Box::new(PhysicalPlan::Filter {
                input: Box::new(scan("games")),
                predicate: Expr::col("pts").binary(BinaryOp::Gt, Expr::lit(15i64)),
            }),
            predicate: Expr::col("player").eq(Expr::lit("Bryant")),
        };
        let seq = plan.execute(&c).unwrap();
        for threads in [1, 2, 8] {
            let pool = ThreadPool::new(threads);
            let par = execute_with(&plan, &c, &pool, 1).unwrap();
            assert_eq!(seq.tuples(), par.tuples(), "threads = {threads}");
        }
    }

    /// NULL probe keys never match, exactly like the materialised join.
    #[test]
    fn null_keys_never_match() {
        let mut c = Catalog::new();
        c.create(
            "l",
            rel(&[("k", DataType::Int)], vec![vec![Value::Null], vec![1.into()]]),
        )
        .unwrap();
        c.create(
            "r",
            rel(&[("k", DataType::Int)], vec![vec![Value::Null], vec![1.into()]]),
        )
        .unwrap();
        let plan = PhysicalPlan::HashJoin {
            left: Box::new(scan("l")),
            right: Box::new(scan("r")),
            left_keys: vec![0],
            right_keys: vec![0],
        };
        let out = execute(&plan, &c).unwrap();
        assert_eq!(out.tuples(), plan.execute(&c).unwrap().tuples());
        assert_eq!(out.len(), 1);
    }

    #[test]
    fn explain_lists_pipelines_and_stages() {
        let plan = PhysicalPlan::Aggregate {
            input: Box::new(PhysicalPlan::Filter {
                input: Box::new(scan("games")),
                predicate: Expr::col("pts").binary(BinaryOp::Gt, Expr::lit(10i64)),
            }),
            group_exprs: vec![Expr::col("player")],
            group_names: vec!["player".into()],
            aggs: vec![],
        };
        let text = explain(&plan);
        assert!(text.contains("grouped aggregation (streaming, 1 keys, 0 aggs)"), "{text}");
        assert!(text.contains("-> filter"), "{text}");
        assert!(text.contains("scan games"), "{text}");
    }

    #[test]
    fn errors_propagate() {
        let c = catalog();
        // Unknown table.
        assert!(execute(&scan("nope"), &c).is_err());
        // Out-of-range probe key.
        let plan = PhysicalPlan::HashJoin {
            left: Box::new(scan("games")),
            right: Box::new(scan("teams")),
            left_keys: vec![9],
            right_keys: vec![0],
        };
        assert!(execute(&plan, &c).is_err());
        // Empty union.
        let plan = PhysicalPlan::UnionAll { inputs: vec![] };
        assert!(execute(&plan, &c).is_err());
    }
}
