//! A lazy, morsel-driven pipeline over U-relations.
//!
//! `maybms-core` evaluates the parsimonious translation (§2.3) as a chain
//! of `urel::algebra` calls, materialising every intermediate U-relation.
//! A [`UStream`] records the same chain — σ, π, and hash-join probes —
//! as **fused stages** over one source U-relation and runs it in a
//! single morsel-driven pass at [`UStream::collect`]: WSDs ride along
//! with each in-flight row, probe stages conjoin them (dropping
//! unsatisfiable pairs), and nothing is materialised between stages.
//!
//! Determinism contract: `collect()` is bit-identical — data, WSDs, and
//! row order — to applying the equivalent `algebra::select` /
//! `algebra::project` / `algebra::hash_join` sequence, at any thread
//! count (morsel outputs concatenate in morsel order; build tables merge
//! morsel-locally in morsel order, matching the joins' fixed
//! build-right/probe-left convention).

use std::fmt::Write as _;
use std::sync::Arc;

use maybms_engine::ops::ProjectItem;
use maybms_engine::{optimizer, EngineError, Expr, Field, Schema, Value};
use maybms_par::ThreadPool;
use maybms_urel::{Result, URelation, UTuple, Wsd};

use crate::fuse::{self, FusedOutput, Stage};

/// A lazily evaluated U-relational pipeline: a source plus fused stages
/// (run by the shared executor in [`fuse`]).
///
/// Stage constructors bind their expressions against the stream's
/// current schema immediately (so planning errors surface where the
/// materialising code would raise them); rows only flow — and probe
/// build tables are only constructed, morsel-locally, on the collecting
/// pool — at [`UStream::collect`].
pub struct UStream {
    source: URelation,
    stages: Vec<Stage<URelation>>,
    schema: Arc<Schema>,
}

impl UStream {
    /// Start a pipeline from a materialised U-relation.
    pub fn new(source: URelation) -> UStream {
        let schema = source.schema().clone();
        UStream { source, stages: Vec::new(), schema }
    }

    /// The schema rows will have after the recorded stages.
    pub fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    /// Number of source (not output) rows — an upper bound for
    /// filter-only pipelines, a hint otherwise.
    pub fn source_len(&self) -> usize {
        self.source.len()
    }

    /// Number of recorded stages.
    pub fn stage_count(&self) -> usize {
        self.stages.len()
    }

    /// Append a σ stage (equivalent to `algebra::select`).
    ///
    /// The predicate is constant-folded at bind time (the PR 3
    /// projection-merge guard applies: fallible subexpressions never
    /// fold out of short-circuited positions). A predicate folding to
    /// `true` records no stage at all; one folding to `false`/`NULL`
    /// short-circuits the whole stream to an empty U-relation — but
    /// only when every stage recorded so far is infallible, so a
    /// runtime error the fused chain would have raised is never
    /// swallowed.
    pub fn filter(mut self, predicate: &Expr) -> Result<UStream> {
        let bound = optimizer::fold(predicate.bind(&self.schema)?);
        match &bound {
            Expr::Literal(Value::Bool(true)) => return Ok(self),
            Expr::Literal(Value::Bool(false)) | Expr::Literal(Value::Null)
                if fuse::stages_infallible(&self.stages) =>
            {
                self.source = URelation::new(self.schema.clone(), Vec::new());
                self.stages.clear();
                return Ok(self);
            }
            _ => {}
        }
        self.stages.push(Stage::Filter(bound));
        Ok(self)
    }

    /// Append a π stage (equivalent to `algebra::project`). Expressions
    /// are constant-folded at bind time.
    pub fn project(mut self, items: &[ProjectItem]) -> Result<UStream> {
        let mut exprs = Vec::with_capacity(items.len());
        let mut fields = Vec::with_capacity(items.len());
        for item in items {
            let e = item.expr.bind(&self.schema)?;
            // Field type from the unfolded expression, so the stream's
            // schema matches the materialising path exactly.
            fields.push(Field::new(item.name.clone(), e.data_type(&self.schema)));
            exprs.push(optimizer::fold(e));
        }
        self.schema = Arc::new(Schema::new(fields));
        self.stages.push(Stage::Project(exprs));
        Ok(self)
    }

    /// Replace the output schema (same arity; e.g. re-qualifying after a
    /// projection) without touching the stages.
    pub fn with_schema(mut self, schema: Arc<Schema>) -> UStream {
        self.schema = schema;
        self
    }

    /// Append a hash-join probe stage against `build` (equivalent to
    /// `algebra::hash_join(stream, build, ..)`: the stream is the left /
    /// probe side, `build` the right / build side). The build table is
    /// constructed at collect time, morsel-locally on the collecting
    /// pool.
    pub fn hash_join(
        mut self,
        build: URelation,
        left_keys: &[usize],
        right_keys: &[usize],
    ) -> Result<UStream> {
        if left_keys.len() != right_keys.len() || left_keys.is_empty() {
            return Err(EngineError::InvalidOperator {
                message: "hash join requires matching, non-empty key lists".into(),
            }
            .into());
        }
        if left_keys.iter().any(|&k| k >= self.schema.len())
            || right_keys.iter().any(|&k| k >= build.schema().len())
        {
            return Err(EngineError::InvalidOperator {
                message: "hash join key out of range".into(),
            }
            .into());
        }
        self.schema = Arc::new(self.schema.join(build.schema()));
        self.stages.push(Stage::Probe {
            build,
            left_keys: left_keys.to_vec(),
            right_keys: right_keys.to_vec(),
        });
        Ok(self)
    }

    /// Run the pipeline on the process-wide pool. Dispatches morsels in
    /// parallel for large sources, exactly like the materialising
    /// operators; output is identical either way.
    pub fn collect(self) -> Result<URelation> {
        let pool = maybms_par::pool();
        self.collect_with(&pool, maybms_engine::ops::PAR_MIN_CHUNK)
    }

    /// [`UStream::collect`] on an explicit pool and minimum morsel size
    /// (what the determinism property tests pin to 1/2/8 threads).
    /// Columnar execution follows [`crate::columnar_default`].
    pub fn collect_with(self, pool: &ThreadPool, min_morsel: usize) -> Result<URelation> {
        self.collect_opts(pool, min_morsel, crate::columnar_default())
    }

    /// [`UStream::collect_with`] with the columnar path pinned
    /// explicitly (what the columnar ≡ row equivalence tests use).
    pub fn collect_opts(
        self,
        pool: &ThreadPool,
        min_morsel: usize,
        columnar: bool,
    ) -> Result<URelation> {
        self.collect_stats(pool, min_morsel, columnar, None)
    }

    /// [`UStream::collect_opts`] with an optional per-pipeline stats
    /// collector attached (see [`UStream::stats_skeleton`]). Collection
    /// is allocation-light (per-morsel stack tallies, flushed once per
    /// morsel) and never changes the output: stats are order-independent
    /// sums, bit-identical at any thread count or morsel size.
    pub fn collect_stats(
        self,
        pool: &ThreadPool,
        min_morsel: usize,
        columnar: bool,
        stats: Option<&maybms_obs::PipelineStats>,
    ) -> Result<URelation> {
        let UStream { source, stages, schema } = self;
        // The span opens before the stage-less early return so pipeline
        // span count always equals EXPLAIN ANALYZE's pipeline count
        // (stage-less pipelines register stats too).
        let mut span = maybms_obs::trace::span("pipeline");
        span.attr("stages", stages.len());
        span.attr("source_rows", source.len());
        if stages.is_empty() {
            span.attr("rows_out", source.len());
            return Ok(source.with_schema(schema));
        }
        let t0 = stats.map(|_| std::time::Instant::now());
        let out = match fuse::run(&source, &stages, pool, min_morsel, columnar, stats)? {
            // Filter-only pipeline: gather shares rows (data + WSDs)
            // with the source, like chained `algebra::select`.
            FusedOutput::Select(sel) => source.gather(&sel).with_schema(schema),
            FusedOutput::Rows(tuples, wsds) => URelation::new(
                schema,
                tuples
                    .into_iter()
                    .zip(wsds)
                    .map(|(data, wsd)| UTuple::new(data, wsd))
                    .collect(),
            ),
        };
        if let (Some(st), Some(t0)) = (stats, t0) {
            st.record_wall(t0.elapsed());
            // Morsel counts are thread-dependent — attrs are excluded
            // from the determinism contract (unlike span labels/links).
            span.attr("morsels", st.morsels.get());
        }
        span.attr("rows_out", out.len());
        Ok(out)
    }

    /// Run the pipeline with **grouped aggregation as the breaker**: every
    /// morsel's surviving rows fold straight into a morsel-local
    /// [`crate::GroupTable`] keyed by the (bound-here) `group_exprs`, and
    /// the tables merge in morsel order — the input is never materialised.
    ///
    /// The accumulator is caller-defined: `new_state` opens a group,
    /// `fold` absorbs one row (data values plus its WSD), `merge` absorbs
    /// a later morsel's state into an earlier one. Determinism contract:
    /// provided `fold`-then-`merge` equals folding the concatenated rows
    /// (see [`maybms_engine::ops::ExactSum`] for float sums), the returned
    /// `(keys, states)` — first-seen key order included — are identical to
    /// a sequential scan at any thread count and morsel size.
    ///
    /// With no group expressions a single global group is guaranteed,
    /// even over an empty input (SQL's scalar-aggregate behaviour).
    pub fn collect_grouped<A, NF, FF, MF>(
        self,
        group_exprs: &[Expr],
        new_state: NF,
        fold: FF,
        merge: MF,
    ) -> Result<(Vec<Vec<Value>>, Vec<A>)>
    where
        A: Send,
        NF: Fn() -> A + Sync,
        FF: Fn(&mut A, &[Value], &Wsd) -> Result<()> + Sync,
        MF: FnMut(&mut A, A) -> Result<()>,
    {
        let pool = maybms_par::pool();
        self.collect_grouped_with(
            group_exprs,
            &pool,
            maybms_engine::ops::PAR_MIN_CHUNK,
            new_state,
            fold,
            merge,
        )
    }

    /// [`UStream::collect_grouped`] on an explicit pool and minimum
    /// morsel size (what the determinism property tests pin to 1/2/8
    /// threads and single-row morsels).
    pub fn collect_grouped_with<A, NF, FF, MF>(
        self,
        group_exprs: &[Expr],
        pool: &ThreadPool,
        min_morsel: usize,
        new_state: NF,
        fold: FF,
        merge: MF,
    ) -> Result<(Vec<Vec<Value>>, Vec<A>)>
    where
        A: Send,
        NF: Fn() -> A + Sync,
        FF: Fn(&mut A, &[Value], &Wsd) -> Result<()> + Sync,
        MF: FnMut(&mut A, A) -> Result<()>,
    {
        self.collect_grouped_stats(group_exprs, pool, min_morsel, None, new_state, fold, merge)
    }

    /// [`UStream::collect_grouped_with`] with an optional per-pipeline
    /// stats collector attached (same contract as
    /// [`UStream::collect_stats`]; the collector's group counter records
    /// the merged group count).
    #[allow(clippy::too_many_arguments)]
    pub fn collect_grouped_stats<A, NF, FF, MF>(
        self,
        group_exprs: &[Expr],
        pool: &ThreadPool,
        min_morsel: usize,
        stats: Option<&maybms_obs::PipelineStats>,
        new_state: NF,
        fold: FF,
        merge: MF,
    ) -> Result<(Vec<Vec<Value>>, Vec<A>)>
    where
        A: Send,
        NF: Fn() -> A + Sync,
        FF: Fn(&mut A, &[Value], &Wsd) -> Result<()> + Sync,
        MF: FnMut(&mut A, A) -> Result<()>,
    {
        let UStream { source, stages, schema } = self;
        let bound: Vec<Expr> = group_exprs
            .iter()
            .map(|e| e.bind(&schema))
            .collect::<std::result::Result<_, EngineError>>()?;
        let mut span = maybms_obs::trace::span("pipeline");
        span.attr("breaker", "group");
        span.attr("stages", stages.len());
        span.attr("source_rows", source.len());
        let t0 = stats.map(|_| std::time::Instant::now());
        let out = crate::groupby::group_stream(
            &source,
            &stages,
            &bound,
            pool,
            min_morsel,
            crate::columnar_default(),
            stats,
            new_state,
            fold,
            merge,
        )?;
        if let (Some(st), Some(t0)) = (stats, t0) {
            st.record_wall(t0.elapsed());
            span.attr("morsels", st.morsels.get());
        }
        span.attr("groups", out.0.len());
        Ok(out)
    }

    /// A [`maybms_obs::PipelineStats`] collector shaped for this
    /// pipeline: one stage-stats slot per recorded stage, labelled like
    /// [`UStream::describe`]'s lines. Register it on a
    /// [`maybms_obs::QueryStats`] and pass it to
    /// [`UStream::collect_stats`] / [`UStream::collect_grouped_stats`].
    pub fn stats_skeleton(&self, label: impl Into<String>) -> maybms_obs::PipelineStats {
        let vectorised = if crate::columnar_default() {
            fuse::vector_prefix_len(&self.stages)
        } else {
            0
        };
        let labels: Vec<String> = self
            .stages
            .iter()
            .enumerate()
            .map(|(k, stage)| {
                let vec_mark = if k < vectorised { " (vectorised)" } else { "" };
                match stage {
                    Stage::Filter(predicate) => format!("filter {predicate}{vec_mark}"),
                    Stage::Project(exprs) => {
                        let cols: Vec<String> =
                            exprs.iter().map(|e| e.to_string()).collect();
                        format!("project [{}]{vec_mark}", cols.join(", "))
                    }
                    Stage::Probe { left_keys, right_keys, .. } => {
                        let keys: Vec<String> = left_keys
                            .iter()
                            .zip(right_keys)
                            .map(|(l, r)| format!("#{l} = build #{r}"))
                            .collect();
                        format!("hash probe [{}]", keys.join(", "))
                    }
                }
            })
            .collect();
        maybms_obs::PipelineStats::new(label, self.source_mark(), labels)
    }

    /// Source label shared by [`UStream::describe`] and
    /// [`UStream::stats_skeleton`] (so EXPLAIN and EXPLAIN ANALYZE print
    /// the same line): columnar-at-rest sources are marked — their
    /// vectorised prefix borrows column slices instead of pivoting.
    fn source_mark(&self) -> String {
        if self.source.is_columnar() {
            format!("{} stored rows (columnar, zero-pivot)", self.source.len())
        } else {
            format!("{} stored rows", self.source.len())
        }
    }

    /// One-line-per-stage description of the pipeline, used by
    /// `EXPLAIN`. Stages the columnar planner will run vectorised are
    /// marked `(vectorised)`.
    pub fn describe(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "source: {}", self.source_mark());
        let vectorised = if crate::columnar_default() {
            fuse::vector_prefix_len(&self.stages)
        } else {
            0
        };
        for (k, stage) in self.stages.iter().enumerate() {
            let vec_mark = if k < vectorised { " (vectorised)" } else { "" };
            match stage {
                Stage::Filter(predicate) => {
                    let _ = writeln!(out, "-> filter {predicate}{vec_mark}");
                }
                Stage::Project(exprs) => {
                    let cols: Vec<String> = exprs.iter().map(|e| e.to_string()).collect();
                    let _ = writeln!(out, "-> project [{}]{vec_mark}", cols.join(", "));
                }
                Stage::Probe { build, left_keys, right_keys } => {
                    let keys: Vec<String> = left_keys
                        .iter()
                        .zip(right_keys)
                        .map(|(l, r)| format!("#{l} = build #{r}"))
                        .collect();
                    let _ = writeln!(
                        out,
                        "-> hash probe [{}] against {}-row build (WSD conjunction)",
                        keys.join(", "),
                        build.len()
                    );
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use maybms_engine::{rel, DataType};
    use maybms_urel::{algebra, Var, WorldTable, Wsd};

    fn setup() -> (WorldTable, URelation) {
        let mut wt = WorldTable::new();
        let x = wt.new_var(&[0.8, 0.2]).unwrap();
        let y = wt.new_var(&[0.5, 0.5]).unwrap();
        let base = rel(
            &[("player", DataType::Text), ("state", DataType::Text)],
            vec![
                vec!["Bryant".into(), "F".into()],
                vec!["Bryant".into(), "SE".into()],
                vec!["Duncan".into(), "F".into()],
                vec!["Duncan".into(), "SL".into()],
            ],
        );
        let mut u = URelation::from_certain(&base);
        u.tuples_mut()[0].wsd = Wsd::of(x, 0);
        u.tuples_mut()[1].wsd = Wsd::of(x, 1);
        u.tuples_mut()[2].wsd = Wsd::of(y, 0);
        u.tuples_mut()[3].wsd = Wsd::of(y, 1);
        (wt, u)
    }

    /// Fused σ → probe → π equals the materialising algebra chain, WSDs
    /// and order included — including the self-join's unsatisfiable
    /// conjunctions being dropped.
    #[test]
    fn fused_chain_matches_algebra_chain() {
        let (_, u) = setup();
        let pred = Expr::col("state").eq(Expr::lit("F"));
        let items = [ProjectItem::new(Expr::ColumnIdx(0), "who")];

        let materialized = {
            let s = algebra::select(&u, &pred).unwrap();
            let j = algebra::hash_join(&s, &u, &[0], &[0]).unwrap();
            algebra::project(&j, &items).unwrap()
        };
        let pipelined = UStream::new(u.clone())
            .filter(&pred)
            .unwrap()
            .hash_join(u.clone(), &[0], &[0])
            .unwrap()
            .project(&items)
            .unwrap();
        assert_eq!(pipelined.schema().names(), vec!["who"]);
        for threads in [1, 2, 8] {
            let pool = ThreadPool::new(threads);
            let got = UStream::new(u.clone())
                .filter(&pred)
                .unwrap()
                .hash_join(u.clone(), &[0], &[0])
                .unwrap()
                .project(&items)
                .unwrap()
                .collect_with(&pool, 1)
                .unwrap();
            assert_eq!(got.tuples(), materialized.tuples(), "threads = {threads}");
        }
        let got = pipelined.collect().unwrap();
        assert_eq!(got.tuples(), materialized.tuples());
    }

    #[test]
    fn filter_only_stream_gathers() {
        let (_, u) = setup();
        let pred = Expr::col("player").eq(Expr::lit("Bryant"));
        let got = UStream::new(u.clone()).filter(&pred).unwrap().collect().unwrap();
        let want = algebra::select(&u, &pred).unwrap();
        assert_eq!(got.tuples(), want.tuples());
        assert_eq!(got.tuples()[0].wsd, Wsd::of(Var(0), 0));
    }

    #[test]
    fn empty_stream_returns_source() {
        let (_, u) = setup();
        let got = UStream::new(u.clone()).collect().unwrap();
        assert_eq!(got.tuples(), u.tuples());
    }

    #[test]
    fn binding_errors_surface_at_stage_construction() {
        let (_, u) = setup();
        assert!(UStream::new(u.clone()).filter(&Expr::col("nope").eq(Expr::lit(1i64))).is_err());
        assert!(UStream::new(u.clone()).hash_join(u.clone(), &[], &[]).is_err());
        assert!(UStream::new(u.clone()).hash_join(u, &[7], &[0]).is_err());
    }

    #[test]
    fn describe_names_stages() {
        let (_, u) = setup();
        let s = UStream::new(u.clone())
            .filter(&Expr::col("state").eq(Expr::lit("F")))
            .unwrap()
            .hash_join(u, &[0], &[0])
            .unwrap();
        let d = s.describe();
        assert!(d.contains("-> filter"), "{d}");
        assert!(d.contains("hash probe"), "{d}");
    }
}
