//! Morsel-local parallel hash-table build with a deterministic merge.
//!
//! The materialising joins build their hash table in one sequential scan
//! (or, in the `*_with` parallel paths, via a bucketed pre-pass). A
//! morsel-driven executor wants the build itself to be morsel-granular:
//! each morsel of build rows constructs a **private** table mapping key
//! hash → ascending row indices, and the private tables are merged into
//! hash-partitioned shards by concatenating every key's candidate lists
//! **in morsel order**. Because morsels cover ascending row ranges and
//! rows within a morsel are visited in order, the merged candidate list
//! of every key is the ascending row order a sequential build would have
//! produced — regardless of thread count, scheduling, or the iteration
//! order of the intermediate maps (per-key lists are keyed merges, never
//! order-of-iteration merges).

use maybms_engine::hash::FastMap;
use maybms_par::ThreadPool;

/// A hash-partitioned join build table: key hash → build-row indices in
/// ascending (sequential insertion) order.
#[derive(Debug)]
pub struct BuildTable {
    /// Shard `p` owns the keys with `hash % parts == p`.
    parts: Vec<FastMap<u64, Vec<u32>>>,
    /// Governor working-memory tally: charged once per build from the
    /// merged shard sizes, credited when the table drops.
    _charge: maybms_gov::MemCharge,
}

impl BuildTable {
    /// Build over rows `0..len`, hashing row `i` with `hash_of(i)`
    /// (`None` = NULL key, never inserted). Morsel-local tables are
    /// merged deterministically as described in the module docs; a
    /// one-thread pool degenerates to a single sequential scan.
    pub fn build<F>(len: usize, hash_of: F, pool: &ThreadPool, min_chunk: usize) -> BuildTable
    where
        F: Fn(usize) -> Option<u64> + Sync,
    {
        let nparts = if pool.threads() > 1 && len >= min_chunk { pool.threads() } else { 1 };
        let chunk = maybms_par::auto_chunk(len, pool.threads(), min_chunk);
        // Morsel-local build: each morsel owns `nparts` private maps (one
        // per target shard) so the merge below touches only its own
        // shard's entries — total work stays O(rows + distinct keys).
        let locals: Vec<Vec<FastMap<u64, Vec<u32>>>> =
            pool.par_map_chunks(len, chunk, |range| {
                let mut maps: Vec<FastMap<u64, Vec<u32>>> =
                    (0..nparts).map(|_| FastMap::default()).collect();
                for i in range {
                    if let Some(h) = hash_of(i) {
                        maps[(h as usize) % nparts].entry(h).or_default().push(i as u32);
                    }
                }
                maps
            });
        // Chunk-ordered merge, one shard per task: every key's candidate
        // list is the concatenation of its morsel-local lists in morsel
        // order — the sequential ascending row order.
        let parts: Vec<FastMap<u64, Vec<u32>>> =
            pool.par_map((0..nparts).collect::<Vec<_>>(), |p| {
                let mut table: FastMap<u64, Vec<u32>> = FastMap::with_capacity_and_hasher(
                    len / nparts + 1,
                    Default::default(),
                );
                for morsel in &locals {
                    for (h, rows) in &morsel[p] {
                        table.entry(*h).or_default().extend_from_slice(rows);
                    }
                }
                table
            });
        let mut charge = maybms_gov::MemCharge::new();
        for part in &parts {
            // Entry overhead plus each key's candidate list.
            let entry = std::mem::size_of::<(u64, Vec<u32>)>();
            let rows: usize = part.values().map(Vec::len).sum();
            charge.add(part.len() * entry + rows * std::mem::size_of::<u32>());
        }
        BuildTable { parts, _charge: charge }
    }

    /// The build rows whose key hashes to `h`, in ascending row order
    /// (empty when the hash is absent). Hash matches still need key
    /// verification by the caller.
    #[inline]
    pub fn candidates(&self, h: u64) -> &[u32] {
        self.parts[(h as usize) % self.parts.len()]
            .get(&h)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Number of hash shards (1 on a sequential build).
    pub fn shards(&self) -> usize {
        self.parts.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The merged candidate lists must equal a sequential build at any
    /// thread count and morsel size.
    #[test]
    fn morsel_local_build_matches_sequential() {
        let hashes: Vec<Option<u64>> = (0..257u64)
            .map(|i| if i % 7 == 0 { None } else { Some(i % 13) })
            .collect();
        let seq = {
            let pool = ThreadPool::new(1);
            BuildTable::build(hashes.len(), |i| hashes[i], &pool, usize::MAX)
        };
        for threads in [1, 2, 8] {
            let pool = ThreadPool::new(threads);
            for min_chunk in [1, 3, 64] {
                let par = BuildTable::build(hashes.len(), |i| hashes[i], &pool, min_chunk);
                for h in 0..13u64 {
                    assert_eq!(
                        seq.candidates(h),
                        par.candidates(h),
                        "hash {h}, threads {threads}, min_chunk {min_chunk}"
                    );
                }
            }
        }
    }

    #[test]
    fn null_keys_never_inserted() {
        let pool = ThreadPool::new(2);
        let table = BuildTable::build(10, |_| None, &pool, 2);
        for h in 0..16u64 {
            assert!(table.candidates(h).is_empty());
        }
    }

    #[test]
    fn candidates_ascending_with_duplicates() {
        let pool = ThreadPool::new(4);
        let table = BuildTable::build(100, |_| Some(42), &pool, 4);
        let c = table.candidates(42);
        assert_eq!(c.len(), 100);
        assert!(c.windows(2).all(|w| w[0] < w[1]));
    }
}
