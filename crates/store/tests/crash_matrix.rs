//! The crash matrix: run a mixed DDL/DML/checkpoint workload against the
//! store with a fault injected at the Nth file-system operation — for
//! every N until the workload completes untouched — then recover and
//! check the two durability invariants:
//!
//! * **Atomicity.** The recovered state is bit-identical (by
//!   [`fingerprint`]) to the oracle state either just before or just
//!   after the statement that was in flight when the fault hit. No torn
//!   statements, no lost earlier statements.
//! * **Idempotence.** Recovering twice produces the same state and the
//!   same files as recovering once (a crash *during recovery* is just
//!   another crash).
//!
//! Each fault point is tested under two post-mortem file states: as the
//! dying process left them (partial writes persisted — the torn-write
//! case), and after a power cut that drops every unsynced byte
//! ([`MemVfs::crash`]).

use std::sync::Arc;

use maybms_engine::{DataType, Schema, Tuple, Value};
use maybms_store::{
    apply_op, fingerprint, Catalog, FaultMode, FaultVfs, MemVfs, Op, Store, Vfs,
};
use maybms_urel::{Assignment, URelation, UTuple, Var, WorldTable, Wsd};

/// One workload step: world-table variables that appear (query side
/// effects) before the action runs, then the action itself.
struct Step {
    new_vars: Vec<Vec<f64>>,
    action: Action,
}

enum Action {
    Apply(Op),
    Checkpoint,
}

fn step(op: Op) -> Step {
    Step { new_vars: Vec::new(), action: Action::Apply(op) }
}

fn certain(vals: Vec<Value>) -> UTuple {
    UTuple::certain(Tuple::new(vals))
}

/// A workload touching every op kind, with uncertainty (world-table
/// extensions riding on records), a mid-stream checkpoint, a burnt
/// variable (created by a query, never stored), and adversarial values
/// (non-representable floats, a `;` in a string).
fn workload() -> Vec<Step> {
    let t_schema = Schema::from_pairs(&[
        ("a", DataType::Int),
        ("b", DataType::Float),
        ("c", DataType::Text),
    ]);
    let picks_schema = Schema::from_pairs(&[("a", DataType::Int)]);
    let mut picks = URelation::empty(Arc::new(picks_schema));
    picks.tuples_mut().push(UTuple::new(
        Tuple::new(vec![Value::Int(10)]),
        Wsd::of(Var(0), 1),
    ));
    picks.tuples_mut().push(UTuple::new(
        Tuple::new(vec![Value::Int(20)]),
        Wsd::from_assignments(vec![
            Assignment::new(Var(0), 0),
            Assignment::new(Var(1), 1),
        ])
        .expect("satisfiable"),
    ));
    vec![
        step(Op::CreateTable { name: "t".into(), schema: t_schema }),
        step(Op::InsertRows {
            table: "t".into(),
            rows: vec![
                certain(vec![Value::Int(1), Value::Float(1.5), Value::str("x")]),
                certain(vec![
                    Value::Int(2),
                    Value::Float(0.1 + 0.2), // not exactly 0.3: bit-exactness matters
                    Value::str("y;'z"),
                ]),
            ],
        }),
        Step {
            new_vars: vec![vec![0.5, 0.5], vec![0.3, 0.7]],
            // Columnar-at-rest: this PutTable logs under the columnar
            // WAL op tag and lands in version-2 snapshot bodies, so the
            // whole fault matrix sweeps the columnar codec too.
            action: Action::Apply(Op::PutTable {
                name: "picks".into(),
                table: picks.compact(),
            }),
        },
        Step { new_vars: Vec::new(), action: Action::Checkpoint },
        Step {
            // A query burnt a variable that nothing stored references.
            new_vars: vec![vec![0.2, 0.8]],
            action: Action::Apply(Op::InsertRows {
                table: "t".into(),
                rows: vec![certain(vec![Value::Int(3), Value::Null, Value::Null])],
            }),
        },
        step(Op::ReplaceRows {
            table: "picks".into(),
            rows: vec![UTuple::new(
                Tuple::new(vec![Value::Int(10)]),
                Wsd::of(Var(0), 1),
            )],
        }),
        step(Op::PutTable {
            name: "names".into(),
            // Dictionary-encoded text column (with a NULL slot) through
            // the crash matrix: the dictionary must survive any fault.
            table: URelation::from_certain(&maybms_engine::rel(
                &[("who", DataType::Text)],
                vec![
                    vec![Value::str("ann")],
                    vec![Value::Null],
                    vec![Value::str("ann")],
                    vec![Value::str("bob")],
                ],
            ))
            .compact(),
        }),
        step(Op::DropTable { name: "t".into() }),
        step(Op::CreateTable {
            name: "t2".into(),
            schema: Schema::from_pairs(&[("d", DataType::Int)]),
        }),
        step(Op::InsertRows {
            table: "t2".into(),
            rows: vec![certain(vec![Value::Int(99)])],
        }),
    ]
}

/// Oracle fingerprints: `fps[k]` is the state after the first `k` steps
/// applied fault-free in memory.
fn oracle_fingerprints(steps: &[Step]) -> Vec<Vec<u8>> {
    let mut tables = Catalog::new();
    let mut wt = WorldTable::new();
    let mut fps = vec![fingerprint(&tables, &wt)];
    for s in steps {
        for d in &s.new_vars {
            wt.new_var(d).expect("oracle var");
        }
        if let Action::Apply(op) = &s.action {
            apply_op(&mut tables, op.clone()).expect("oracle apply");
        }
        fps.push(fingerprint(&tables, &wt));
    }
    fps
}

/// Drive the workload with a fault at the `fail_at`-th file operation.
/// Returns the post-mortem filesystem, which step failed (`None` when
/// `Store::open` itself died), whether open succeeded, and whether the
/// fault was actually reached.
fn faulted_run(
    steps: &[Step],
    fail_at: u64,
    mode: FaultMode,
) -> (MemVfs, Option<usize>, bool, bool) {
    let mem = MemVfs::new();
    let fault = FaultVfs::new(mem.clone(), fail_at, mode);
    let (opened, failed_step) = match Store::open(Arc::new(fault.clone())) {
        Err(_) => (false, None),
        Ok((mut store, rec)) => {
            let mut tables = rec.tables;
            let mut wt = rec.wt;
            let mut failed = None;
            for (k, s) in steps.iter().enumerate() {
                for d in &s.new_vars {
                    wt.new_var(d).expect("live var");
                }
                let r = match &s.action {
                    Action::Apply(op) => store.log(op, &wt).map(|()| {
                        apply_op(&mut tables, op.clone()).expect("validated op applies")
                    }),
                    Action::Checkpoint => store.checkpoint(&tables, &wt),
                };
                if r.is_err() {
                    failed = Some(k);
                    break;
                }
            }
            (true, failed)
        }
    };
    (mem, failed_step, opened, fault.triggered())
}

/// Recover fault-free and assert atomicity (state ∈ `allowed`) and
/// idempotence (second recovery: same state, same bytes on disk).
fn check_recovery(mem: &MemVfs, allowed: &[&Vec<u8>], what: &str) {
    let (_, r1) = Store::open(Arc::new(mem.clone())).expect("recovery must succeed");
    let f1 = fingerprint(&r1.tables, &r1.wt);
    assert!(
        allowed.iter().any(|a| **a == f1),
        "{what}: recovered state matches neither pre- nor post-statement oracle \
         ({} tables recovered)",
        r1.tables.len()
    );
    let files_1: Vec<_> = ["wal", "snapshot"]
        .iter()
        .map(|f| mem.read(f).ok())
        .collect();
    let (_, r2) = Store::open(Arc::new(mem.clone())).expect("re-recovery must succeed");
    assert_eq!(f1, fingerprint(&r2.tables, &r2.wt), "{what}: recovery not idempotent");
    let files_2: Vec<_> = ["wal", "snapshot"]
        .iter()
        .map(|f| mem.read(f).ok())
        .collect();
    assert_eq!(files_1, files_2, "{what}: second recovery changed files on disk");
}

fn run_matrix(mode: FaultMode) {
    let steps = workload();
    let fps = oracle_fingerprints(&steps);
    let mut points = 0u64;
    for fail_at in 1..10_000 {
        // Post-mortem state as the dying process left it: partial
        // writes (torn frames) persisted.
        let (mem, failed_step, opened, triggered) = faulted_run(&steps, fail_at, mode);
        if !triggered {
            points = fail_at - 1;
            // Fault never reached: the whole workload ran; final state
            // must be the full oracle state.
            assert_eq!(failed_step, None);
            check_recovery(&mem, &[fps.last().expect("nonempty")], "fault-free run");
            break;
        }
        let allowed: Vec<&Vec<u8>> = match (opened, failed_step) {
            (false, _) => vec![&fps[0]],
            (true, Some(k)) => vec![&fps[k], &fps[k + 1]],
            (true, None) => unreachable!("fault triggered but every step succeeded"),
        };
        check_recovery(&mem, &allowed, &format!("{mode:?} fail_at={fail_at}, as-left"));
        // Same fault point, but a power cut also drops every byte that
        // was never fsynced.
        let (mem, _, _, _) = faulted_run(&steps, fail_at, mode);
        mem.crash();
        check_recovery(&mem, &allowed, &format!("{mode:?} fail_at={fail_at}, power-cut"));
    }
    // The workload is ~2 file ops per statement plus open/checkpoint
    // traffic; make sure the loop actually swept a real matrix and
    // terminated by exhaustion rather than the safety bound.
    assert!(points >= 20, "matrix covered only {points} fault points");
}

/// A data directory written *before* the columnar refactor — no
/// snapshot, a WAL holding only row-image records (op tags 0–4, exactly
/// what row-major tables still encode to) — must recover cleanly, and a
/// checkpoint taken afterwards re-persists the state in the current
/// format without losing a row.
#[test]
fn pre_refactor_row_image_wal_recovers() {
    use maybms_store::wal;

    let t_schema = Schema::from_pairs(&[("a", DataType::Int), ("c", DataType::Text)]);
    let mut old_table = URelation::empty(Arc::new(Schema::from_pairs(&[(
        "a",
        DataType::Int,
    )])));
    old_table.tuples_mut().push(UTuple::new(
        Tuple::new(vec![Value::Int(10)]),
        Wsd::of(Var(0), 1),
    ));
    assert!(!old_table.is_columnar(), "fixture must be a row image");
    let records = vec![
        wal::WalRecord {
            lsn: 0,
            world_ext: None,
            op: Op::CreateTable { name: "t".into(), schema: t_schema },
        },
        wal::WalRecord {
            lsn: 1,
            world_ext: None,
            op: Op::InsertRows {
                table: "t".into(),
                rows: vec![certain(vec![Value::Int(1), Value::str("x")])],
            },
        },
        wal::WalRecord {
            lsn: 2,
            world_ext: Some((0, vec![vec![0.4, 0.6]])),
            op: Op::PutTable { name: "picks".into(), table: old_table },
        },
    ];
    let mem = MemVfs::new();
    let mut bytes = wal::WAL_MAGIC.to_vec();
    for r in &records {
        bytes.extend_from_slice(&wal::frame_record(r));
    }
    let mut f = mem.create(wal::WAL_FILE).unwrap();
    f.append(&bytes).unwrap();
    f.sync().unwrap();
    drop(f);

    let (mut store, rec) = Store::open(Arc::new(mem.clone())).expect("legacy WAL recovers");
    assert_eq!(rec.tables.len(), 2);
    assert_eq!(rec.tables["t"].len(), 1);
    assert_eq!(rec.tables["picks"].len(), 1);
    assert_eq!(rec.wt.num_vars(), 1);
    let fp = fingerprint(&rec.tables, &rec.wt);

    // Checkpoint rewrites the state in the current snapshot format;
    // reopening must land on the identical state.
    store.checkpoint(&rec.tables, &rec.wt).unwrap();
    drop(store);
    let (_, rec2) = Store::open(Arc::new(mem)).expect("reopen after checkpoint");
    assert_eq!(fingerprint(&rec2.tables, &rec2.wt), fp);
}

#[test]
fn crash_matrix_fail_stop() {
    run_matrix(FaultMode::FailStop);
}

#[test]
fn crash_matrix_torn_writes() {
    run_matrix(FaultMode::Torn);
}
