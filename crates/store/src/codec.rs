//! Binary encoding of catalog state for the WAL and snapshots.
//!
//! A deliberately boring little-endian format with no external
//! dependencies (the container has no network; see ROADMAP's bootstrap
//! caveat): length-prefixed strings, tag bytes for enums, `f64` as raw
//! IEEE-754 bits so probabilities round-trip *bit-exactly* — the
//! determinism contract (bit-identical results at any thread count)
//! must survive a restart, so serialization may not perturb a single
//! float bit.
//!
//! Decoding is total: every read is bounds-checked and surfaces a
//! [`CodecError`] with the byte offset, which recovery converts into a
//! "corrupt at byte N" report instead of a panic.

use std::sync::Arc;

use maybms_engine::{DataType, Field, Schema, Tuple, Value};
use maybms_urel::{Assignment, URelation, UTuple, Var, Wsd};

/// A bounds-checked decode failure at a byte offset (relative to the
/// start of the buffer being decoded).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CodecError {
    /// Offset of the first byte that could not be decoded.
    pub offset: u64,
    /// What was expected.
    pub reason: String,
}

/// Decode result.
pub type DecodeResult<T> = std::result::Result<T, CodecError>;

// ---------------------------------------------------------------------
// CRC-32 (IEEE 802.3, the zlib polynomial), byte-at-a-time with a
// compile-time table.
// ---------------------------------------------------------------------

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { 0xedb8_8320 ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

const CRC_TABLE: [u32; 256] = crc32_table();

/// CRC-32 checksum of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = 0xffff_ffffu32;
    for &b in data {
        c = CRC_TABLE[((c ^ b as u32) & 0xff) as usize] ^ (c >> 8);
    }
    c ^ 0xffff_ffff
}

// ---------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------

/// Append-only encode buffer.
#[derive(Debug, Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// Fresh empty writer.
    pub fn new() -> Writer {
        Writer::default()
    }

    /// The encoded bytes.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }

    /// Current length (for framing).
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True iff nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    pub(crate) fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub(crate) fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub(crate) fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub(crate) fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub(crate) fn put_i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub(crate) fn put_f64(&mut self, v: f64) {
        // Raw bits: exact round-trip, -0.0 and subnormals included.
        self.put_u64(v.to_bits());
    }

    pub(crate) fn put_str(&mut self, s: &str) {
        self.put_u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }
}

// ---------------------------------------------------------------------
// Reader
// ---------------------------------------------------------------------

/// Bounds-checked decode cursor.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Read from the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, pos: 0 }
    }

    /// Bytes consumed so far.
    pub fn offset(&self) -> u64 {
        self.pos as u64
    }

    /// True iff every byte has been consumed.
    pub fn is_exhausted(&self) -> bool {
        self.pos == self.buf.len()
    }

    fn fail<T>(&self, reason: impl Into<String>) -> DecodeResult<T> {
        Err(CodecError { offset: self.pos as u64, reason: reason.into() })
    }

    fn take(&mut self, n: usize) -> DecodeResult<&'a [u8]> {
        if self.buf.len() - self.pos < n {
            return self.fail(format!(
                "need {n} bytes, {} remain",
                self.buf.len() - self.pos
            ));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    pub(crate) fn u8(&mut self) -> DecodeResult<u8> {
        Ok(self.take(1)?[0])
    }

    pub(crate) fn u16(&mut self) -> DecodeResult<u16> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("2 bytes")))
    }

    pub(crate) fn u32(&mut self) -> DecodeResult<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    pub(crate) fn u64(&mut self) -> DecodeResult<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    pub(crate) fn i64(&mut self) -> DecodeResult<i64> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    pub(crate) fn f64(&mut self) -> DecodeResult<f64> {
        Ok(f64::from_bits(self.u64()?))
    }

    pub(crate) fn str(&mut self) -> DecodeResult<String> {
        let n = self.u32()? as usize;
        let start = self.pos;
        let bytes = self.take(n)?;
        match std::str::from_utf8(bytes) {
            Ok(s) => Ok(s.to_string()),
            Err(_) => Err(CodecError {
                offset: start as u64,
                reason: "invalid UTF-8 in string".into(),
            }),
        }
    }

    /// A collection count, sanity-bounded so a corrupt length cannot
    /// drive a multi-gigabyte allocation before the bounds checks kick
    /// in element-by-element.
    fn count(&mut self, what: &str) -> DecodeResult<usize> {
        let n = self.u32()? as usize;
        // Each element consumes at least one byte; more than `remaining`
        // elements is provably corrupt.
        if n > self.buf.len() - self.pos {
            return self.fail(format!("{what} count {n} exceeds remaining bytes"));
        }
        Ok(n)
    }
}

// ---------------------------------------------------------------------
// Catalog types
// ---------------------------------------------------------------------

fn dtype_tag(t: DataType) -> u8 {
    match t {
        DataType::Bool => 0,
        DataType::Int => 1,
        DataType::Float => 2,
        DataType::Text => 3,
        DataType::Unknown => 4,
    }
}

fn dtype_of(tag: u8) -> Option<DataType> {
    Some(match tag {
        0 => DataType::Bool,
        1 => DataType::Int,
        2 => DataType::Float,
        3 => DataType::Text,
        4 => DataType::Unknown,
        _ => return None,
    })
}

/// Encode a scalar value.
pub fn put_value(w: &mut Writer, v: &Value) {
    match v {
        Value::Null => w.put_u8(0),
        Value::Bool(b) => {
            w.put_u8(1);
            w.put_u8(*b as u8);
        }
        Value::Int(i) => {
            w.put_u8(2);
            w.put_i64(*i);
        }
        Value::Float(f) => {
            w.put_u8(3);
            w.put_f64(*f);
        }
        Value::Str(s) => {
            w.put_u8(4);
            w.put_str(s);
        }
    }
}

/// Decode a scalar value.
pub fn get_value(r: &mut Reader<'_>) -> DecodeResult<Value> {
    Ok(match r.u8()? {
        0 => Value::Null,
        1 => Value::Bool(r.u8()? != 0),
        2 => Value::Int(r.i64()?),
        3 => Value::Float(r.f64()?),
        4 => Value::Str(Arc::from(r.str()?.as_str())),
        t => return r.fail(format!("unknown value tag {t}")),
    })
}

/// Encode a schema.
pub fn put_schema(w: &mut Writer, s: &Schema) {
    w.put_u32(s.len() as u32);
    for f in s.fields() {
        match &f.qualifier {
            None => w.put_u8(0),
            Some(q) => {
                w.put_u8(1);
                w.put_str(q);
            }
        }
        w.put_str(&f.name);
        w.put_u8(dtype_tag(f.dtype));
    }
}

/// Decode a schema.
pub fn get_schema(r: &mut Reader<'_>) -> DecodeResult<Schema> {
    let n = r.count("field")?;
    let mut fields = Vec::with_capacity(n);
    for _ in 0..n {
        let qualifier = match r.u8()? {
            0 => None,
            1 => Some(r.str()?),
            t => return r.fail(format!("unknown qualifier tag {t}")),
        };
        let name = r.str()?;
        let tag = r.u8()?;
        let dtype = match dtype_of(tag) {
            Some(d) => d,
            None => return r.fail(format!("unknown data type tag {tag}")),
        };
        fields.push(match qualifier {
            Some(q) => Field::qualified(q, name, dtype),
            None => Field::new(name, dtype),
        });
    }
    Ok(Schema::new(fields))
}

/// Encode a WSD (sorted assignment list).
pub fn put_wsd(w: &mut Writer, wsd: &Wsd) {
    w.put_u32(wsd.len() as u32);
    for a in wsd.assignments() {
        w.put_u32(a.var.0);
        w.put_u16(a.alt);
    }
}

/// Decode a WSD; rejects conflicting assignment lists.
pub fn get_wsd(r: &mut Reader<'_>) -> DecodeResult<Wsd> {
    let n = r.count("assignment")?;
    let mut assignments = Vec::with_capacity(n);
    for _ in 0..n {
        let var = Var(r.u32()?);
        let alt = r.u16()?;
        assignments.push(Assignment::new(var, alt));
    }
    match Wsd::from_assignments(assignments) {
        Some(wsd) => Ok(wsd),
        None => r.fail("unsatisfiable WSD (conflicting assignments)"),
    }
}

/// Encode one uncertain tuple (data row + condition).
pub fn put_utuple(w: &mut Writer, t: &UTuple) {
    w.put_u32(t.data.arity() as u32);
    for v in t.data.values() {
        put_value(w, v);
    }
    put_wsd(w, &t.wsd);
}

/// Decode one uncertain tuple.
pub fn get_utuple(r: &mut Reader<'_>) -> DecodeResult<UTuple> {
    let arity = r.count("column")?;
    let mut values = Vec::with_capacity(arity);
    for _ in 0..arity {
        values.push(get_value(r)?);
    }
    let wsd = get_wsd(r)?;
    Ok(UTuple::new(Tuple::new(values), wsd))
}

/// Encode a whole U-relation (schema + rows).
pub fn put_urelation(w: &mut Writer, u: &URelation) {
    put_schema(w, u.schema());
    w.put_u32(u.len() as u32);
    for t in u.tuples() {
        put_utuple(w, t);
    }
}

/// Decode a whole U-relation, checking row arity against the schema.
pub fn get_urelation(r: &mut Reader<'_>) -> DecodeResult<URelation> {
    let schema = get_schema(r)?;
    let n = r.count("tuple")?;
    let arity = schema.len();
    let mut tuples = Vec::with_capacity(n);
    for _ in 0..n {
        let t = get_utuple(r)?;
        if t.data.arity() != arity {
            return r.fail(format!(
                "row arity {} does not match schema arity {arity}",
                t.data.arity()
            ));
        }
        tuples.push(t);
    }
    Ok(URelation::new(Arc::new(schema), tuples))
}

/// Encode a list of probability distributions (world-table tail).
pub fn put_dists(w: &mut Writer, dists: &[Vec<f64>]) {
    w.put_u32(dists.len() as u32);
    for d in dists {
        w.put_u32(d.len() as u32);
        for &p in d {
            w.put_f64(p);
        }
    }
}

/// Decode a list of probability distributions.
pub fn get_dists(r: &mut Reader<'_>) -> DecodeResult<Vec<Vec<f64>>> {
    let n = r.count("distribution")?;
    let mut dists = Vec::with_capacity(n);
    for _ in 0..n {
        let len = r.count("alternative")?;
        let mut d = Vec::with_capacity(len);
        for _ in 0..len {
            d.push(r.f64()?);
        }
        dists.push(d);
    }
    Ok(dists)
}

#[cfg(test)]
mod tests {
    use super::*;
    use maybms_engine::rel;

    #[test]
    fn crc32_known_vectors() {
        // Standard IEEE CRC-32 check values.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
    }

    #[test]
    fn value_roundtrip_bit_exact() {
        let values = vec![
            Value::Null,
            Value::Bool(true),
            Value::Bool(false),
            Value::Int(i64::MIN),
            Value::Int(i64::MAX),
            Value::Float(0.05),
            Value::Float(-0.0),
            Value::Float(f64::MIN_POSITIVE / 2.0), // subnormal
            Value::str("héllo ↦ wörld"),
            Value::str(""),
        ];
        let mut w = Writer::new();
        for v in &values {
            put_value(&mut w, v);
        }
        let bytes = w.finish();
        let mut r = Reader::new(&bytes);
        for v in &values {
            let got = get_value(&mut r).unwrap();
            // PartialEq on Value uses total_cmp for floats, so -0.0 vs
            // 0.0 would already fail here if bits were perturbed.
            if let (Value::Float(a), Value::Float(b)) = (v, &got) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
            assert_eq!(&got, v);
        }
        assert!(r.is_exhausted());
    }

    #[test]
    fn urelation_roundtrip() {
        let base = rel(
            &[("player", DataType::Text), ("pts", DataType::Int)],
            vec![
                vec!["Bryant".into(), 40.into()],
                vec!["Duncan".into(), Value::Null],
            ],
        );
        let mut u = URelation::from_certain(&base);
        u.tuples_mut()[0].wsd = Wsd::from_assignments(vec![
            Assignment::new(Var(3), 1),
            Assignment::new(Var(0), 0),
            Assignment::new(Var(7), 2),
        ])
        .unwrap();
        let mut w = Writer::new();
        put_urelation(&mut w, &u);
        let bytes = w.finish();
        let mut r = Reader::new(&bytes);
        let got = get_urelation(&mut r).unwrap();
        assert_eq!(got, u);
        assert!(r.is_exhausted());
    }

    #[test]
    fn truncated_input_reports_offset_not_panic() {
        let mut w = Writer::new();
        put_value(&mut w, &Value::str("abcdef"));
        let bytes = w.finish();
        for cut in 0..bytes.len() {
            let mut r = Reader::new(&bytes[..cut]);
            let e = get_value(&mut r).unwrap_err();
            assert!(e.offset <= cut as u64);
        }
    }

    #[test]
    fn hostile_count_is_rejected_before_allocation() {
        // A 4 GiB element count with a 12-byte buffer must fail fast.
        let mut w = Writer::new();
        w.put_u32(u32::MAX);
        w.put_u64(0);
        let bytes = w.finish();
        let mut r = Reader::new(&bytes);
        assert!(get_dists(&mut r).is_err());
        let mut r = Reader::new(&bytes);
        assert!(get_schema(&mut r).is_err());
    }

    #[test]
    fn conflicting_wsd_is_corrupt() {
        let mut w = Writer::new();
        w.put_u32(2);
        w.put_u32(5);
        w.put_u16(0);
        w.put_u32(5);
        w.put_u16(1);
        let bytes = w.finish();
        let mut r = Reader::new(&bytes);
        let e = get_wsd(&mut r).unwrap_err();
        assert!(e.reason.contains("unsatisfiable"));
    }

    #[test]
    fn dists_roundtrip_exact_bits() {
        let dists = vec![vec![0.8, 0.05, 0.15], vec![1.0], vec![0.5, 0.5]];
        let mut w = Writer::new();
        put_dists(&mut w, &dists);
        let bytes = w.finish();
        let mut r = Reader::new(&bytes);
        let got = get_dists(&mut r).unwrap();
        assert_eq!(got.len(), dists.len());
        for (a, b) in got.iter().flatten().zip(dists.iter().flatten()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }
}
