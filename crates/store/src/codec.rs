//! Binary encoding of catalog state for the WAL and snapshots.
//!
//! A deliberately boring little-endian format with no external
//! dependencies (the container has no network; see ROADMAP's bootstrap
//! caveat): length-prefixed strings, tag bytes for enums, `f64` as raw
//! IEEE-754 bits so probabilities round-trip *bit-exactly* — the
//! determinism contract (bit-identical results at any thread count)
//! must survive a restart, so serialization may not perturb a single
//! float bit.
//!
//! Decoding is total: every read is bounds-checked and surfaces a
//! [`CodecError`] with the byte offset, which recovery converts into a
//! "corrupt at byte N" report instead of a panic.

use std::sync::Arc;

use maybms_engine::{
    Column, ColumnBatch, ColumnData, DataType, Field, NullMask, Schema, StrDict, Tuple, Value,
};
use maybms_urel::{Assignment, URelation, UTuple, Var, Wsd};

/// A bounds-checked decode failure at a byte offset (relative to the
/// start of the buffer being decoded).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CodecError {
    /// Offset of the first byte that could not be decoded.
    pub offset: u64,
    /// What was expected.
    pub reason: String,
}

/// Decode result.
pub type DecodeResult<T> = std::result::Result<T, CodecError>;

// ---------------------------------------------------------------------
// CRC-32 (IEEE 802.3, the zlib polynomial), byte-at-a-time with a
// compile-time table.
// ---------------------------------------------------------------------

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { 0xedb8_8320 ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

const CRC_TABLE: [u32; 256] = crc32_table();

/// CRC-32 checksum of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = 0xffff_ffffu32;
    for &b in data {
        c = CRC_TABLE[((c ^ b as u32) & 0xff) as usize] ^ (c >> 8);
    }
    c ^ 0xffff_ffff
}

// ---------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------

/// Append-only encode buffer.
#[derive(Debug, Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// Fresh empty writer.
    pub fn new() -> Writer {
        Writer::default()
    }

    /// The encoded bytes.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }

    /// Current length (for framing).
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True iff nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    pub(crate) fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub(crate) fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub(crate) fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub(crate) fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub(crate) fn put_i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub(crate) fn put_f64(&mut self, v: f64) {
        // Raw bits: exact round-trip, -0.0 and subnormals included.
        self.put_u64(v.to_bits());
    }

    pub(crate) fn put_str(&mut self, s: &str) {
        self.put_u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }
}

// ---------------------------------------------------------------------
// Reader
// ---------------------------------------------------------------------

/// Bounds-checked decode cursor.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Read from the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, pos: 0 }
    }

    /// Bytes consumed so far.
    pub fn offset(&self) -> u64 {
        self.pos as u64
    }

    /// True iff every byte has been consumed.
    pub fn is_exhausted(&self) -> bool {
        self.pos == self.buf.len()
    }

    fn fail<T>(&self, reason: impl Into<String>) -> DecodeResult<T> {
        Err(CodecError { offset: self.pos as u64, reason: reason.into() })
    }

    fn take(&mut self, n: usize) -> DecodeResult<&'a [u8]> {
        if self.buf.len() - self.pos < n {
            return self.fail(format!(
                "need {n} bytes, {} remain",
                self.buf.len() - self.pos
            ));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    pub(crate) fn u8(&mut self) -> DecodeResult<u8> {
        Ok(self.take(1)?[0])
    }

    pub(crate) fn u16(&mut self) -> DecodeResult<u16> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("2 bytes")))
    }

    pub(crate) fn u32(&mut self) -> DecodeResult<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    pub(crate) fn u64(&mut self) -> DecodeResult<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    pub(crate) fn i64(&mut self) -> DecodeResult<i64> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    pub(crate) fn f64(&mut self) -> DecodeResult<f64> {
        Ok(f64::from_bits(self.u64()?))
    }

    pub(crate) fn str(&mut self) -> DecodeResult<String> {
        let n = self.u32()? as usize;
        let start = self.pos;
        let bytes = self.take(n)?;
        match std::str::from_utf8(bytes) {
            Ok(s) => Ok(s.to_string()),
            Err(_) => Err(CodecError {
                offset: start as u64,
                reason: "invalid UTF-8 in string".into(),
            }),
        }
    }

    /// A collection count, sanity-bounded so a corrupt length cannot
    /// drive a multi-gigabyte allocation before the bounds checks kick
    /// in element-by-element.
    fn count(&mut self, what: &str) -> DecodeResult<usize> {
        let n = self.u32()? as usize;
        // Each element consumes at least one byte; more than `remaining`
        // elements is provably corrupt.
        if n > self.buf.len() - self.pos {
            return self.fail(format!("{what} count {n} exceeds remaining bytes"));
        }
        Ok(n)
    }
}

// ---------------------------------------------------------------------
// Catalog types
// ---------------------------------------------------------------------

fn dtype_tag(t: DataType) -> u8 {
    match t {
        DataType::Bool => 0,
        DataType::Int => 1,
        DataType::Float => 2,
        DataType::Text => 3,
        DataType::Unknown => 4,
    }
}

fn dtype_of(tag: u8) -> Option<DataType> {
    Some(match tag {
        0 => DataType::Bool,
        1 => DataType::Int,
        2 => DataType::Float,
        3 => DataType::Text,
        4 => DataType::Unknown,
        _ => return None,
    })
}

/// Encode a scalar value.
pub fn put_value(w: &mut Writer, v: &Value) {
    match v {
        Value::Null => w.put_u8(0),
        Value::Bool(b) => {
            w.put_u8(1);
            w.put_u8(*b as u8);
        }
        Value::Int(i) => {
            w.put_u8(2);
            w.put_i64(*i);
        }
        Value::Float(f) => {
            w.put_u8(3);
            w.put_f64(*f);
        }
        Value::Str(s) => {
            w.put_u8(4);
            w.put_str(s);
        }
    }
}

/// Decode a scalar value.
pub fn get_value(r: &mut Reader<'_>) -> DecodeResult<Value> {
    Ok(match r.u8()? {
        0 => Value::Null,
        1 => Value::Bool(r.u8()? != 0),
        2 => Value::Int(r.i64()?),
        3 => Value::Float(r.f64()?),
        4 => Value::Str(Arc::from(r.str()?.as_str())),
        t => return r.fail(format!("unknown value tag {t}")),
    })
}

/// Encode a schema.
pub fn put_schema(w: &mut Writer, s: &Schema) {
    w.put_u32(s.len() as u32);
    for f in s.fields() {
        match &f.qualifier {
            None => w.put_u8(0),
            Some(q) => {
                w.put_u8(1);
                w.put_str(q);
            }
        }
        w.put_str(&f.name);
        w.put_u8(dtype_tag(f.dtype));
    }
}

/// Decode a schema.
pub fn get_schema(r: &mut Reader<'_>) -> DecodeResult<Schema> {
    let n = r.count("field")?;
    let mut fields = Vec::with_capacity(n);
    for _ in 0..n {
        let qualifier = match r.u8()? {
            0 => None,
            1 => Some(r.str()?),
            t => return r.fail(format!("unknown qualifier tag {t}")),
        };
        let name = r.str()?;
        let tag = r.u8()?;
        let dtype = match dtype_of(tag) {
            Some(d) => d,
            None => return r.fail(format!("unknown data type tag {tag}")),
        };
        fields.push(match qualifier {
            Some(q) => Field::qualified(q, name, dtype),
            None => Field::new(name, dtype),
        });
    }
    Ok(Schema::new(fields))
}

/// Encode a WSD (sorted assignment list).
pub fn put_wsd(w: &mut Writer, wsd: &Wsd) {
    w.put_u32(wsd.len() as u32);
    for a in wsd.assignments() {
        w.put_u32(a.var.0);
        w.put_u16(a.alt);
    }
}

/// Decode a WSD; rejects conflicting assignment lists.
pub fn get_wsd(r: &mut Reader<'_>) -> DecodeResult<Wsd> {
    let n = r.count("assignment")?;
    let mut assignments = Vec::with_capacity(n);
    for _ in 0..n {
        let var = Var(r.u32()?);
        let alt = r.u16()?;
        assignments.push(Assignment::new(var, alt));
    }
    match Wsd::from_assignments(assignments) {
        Some(wsd) => Ok(wsd),
        None => r.fail("unsatisfiable WSD (conflicting assignments)"),
    }
}

/// Encode one uncertain tuple (data row + condition).
pub fn put_utuple(w: &mut Writer, t: &UTuple) {
    w.put_u32(t.data.arity() as u32);
    for v in t.data.values() {
        put_value(w, v);
    }
    put_wsd(w, &t.wsd);
}

/// Decode one uncertain tuple.
pub fn get_utuple(r: &mut Reader<'_>) -> DecodeResult<UTuple> {
    let arity = r.count("column")?;
    let mut values = Vec::with_capacity(arity);
    for _ in 0..arity {
        values.push(get_value(r)?);
    }
    let wsd = get_wsd(r)?;
    Ok(UTuple::new(Tuple::new(values), wsd))
}

/// Encode a whole U-relation (schema + rows).
pub fn put_urelation(w: &mut Writer, u: &URelation) {
    put_schema(w, u.schema());
    w.put_u32(u.len() as u32);
    for t in u.tuples() {
        put_utuple(w, t);
    }
}

/// Decode a whole U-relation, checking row arity against the schema.
pub fn get_urelation(r: &mut Reader<'_>) -> DecodeResult<URelation> {
    let schema = get_schema(r)?;
    let n = r.count("tuple")?;
    let arity = schema.len();
    let mut tuples = Vec::with_capacity(n);
    for _ in 0..n {
        let t = get_utuple(r)?;
        if t.data.arity() != arity {
            return r.fail(format!(
                "row arity {} does not match schema arity {arity}",
                t.data.arity()
            ));
        }
        tuples.push(t);
    }
    Ok(URelation::new(Arc::new(schema), tuples))
}

// ---------------------------------------------------------------------
// Columnar relation codec (the v2 representation-preserving format:
// snapshot version \x02 bodies and WAL op tag 5 use it; v1 bodies and
// op tags 0-4 keep the row-image layout above, so pre-refactor files
// still decode)
// ---------------------------------------------------------------------

/// Sparse null positions: count + ascending row indices. Written for
/// typed columns only (`Values`/`Const` carry nulls in the values).
fn put_nullmask(w: &mut Writer, col: &Column) {
    let nulls: Vec<u32> =
        (0..col.len()).filter(|&i| col.nulls().is_null(i)).map(|i| i as u32).collect();
    w.put_u32(nulls.len() as u32);
    for i in nulls {
        w.put_u32(i);
    }
}

fn get_nullmask(r: &mut Reader<'_>, rows: usize) -> DecodeResult<NullMask> {
    let n = r.count("null index")?;
    let mut mask = NullMask::none();
    for _ in 0..n {
        let i = r.u32()? as usize;
        if i >= rows {
            return r.fail(format!("null index {i} out of range ({rows} rows)"));
        }
        mask.set_null(i);
    }
    Ok(mask)
}

/// Encode one column: a representation tag, the physical payload, and
/// (for typed layouts) the null mask. The representation — typed vector
/// vs dictionary vs `Values` vs `Const`, dictionary code order, NULL-slot
/// placeholders — round-trips *exactly*, so re-encoding a decoded column
/// is byte-identical (recovery relies on this to recompute WAL frame
/// offsets).
fn put_column(w: &mut Writer, col: &Column) {
    match col.data() {
        ColumnData::Int(v) => {
            w.put_u8(0);
            for &x in v {
                w.put_i64(x);
            }
            put_nullmask(w, col);
        }
        ColumnData::Float(v) => {
            w.put_u8(1);
            for &x in v {
                w.put_f64(x);
            }
            put_nullmask(w, col);
        }
        ColumnData::Bool(v) => {
            w.put_u8(2);
            for &x in v {
                w.put_u8(x as u8);
            }
            put_nullmask(w, col);
        }
        ColumnData::Str(v) => {
            w.put_u8(3);
            for s in v {
                w.put_str(s);
            }
            put_nullmask(w, col);
        }
        ColumnData::Dict { codes, dict } => {
            w.put_u8(4);
            w.put_u32(dict.len() as u32);
            for e in dict.entries() {
                w.put_str(e);
            }
            for &c in codes {
                w.put_u32(c);
            }
            put_nullmask(w, col);
        }
        ColumnData::Values(v) => {
            w.put_u8(5);
            for x in v {
                put_value(w, x);
            }
        }
        ColumnData::Const(v) => {
            w.put_u8(6);
            put_value(w, v);
        }
    }
}

fn get_column(r: &mut Reader<'_>, rows: usize) -> DecodeResult<Column> {
    // Preallocation cap: corrupt row counts fail element-by-element
    // before large allocations, as everywhere else in this module.
    let cap = rows.min(1 << 16);
    Ok(match r.u8()? {
        0 => {
            let mut v = Vec::with_capacity(cap);
            for _ in 0..rows {
                v.push(r.i64()?);
            }
            Column::from_ints(v, get_nullmask(r, rows)?)
        }
        1 => {
            let mut v = Vec::with_capacity(cap);
            for _ in 0..rows {
                v.push(r.f64()?);
            }
            Column::from_floats(v, get_nullmask(r, rows)?)
        }
        2 => {
            let mut v = Vec::with_capacity(cap);
            for _ in 0..rows {
                v.push(r.u8()? != 0);
            }
            Column::from_bools(v, get_nullmask(r, rows)?)
        }
        3 => {
            let mut v: Vec<Arc<str>> = Vec::with_capacity(cap);
            for _ in 0..rows {
                v.push(Arc::from(r.str()?.as_str()));
            }
            Column::from_strs(v, get_nullmask(r, rows)?)
        }
        4 => {
            let n = r.count("dictionary entry")?;
            let mut dict = StrDict::new();
            for _ in 0..n {
                let s: Arc<str> = Arc::from(r.str()?.as_str());
                dict.intern(&s);
            }
            if dict.len() != n {
                return r.fail("duplicate dictionary entry");
            }
            let mut codes = Vec::with_capacity(cap);
            for _ in 0..rows {
                codes.push(r.u32()?);
            }
            let nulls = get_nullmask(r, rows)?;
            for (i, &c) in codes.iter().enumerate() {
                if !nulls.is_null(i) && c as usize >= n {
                    return r.fail(format!(
                        "dictionary code {c} out of range ({n} entries)"
                    ));
                }
            }
            Column::from_dict(codes, Arc::new(dict), nulls)
        }
        5 => {
            let mut v = Vec::with_capacity(cap);
            for _ in 0..rows {
                v.push(get_value(r)?);
            }
            Column::from_raw_values(v)
        }
        6 => Column::from_const(get_value(r)?, rows),
        t => return r.fail(format!("unknown column tag {t}")),
    })
}

/// Encode a U-relation preserving its storage representation: a
/// columnar-at-rest table serializes its column batch (dictionaries
/// included) and WSD sidecar; a row-major table serializes the row image
/// via [`put_urelation`]. One leading tag byte says which.
pub fn put_urelation_any(w: &mut Writer, u: &URelation) {
    match u.at_rest() {
        None => {
            w.put_u8(0);
            put_urelation(w, u);
        }
        Some((batch, wsds)) => {
            w.put_u8(1);
            put_schema(w, u.schema());
            w.put_u32(batch.rows() as u32);
            w.put_u32(batch.arity() as u32);
            for col in batch.columns() {
                put_column(w, col);
            }
            for wsd in wsds {
                put_wsd(w, wsd);
            }
        }
    }
}

/// Decode a [`put_urelation_any`] image, restoring the exact storage
/// representation — recovery of a columnar table never re-pivots.
pub fn get_urelation_any(r: &mut Reader<'_>) -> DecodeResult<URelation> {
    match r.u8()? {
        0 => get_urelation(r),
        1 => {
            let schema = get_schema(r)?;
            let rows = r.u32()? as usize;
            let ncols = r.count("column")?;
            if ncols != schema.len() {
                return r.fail(format!(
                    "column count {ncols} does not match schema arity {}",
                    schema.len()
                ));
            }
            let mut cols = Vec::with_capacity(ncols);
            for k in 0..ncols {
                let c = get_column(r, rows)?;
                if c.len() != rows {
                    return r.fail(format!(
                        "column {k} length {} does not match row count {rows}",
                        c.len()
                    ));
                }
                cols.push(c);
            }
            let mut wsds = Vec::with_capacity(rows.min(1 << 16));
            for _ in 0..rows {
                wsds.push(get_wsd(r)?);
            }
            Ok(URelation::from_batch(
                Arc::new(schema),
                ColumnBatch::from_columns(cols, rows),
                wsds,
            ))
        }
        t => r.fail(format!("unknown relation representation tag {t}")),
    }
}

/// Encode a list of probability distributions (world-table tail).
pub fn put_dists(w: &mut Writer, dists: &[Vec<f64>]) {
    w.put_u32(dists.len() as u32);
    for d in dists {
        w.put_u32(d.len() as u32);
        for &p in d {
            w.put_f64(p);
        }
    }
}

/// Decode a list of probability distributions.
pub fn get_dists(r: &mut Reader<'_>) -> DecodeResult<Vec<Vec<f64>>> {
    let n = r.count("distribution")?;
    let mut dists = Vec::with_capacity(n);
    for _ in 0..n {
        let len = r.count("alternative")?;
        let mut d = Vec::with_capacity(len);
        for _ in 0..len {
            d.push(r.f64()?);
        }
        dists.push(d);
    }
    Ok(dists)
}

#[cfg(test)]
mod tests {
    use super::*;
    use maybms_engine::rel;

    #[test]
    fn crc32_known_vectors() {
        // Standard IEEE CRC-32 check values.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
    }

    #[test]
    fn value_roundtrip_bit_exact() {
        let values = vec![
            Value::Null,
            Value::Bool(true),
            Value::Bool(false),
            Value::Int(i64::MIN),
            Value::Int(i64::MAX),
            Value::Float(0.05),
            Value::Float(-0.0),
            Value::Float(f64::MIN_POSITIVE / 2.0), // subnormal
            Value::str("héllo ↦ wörld"),
            Value::str(""),
        ];
        let mut w = Writer::new();
        for v in &values {
            put_value(&mut w, v);
        }
        let bytes = w.finish();
        let mut r = Reader::new(&bytes);
        for v in &values {
            let got = get_value(&mut r).unwrap();
            // PartialEq on Value uses total_cmp for floats, so -0.0 vs
            // 0.0 would already fail here if bits were perturbed.
            if let (Value::Float(a), Value::Float(b)) = (v, &got) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
            assert_eq!(&got, v);
        }
        assert!(r.is_exhausted());
    }

    #[test]
    fn urelation_roundtrip() {
        let base = rel(
            &[("player", DataType::Text), ("pts", DataType::Int)],
            vec![
                vec!["Bryant".into(), 40.into()],
                vec!["Duncan".into(), Value::Null],
            ],
        );
        let mut u = URelation::from_certain(&base);
        u.tuples_mut()[0].wsd = Wsd::from_assignments(vec![
            Assignment::new(Var(3), 1),
            Assignment::new(Var(0), 0),
            Assignment::new(Var(7), 2),
        ])
        .unwrap();
        let mut w = Writer::new();
        put_urelation(&mut w, &u);
        let bytes = w.finish();
        let mut r = Reader::new(&bytes);
        let got = get_urelation(&mut r).unwrap();
        assert_eq!(got, u);
        assert!(r.is_exhausted());
    }

    #[test]
    fn truncated_input_reports_offset_not_panic() {
        let mut w = Writer::new();
        put_value(&mut w, &Value::str("abcdef"));
        let bytes = w.finish();
        for cut in 0..bytes.len() {
            let mut r = Reader::new(&bytes[..cut]);
            let e = get_value(&mut r).unwrap_err();
            assert!(e.offset <= cut as u64);
        }
    }

    #[test]
    fn hostile_count_is_rejected_before_allocation() {
        // A 4 GiB element count with a 12-byte buffer must fail fast.
        let mut w = Writer::new();
        w.put_u32(u32::MAX);
        w.put_u64(0);
        let bytes = w.finish();
        let mut r = Reader::new(&bytes);
        assert!(get_dists(&mut r).is_err());
        let mut r = Reader::new(&bytes);
        assert!(get_schema(&mut r).is_err());
    }

    #[test]
    fn conflicting_wsd_is_corrupt() {
        let mut w = Writer::new();
        w.put_u32(2);
        w.put_u32(5);
        w.put_u16(0);
        w.put_u32(5);
        w.put_u16(1);
        let bytes = w.finish();
        let mut r = Reader::new(&bytes);
        let e = get_wsd(&mut r).unwrap_err();
        assert!(e.reason.contains("unsatisfiable"));
    }

    #[test]
    fn columnar_urelation_roundtrips_every_column_kind() {
                // One column per physical layout: Int, Float, Bool, Str→Dict,
        // mixed Values, and an all-NULL Const — with NULLs sprinkled in
        // so placeholder slots round-trip too.
        let schema = Schema::new(vec![
            Field::new("i", DataType::Int),
            Field::new("f", DataType::Float),
            Field::new("b", DataType::Bool),
            Field::new("s", DataType::Text),
            Field::new("m", DataType::Unknown),
            Field::new("z", DataType::Unknown),
        ]);
        let rows: Vec<Vec<Value>> = vec![
            vec![1.into(), Value::Float(-0.0), Value::Bool(true), "dup".into(), 7.into(), Value::Null],
            vec![Value::Null, Value::Null, Value::Null, Value::Null, "mix".into(), Value::Null],
            vec![2.into(), Value::Float(0.05), Value::Bool(false), "dup".into(), Value::Null, Value::Null],
        ];
        let base = maybms_engine::Relation::new_unchecked(
            Arc::new(schema),
            rows.into_iter().map(Tuple::new).collect(),
        );
        let u = URelation::from_certain(&base).compact();
        let (batch, _) = u.at_rest().expect("compact is columnar");
        assert!(matches!(batch.column(3).data(), ColumnData::Dict { .. }));
        assert!(matches!(batch.column(4).data(), ColumnData::Values(_)));
        assert!(matches!(batch.column(5).data(), ColumnData::Const(Value::Null)));
        let mut w = Writer::new();
        put_urelation_any(&mut w, &u);
        let bytes = w.finish();
        let mut r = Reader::new(&bytes);
        let got = get_urelation_any(&mut r).unwrap();
        assert!(r.is_exhausted());
        assert_eq!(got, u);
        assert!(got.is_columnar());
        // Representation-exact: re-encoding is byte-identical.
        let mut w2 = Writer::new();
        put_urelation_any(&mut w2, &got);
        assert_eq!(w2.finish(), bytes);
    }

    #[test]
    fn columnar_codec_rejects_out_of_range_dictionary_code() {
        let base = rel(&[("s", DataType::Text)], vec![vec!["a".into()]]);
        let u = URelation::from_certain(&base).compact();
        let mut w = Writer::new();
        put_urelation_any(&mut w, &u);
        let mut bytes = w.finish();
        // The single code is the last 4 bytes before the (empty) null
        // mask and the row's (empty-ish) WSD; corrupt it by scanning for
        // the code u32 — simplest robust approach: flip every byte and
        // require that no mutation panics, only errors or decodes.
        for i in 0..bytes.len() {
            bytes[i] ^= 0xff;
            let mut r = Reader::new(&bytes);
            let _ = get_urelation_any(&mut r); // must not panic
            bytes[i] ^= 0xff;
        }
        // And a targeted case: declared dict of 1 entry, code 1.
        let mut w = Writer::new();
        w.put_u8(1); // columnar tag
        put_schema(&mut w, &Schema::from_pairs(&[("s", DataType::Text)]));
        w.put_u32(1); // rows
        w.put_u32(1); // ncols
        w.put_u8(4); // dict column
        w.put_u32(1); // 1 entry
        w.put_str("a");
        w.put_u32(1); // code out of range
        w.put_u32(0); // no nulls
        put_wsd(&mut w, &Wsd::tautology());
        let bytes = w.finish();
        let mut r = Reader::new(&bytes);
        let e = get_urelation_any(&mut r).unwrap_err();
        assert!(e.reason.contains("out of range"), "{}", e.reason);
    }

    #[test]
    fn dists_roundtrip_exact_bits() {
        let dists = vec![vec![0.8, 0.05, 0.15], vec![1.0], vec![0.5, 0.5]];
        let mut w = Writer::new();
        put_dists(&mut w, &dists);
        let bytes = w.finish();
        let mut r = Reader::new(&bytes);
        let got = get_dists(&mut r).unwrap();
        assert_eq!(got.len(), dists.len());
        for (a, b) in got.iter().flatten().zip(dists.iter().flatten()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }
}
