//! The write-ahead log: length-prefixed, CRC32-checksummed records.
//!
//! File layout:
//!
//! ```text
//! [8-byte magic "MAYBWAL\x01"]
//! repeat: [u32 payload_len][u32 crc32(payload)][payload]
//! ```
//!
//! Each payload is one [`WalRecord`]: an LSN, the world-table extension
//! the logged operation depends on (so a single record is atomic — the
//! new random variables and the table rows referencing them commit
//! together), and the [`Op`] itself.
//!
//! Replay semantics ([`scan`]): records are applied in file order. A
//! record whose frame is incomplete or whose CRC does not match is a
//! *torn tail* — the crash interrupted the append — and replay stops
//! cleanly there, reporting the valid prefix length so the caller can
//! truncate it away. A record whose CRC matches but whose payload does
//! not decode is genuine corruption (bit rot, hand editing) and is an
//! error carrying the file offset.

use maybms_urel::URelation;
use maybms_urel::UTuple;

use crate::codec::{self, Reader, Writer};
use crate::error::{Result, StoreError};

/// WAL file name inside the data directory.
pub const WAL_FILE: &str = "wal";

/// Magic bytes heading every WAL file (version byte last).
pub const WAL_MAGIC: &[u8; 8] = b"MAYBWAL\x01";

/// A logged catalog mutation: the *physical result* of a statement
/// (per §2.3, updates are just modifications of the representation
/// tables, so results — including `repair key` / `pick tuples` output —
/// log as plain rows).
#[derive(Debug, Clone, PartialEq)]
pub enum Op {
    /// `CREATE TABLE`: an empty table with the given schema.
    CreateTable {
        /// Catalog key (lowercased).
        name: String,
        /// Column schema.
        schema: maybms_engine::Schema,
    },
    /// Store a full table image (`CREATE TABLE AS`, programmatic
    /// registration). The rows may carry WSDs.
    PutTable {
        /// Catalog key (lowercased).
        name: String,
        /// The stored U-relation.
        table: URelation,
    },
    /// `INSERT`: rows appended to an existing table.
    InsertRows {
        /// Catalog key (lowercased).
        table: String,
        /// The appended rows.
        rows: Vec<UTuple>,
    },
    /// `UPDATE` / `DELETE`: the table's full post-statement row list
    /// (schema unchanged).
    ReplaceRows {
        /// Catalog key (lowercased).
        table: String,
        /// The replacement rows.
        rows: Vec<UTuple>,
    },
    /// `DROP TABLE`.
    DropTable {
        /// Catalog key (lowercased).
        name: String,
    },
}

impl Op {
    /// Short human-readable label (for EXPLAIN-style status output).
    pub fn describe(&self) -> String {
        match self {
            Op::CreateTable { name, .. } => format!("create {name}"),
            Op::PutTable { name, table } => format!("put {name} ({} rows)", table.len()),
            Op::InsertRows { table, rows } => format!("insert {table} (+{} rows)", rows.len()),
            Op::ReplaceRows { table, rows } => {
                format!("replace {table} ({} rows)", rows.len())
            }
            Op::DropTable { name } => format!("drop {name}"),
        }
    }
}

/// New random variables the operation's rows may reference:
/// `(first_var_id, distributions)` — the world table is extended with
/// `distributions[i]` at id `first_var_id + i` before the op applies.
pub type WorldExt = Option<(u32, Vec<Vec<f64>>)>;

/// One WAL record.
#[derive(Debug, Clone, PartialEq)]
pub struct WalRecord {
    /// Log sequence number (monotonic; snapshots store the next LSN so
    /// records already folded into a snapshot are skipped on replay).
    pub lsn: u64,
    /// World-table extension committed atomically with the op.
    pub world_ext: WorldExt,
    /// The mutation.
    pub op: Op,
}

fn put_rows(w: &mut Writer, rows: &[UTuple]) {
    w.put_u32(rows.len() as u32);
    for t in rows {
        codec::put_utuple(w, t);
    }
}

fn get_rows(r: &mut Reader<'_>) -> codec::DecodeResult<Vec<UTuple>> {
    let n = r.u32()? as usize;
    let mut rows = Vec::with_capacity(n.min(1 << 16));
    for _ in 0..n {
        rows.push(codec::get_utuple(r)?);
    }
    Ok(rows)
}

/// Encode a record payload (no framing).
pub fn encode_record(rec: &WalRecord) -> Vec<u8> {
    let mut w = Writer::new();
    w.put_u64(rec.lsn);
    match &rec.world_ext {
        None => w.put_u8(0),
        Some((first, dists)) => {
            w.put_u8(1);
            w.put_u32(*first);
            codec::put_dists(&mut w, dists);
        }
    }
    match &rec.op {
        Op::CreateTable { name, schema } => {
            w.put_u8(0);
            w.put_str(name);
            codec::put_schema(&mut w, schema);
        }
        Op::PutTable { name, table } => {
            // Columnar-at-rest tables log under tag 5 so the exact
            // representation (dictionaries included) replays without a
            // re-pivot; row-major tables keep the pre-columnar tag 1,
            // so a store running with MAYBMS_COLUMNAR_STORE=0 appends
            // records any pre-refactor reader could still decode.
            if table.is_columnar() {
                w.put_u8(5);
                w.put_str(name);
                codec::put_urelation_any(&mut w, table);
            } else {
                w.put_u8(1);
                w.put_str(name);
                codec::put_urelation(&mut w, table);
            }
        }
        Op::InsertRows { table, rows } => {
            w.put_u8(2);
            w.put_str(table);
            put_rows(&mut w, rows);
        }
        Op::ReplaceRows { table, rows } => {
            w.put_u8(3);
            w.put_str(table);
            put_rows(&mut w, rows);
        }
        Op::DropTable { name } => {
            w.put_u8(4);
            w.put_str(name);
        }
    }
    w.finish()
}

/// Decode a record payload.
pub fn decode_record(payload: &[u8]) -> codec::DecodeResult<WalRecord> {
    let mut r = Reader::new(payload);
    let lsn = r.u64()?;
    let world_ext = match r.u8()? {
        0 => None,
        1 => {
            let first = r.u32()?;
            let dists = codec::get_dists(&mut r)?;
            Some((first, dists))
        }
        t => {
            return Err(codec::CodecError {
                offset: r.offset(),
                reason: format!("unknown world-ext tag {t}"),
            })
        }
    };
    let op = match r.u8()? {
        0 => Op::CreateTable { name: r.str()?, schema: codec::get_schema(&mut r)? },
        1 => Op::PutTable { name: r.str()?, table: codec::get_urelation(&mut r)? },
        2 => Op::InsertRows { table: r.str()?, rows: get_rows(&mut r)? },
        3 => Op::ReplaceRows { table: r.str()?, rows: get_rows(&mut r)? },
        4 => Op::DropTable { name: r.str()? },
        5 => Op::PutTable { name: r.str()?, table: codec::get_urelation_any(&mut r)? },
        t => {
            return Err(codec::CodecError {
                offset: r.offset(),
                reason: format!("unknown op tag {t}"),
            })
        }
    };
    if !r.is_exhausted() {
        return Err(codec::CodecError {
            offset: r.offset(),
            reason: "trailing bytes after record".into(),
        });
    }
    Ok(WalRecord { lsn, world_ext, op })
}

/// Frame a record for appending: `[len][crc][payload]`.
pub fn frame_record(rec: &WalRecord) -> Vec<u8> {
    let payload = encode_record(rec);
    let mut out = Vec::with_capacity(payload.len() + 8);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&codec::crc32(&payload).to_le_bytes());
    out.extend_from_slice(&payload);
    out
}

/// Result of scanning a WAL file.
#[derive(Debug)]
pub struct WalScan {
    /// The decoded records, in file order.
    pub records: Vec<WalRecord>,
    /// Length of the valid prefix (bytes). Anything past this is a torn
    /// tail and should be truncated before appending resumes.
    pub valid_len: u64,
    /// Whether a torn tail was found (incomplete frame or CRC mismatch
    /// on the final record).
    pub torn: bool,
}

/// Scan a WAL file's bytes. See the module docs for the stop rules.
pub fn scan(bytes: &[u8]) -> Result<WalScan> {
    // A file shorter than the magic is what a crash during the very
    // first create+write leaves behind: an empty WAL, as long as what
    // *is* there is a prefix of the magic.
    if bytes.len() < WAL_MAGIC.len() {
        if *bytes != WAL_MAGIC[..bytes.len()] {
            return Err(StoreError::corrupt(WAL_FILE, 0, "bad WAL magic"));
        }
        return Ok(WalScan { records: Vec::new(), valid_len: 0, torn: !bytes.is_empty() });
    }
    if &bytes[..WAL_MAGIC.len()] != WAL_MAGIC {
        return Err(StoreError::corrupt(WAL_FILE, 0, "bad WAL magic"));
    }
    let mut records = Vec::new();
    let mut pos = WAL_MAGIC.len();
    loop {
        let remaining = bytes.len() - pos;
        if remaining == 0 {
            return Ok(WalScan { records, valid_len: pos as u64, torn: false });
        }
        if remaining < 8 {
            return Ok(WalScan { records, valid_len: pos as u64, torn: true });
        }
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().expect("4 bytes"))
            as usize;
        let crc = u32::from_le_bytes(bytes[pos + 4..pos + 8].try_into().expect("4 bytes"));
        if len > remaining - 8 {
            // Frame promises more bytes than the file holds: torn append.
            return Ok(WalScan { records, valid_len: pos as u64, torn: true });
        }
        let payload = &bytes[pos + 8..pos + 8 + len];
        if codec::crc32(payload) != crc {
            // Checksum mismatch: the append tore inside the payload (or
            // the tail rotted). Either way nothing after it can be
            // trusted — stop cleanly at the last good record.
            return Ok(WalScan { records, valid_len: pos as u64, torn: true });
        }
        match decode_record(payload) {
            Ok(rec) => records.push(rec),
            Err(e) => {
                // CRC-valid but undecodable: not a crash artifact.
                return Err(StoreError::corrupt(
                    WAL_FILE,
                    (pos + 8) as u64 + e.offset,
                    e.reason,
                ));
            }
        }
        pos += 8 + len;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use maybms_engine::{DataType, Schema};

    fn rec(lsn: u64) -> WalRecord {
        WalRecord {
            lsn,
            world_ext: if lsn.is_multiple_of(2) {
                Some((lsn as u32, vec![vec![0.5, 0.5], vec![1.0]]))
            } else {
                None
            },
            op: Op::CreateTable {
                name: format!("t{lsn}"),
                schema: Schema::from_pairs(&[("a", DataType::Int)]),
            },
        }
    }

    fn wal_bytes(recs: &[WalRecord]) -> Vec<u8> {
        let mut bytes = WAL_MAGIC.to_vec();
        for r in recs {
            bytes.extend_from_slice(&frame_record(r));
        }
        bytes
    }

    #[test]
    fn roundtrip_and_scan() {
        let recs: Vec<WalRecord> = (0..5).map(rec).collect();
        let bytes = wal_bytes(&recs);
        let scan = scan(&bytes).unwrap();
        assert_eq!(scan.records, recs);
        assert_eq!(scan.valid_len, bytes.len() as u64);
        assert!(!scan.torn);
    }

    #[test]
    fn columnar_put_table_roundtrips_and_reencodes_byte_identical() {
        use maybms_engine::{rel, Value};
        use maybms_urel::URelation;
        let base = rel(
            &[("s", DataType::Text), ("n", DataType::Int)],
            vec![
                vec!["x".into(), 1.into()],
                vec![Value::Null, Value::Null],
                vec!["y".into(), 2.into()],
                vec!["x".into(), 3.into()],
            ],
        );
        let table = URelation::from_certain(&base).compact();
        assert!(table.is_columnar());
        let record = WalRecord {
            lsn: 7,
            world_ext: None,
            op: Op::PutTable { name: "t".into(), table },
        };
        let payload = encode_record(&record);
        let decoded = decode_record(&payload).unwrap();
        assert_eq!(decoded, record);
        let Op::PutTable { table, .. } = &decoded.op else { unreachable!() };
        assert!(table.is_columnar());
        // Recovery recomputes frame offsets by re-encoding each decoded
        // record, so the round-trip must be byte-identical.
        assert_eq!(encode_record(&decoded), payload);
    }

    #[test]
    fn row_major_put_table_still_logs_under_pre_columnar_tag() {
        use maybms_engine::rel;
        use maybms_urel::URelation;
        let base = rel(&[("n", DataType::Int)], vec![vec![1.into()]]);
        let table = URelation::from_certain(&base);
        assert!(!table.is_columnar());
        let record = WalRecord {
            lsn: 1,
            world_ext: None,
            op: Op::PutTable { name: "t".into(), table },
        };
        let payload = encode_record(&record);
        // Offset 8 (lsn) + 1 (world-ext tag): the op tag must be the
        // pre-columnar 1, keeping row-image appends readable by older
        // builds.
        assert_eq!(payload[9], 1);
        assert_eq!(decode_record(&payload).unwrap(), record);
    }

    #[test]
    fn every_truncation_point_stops_cleanly() {
        let recs: Vec<WalRecord> = (0..3).map(rec).collect();
        let bytes = wal_bytes(&recs);
        for cut in 0..bytes.len() {
            let s = scan(&bytes[..cut]).unwrap();
            // The scan keeps only whole records and reports a valid
            // prefix no longer than the cut.
            assert!(s.valid_len <= cut as u64);
            assert!(s.records.len() <= recs.len());
            for (got, want) in s.records.iter().zip(&recs) {
                assert_eq!(got, want);
            }
            // Every mid-record cut is flagged torn.
            if s.valid_len < cut as u64 {
                assert!(s.torn, "cut at {cut} not flagged torn");
            }
        }
    }

    #[test]
    fn crc_flip_in_final_record_is_torn_not_error() {
        let recs: Vec<WalRecord> = (0..2).map(rec).collect();
        let mut bytes = wal_bytes(&recs);
        let last = bytes.len() - 1;
        bytes[last] ^= 0xff;
        let s = scan(&bytes).unwrap();
        assert_eq!(s.records.len(), 1);
        assert!(s.torn);
    }

    #[test]
    fn bad_magic_is_corrupt() {
        let mut bytes = wal_bytes(&[rec(0)]);
        bytes[0] = b'X';
        match scan(&bytes) {
            Err(StoreError::Corrupt { path, offset, .. }) => {
                assert_eq!(path, WAL_FILE);
                assert_eq!(offset, 0);
            }
            other => panic!("expected corrupt, got {other:?}"),
        }
    }

    #[test]
    fn crc_valid_garbage_is_corrupt_with_offset() {
        // Hand-build a frame whose CRC matches a nonsense payload.
        let payload = vec![9u8; 16];
        let mut bytes = WAL_MAGIC.to_vec();
        bytes.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        bytes.extend_from_slice(&codec::crc32(&payload).to_le_bytes());
        bytes.extend_from_slice(&payload);
        match scan(&bytes) {
            Err(StoreError::Corrupt { offset, .. }) => {
                assert!(offset >= WAL_MAGIC.len() as u64 + 8);
            }
            other => panic!("expected corrupt, got {other:?}"),
        }
    }

    #[test]
    fn empty_and_magic_prefix_files_scan_empty() {
        assert!(scan(b"").unwrap().records.is_empty());
        let s = scan(&WAL_MAGIC[..3]).unwrap();
        assert!(s.records.is_empty());
        assert!(s.torn);
        assert!(scan(WAL_MAGIC).unwrap().records.is_empty());
    }
}
