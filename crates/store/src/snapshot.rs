//! Checkpointed catalog snapshots.
//!
//! A snapshot is the whole durable state — world table, every stored
//! U-relation, and the WAL position it covers — in one file, written
//! atomically: serialize to `snapshot.tmp`, fsync, rename over
//! `snapshot`, fsync the directory. A reader therefore sees either the
//! old snapshot or the new one, never a torn mix, and the WAL can be
//! truncated once the rename lands (records with `lsn < base_lsn` that
//! survive a crash between rename and truncate are skipped on replay).
//!
//! Unlike the WAL — whose tail is *expected* to tear in a crash — a
//! snapshot that fails validation was damaged at rest, so corruption
//! here is an error with the offset, not a silent fallback.

use std::collections::BTreeMap;

use maybms_urel::{URelation, Var, WorldTable};

use crate::codec::{self, Reader, Writer};
use crate::error::{Result, StoreError};
use crate::vfs::Vfs;

/// Snapshot file name inside the data directory.
pub const SNAPSHOT_FILE: &str = "snapshot";

/// Scratch name the snapshot is staged under before the atomic rename.
pub const SNAPSHOT_TMP: &str = "snapshot.tmp";

/// Magic bytes heading every snapshot file this build writes (version
/// byte last). Version 2 bodies encode tables via
/// [`codec::put_urelation_any`], preserving columnar-at-rest storage.
pub const SNAPSHOT_MAGIC: &[u8; 8] = b"MAYBSNP\x02";

/// Pre-columnar (row-image) snapshot magic; still accepted on load so
/// data directories written before the columnar refactor recover.
pub const SNAPSHOT_MAGIC_V1: &[u8; 8] = b"MAYBSNP\x01";

/// The catalog of stored tables, keyed by lowercased name.
pub type Catalog = BTreeMap<String, URelation>;

/// A loaded snapshot.
#[derive(Debug)]
pub struct Snapshot {
    /// WAL records with `lsn < base_lsn` are already folded in.
    pub base_lsn: u64,
    /// The world table at checkpoint time.
    pub wt: WorldTable,
    /// The stored tables at checkpoint time.
    pub tables: Catalog,
}

/// Serialize the full catalog state into a framed snapshot file image.
pub fn encode(base_lsn: u64, tables: &Catalog, wt: &WorldTable) -> Result<Vec<u8>> {
    let mut w = Writer::new();
    w.put_u64(base_lsn);
    let dists = all_dists(wt)?;
    codec::put_dists(&mut w, &dists);
    w.put_u32(tables.len() as u32);
    for (name, table) in tables {
        w.put_str(name);
        codec::put_urelation_any(&mut w, table);
    }
    let payload = w.finish();
    let mut out = Vec::with_capacity(payload.len() + 16);
    out.extend_from_slice(SNAPSHOT_MAGIC);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&codec::crc32(&payload).to_le_bytes());
    out.extend_from_slice(&payload);
    Ok(out)
}

/// Every distribution in the world table, in variable order.
pub fn all_dists(wt: &WorldTable) -> Result<Vec<Vec<f64>>> {
    (0..wt.num_vars())
        .map(|i| {
            wt.distribution(Var(i as u32)).map(<[f64]>::to_vec).map_err(|e| {
                StoreError::corrupt(SNAPSHOT_FILE, 0, format!("world table: {e}"))
            })
        })
        .collect()
}

/// Rebuild a world table from serialized distributions.
pub fn world_table_from_dists(dists: &[Vec<f64>], path: &str) -> Result<WorldTable> {
    let mut wt = WorldTable::new();
    for (i, d) in dists.iter().enumerate() {
        wt.new_var(d).map_err(|e| {
            StoreError::corrupt(path, 0, format!("variable x{i} distribution invalid: {e}"))
        })?;
    }
    Ok(wt)
}

/// Decode a snapshot file image.
pub fn decode(bytes: &[u8]) -> Result<Snapshot> {
    if bytes.len() < SNAPSHOT_MAGIC.len() + 8 {
        return Err(StoreError::corrupt(
            SNAPSHOT_FILE,
            0,
            format!("file too short ({} bytes) for a snapshot header", bytes.len()),
        ));
    }
    let magic = &bytes[..SNAPSHOT_MAGIC.len()];
    let v1 = magic == SNAPSHOT_MAGIC_V1;
    if !v1 && magic != SNAPSHOT_MAGIC {
        return Err(StoreError::corrupt(SNAPSHOT_FILE, 0, "bad snapshot magic"));
    }
    let hdr = SNAPSHOT_MAGIC.len();
    let len = u32::from_le_bytes(bytes[hdr..hdr + 4].try_into().expect("4 bytes")) as usize;
    let crc = u32::from_le_bytes(bytes[hdr + 4..hdr + 8].try_into().expect("4 bytes"));
    let body = &bytes[hdr + 8..];
    if body.len() != len {
        return Err(StoreError::corrupt(
            SNAPSHOT_FILE,
            (hdr + 8) as u64,
            format!("payload length {} does not match header {len}", body.len()),
        ));
    }
    if codec::crc32(body) != crc {
        return Err(StoreError::corrupt(
            SNAPSHOT_FILE,
            (hdr + 8) as u64,
            "snapshot checksum mismatch",
        ));
    }
    let base = (hdr + 8) as u64;
    let mut r = Reader::new(body);
    let mk_err =
        |e: codec::CodecError| StoreError::corrupt(SNAPSHOT_FILE, base + e.offset, e.reason);
    let base_lsn = r.u64().map_err(mk_err)?;
    let dists = codec::get_dists(&mut r).map_err(mk_err)?;
    let wt = world_table_from_dists(&dists, SNAPSHOT_FILE)?;
    let ntables = r.u32().map_err(mk_err)? as usize;
    let mut tables = Catalog::new();
    for _ in 0..ntables {
        let name = r.str().map_err(mk_err)?;
        let table = if v1 {
            codec::get_urelation(&mut r).map_err(mk_err)?
        } else {
            codec::get_urelation_any(&mut r).map_err(mk_err)?
        };
        tables.insert(name, table);
    }
    if !r.is_exhausted() {
        return Err(StoreError::corrupt(
            SNAPSHOT_FILE,
            base + r.offset(),
            "trailing bytes after snapshot payload",
        ));
    }
    Ok(Snapshot { base_lsn, wt, tables })
}

/// Write a snapshot atomically: stage under [`SNAPSHOT_TMP`], fsync,
/// rename over [`SNAPSHOT_FILE`].
pub fn write(vfs: &dyn Vfs, base_lsn: u64, tables: &Catalog, wt: &WorldTable) -> Result<()> {
    let image = encode(base_lsn, tables, wt)?;
    let mut f = vfs.create(SNAPSHOT_TMP)?;
    f.append(&image)?;
    f.sync()?;
    drop(f);
    vfs.rename(SNAPSHOT_TMP, SNAPSHOT_FILE)
}

/// Load the snapshot, if one exists. `Ok(None)` on a fresh directory.
pub fn load(vfs: &dyn Vfs) -> Result<Option<Snapshot>> {
    if !vfs.exists(SNAPSHOT_FILE)? {
        return Ok(None);
    }
    let bytes = vfs.read(SNAPSHOT_FILE)?;
    decode(&bytes).map(Some)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vfs::MemVfs;
    use maybms_engine::{rel, DataType};
    use maybms_urel::Wsd;

    fn sample_state() -> (Catalog, WorldTable) {
        let mut wt = WorldTable::new();
        let x = wt.new_var(&[0.8, 0.2]).unwrap();
        wt.new_var(&[0.5, 0.5]).unwrap();
        let base = rel(
            &[("player", DataType::Text), ("pts", DataType::Int)],
            vec![vec!["Bryant".into(), 40.into()], vec!["Duncan".into(), 25.into()]],
        );
        let mut u = URelation::from_certain(&base);
        u.tuples_mut()[0].wsd = Wsd::of(x, 1);
        let mut tables = Catalog::new();
        tables.insert("games".into(), u);
        (tables, wt)
    }

    #[test]
    fn roundtrip() {
        let (tables, wt) = sample_state();
        let vfs = MemVfs::new();
        write(&vfs, 42, &tables, &wt).unwrap();
        let snap = load(&vfs).unwrap().unwrap();
        assert_eq!(snap.base_lsn, 42);
        assert_eq!(snap.tables, tables);
        assert_eq!(snap.wt.num_vars(), 2);
        assert_eq!(snap.wt.distribution(Var(0)).unwrap(), &[0.8, 0.2]);
    }

    #[test]
    fn columnar_table_roundtrips_columnar() {
        let (mut tables, wt) = sample_state();
        let compacted = tables["games"].compact();
        assert!(compacted.is_columnar());
        tables.insert("games".into(), compacted);
        let vfs = MemVfs::new();
        write(&vfs, 3, &tables, &wt).unwrap();
        let snap = load(&vfs).unwrap().unwrap();
        assert_eq!(snap.tables, tables);
        // Representation survives: no re-pivot needed after recovery.
        assert!(snap.tables["games"].is_columnar());
    }

    #[test]
    fn pre_columnar_v1_snapshot_still_loads() {
        let (tables, wt) = sample_state();
        // Hand-build a version-1 image exactly as the pre-columnar code
        // wrote it: row-image tables under the \x01 magic.
        let mut w = Writer::new();
        w.put_u64(9);
        codec::put_dists(&mut w, &all_dists(&wt).unwrap());
        w.put_u32(tables.len() as u32);
        for (name, table) in &tables {
            w.put_str(name);
            codec::put_urelation(&mut w, table);
        }
        let payload = w.finish();
        let mut image = Vec::with_capacity(payload.len() + 16);
        image.extend_from_slice(SNAPSHOT_MAGIC_V1);
        image.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        image.extend_from_slice(&codec::crc32(&payload).to_le_bytes());
        image.extend_from_slice(&payload);
        let snap = decode(&image).unwrap();
        assert_eq!(snap.base_lsn, 9);
        assert_eq!(snap.tables, tables);
    }

    #[test]
    fn missing_snapshot_is_none() {
        let vfs = MemVfs::new();
        assert!(load(&vfs).unwrap().is_none());
    }

    #[test]
    fn bit_flip_is_reported_with_offset() {
        let (tables, wt) = sample_state();
        let mut image = encode(7, &tables, &wt).unwrap();
        let mid = image.len() / 2;
        image[mid] ^= 0x40;
        match decode(&image) {
            Err(StoreError::Corrupt { path, .. }) => assert_eq!(path, SNAPSHOT_FILE),
            other => panic!("expected corrupt, got {other:?}"),
        }
    }

    #[test]
    fn truncated_snapshot_is_corrupt_not_panic() {
        let (tables, wt) = sample_state();
        let image = encode(7, &tables, &wt).unwrap();
        for cut in 0..image.len() {
            assert!(decode(&image[..cut]).is_err(), "cut at {cut} decoded");
        }
    }

    #[test]
    fn write_is_atomic_under_crash() {
        let (tables, wt) = sample_state();
        let vfs = MemVfs::new();
        write(&vfs, 1, &tables, &wt).unwrap();
        // Stage a second snapshot but crash before its rename: create
        // the tmp file with half an image, never synced.
        let image = encode(2, &tables, &wt).unwrap();
        let mut f = vfs.create(SNAPSHOT_TMP).unwrap();
        f.append(&image[..image.len() / 2]).unwrap();
        drop(f);
        vfs.crash();
        let snap = load(&vfs).unwrap().unwrap();
        assert_eq!(snap.base_lsn, 1); // old snapshot intact
        assert!(!vfs.exists(SNAPSHOT_TMP).unwrap()); // tmp died with the crash
    }
}
