//! The durable store: ties [`crate::wal`] and [`crate::snapshot`]
//! together behind one object with three verbs — recover on open, log a
//! mutation, checkpoint on demand.
//!
//! # Protocol
//!
//! * **Log.** Each catalog mutation serializes as one [`Op`] plus the
//!   world-table extension it depends on, framed, appended to the WAL,
//!   and fsynced *before* the caller installs the change in memory. A
//!   crash therefore lands on a record boundary: either the whole
//!   statement is durable or none of it is.
//! * **Checkpoint.** The entire state goes to `snapshot.tmp` → fsync →
//!   atomic rename → the WAL is reset to empty. A crash between rename
//!   and reset leaves stale records (`lsn < base_lsn`) in the WAL;
//!   recovery skips them by LSN.
//! * **Recover.** Load the snapshot (if any), replay the WAL tail in
//!   order, stop cleanly at the first torn record and truncate it away.
//!   Recovery is idempotent: recovering twice yields the same state and
//!   the same files as recovering once.
//! * **Poisoning.** Once an append or checkpoint fails, the in-memory
//!   catalog may be ahead of the durable state; the store refuses
//!   further writes ([`StoreError::Poisoned`]) until reopened, so the
//!   two cannot silently diverge.

use std::sync::Arc;

use maybms_urel::{Var, WorldTable};

use crate::codec::{self, Writer};
use crate::error::{Result, StoreError};
use crate::snapshot::{self, Catalog};
use crate::vfs::{Vfs, VfsFile};
use crate::wal::{self, Op, WalRecord, WAL_FILE, WAL_MAGIC};

/// Apply one logged operation to a catalog. Shared by live execution
/// (after the WAL append succeeds) and recovery replay, so the two can
/// never disagree about what an [`Op`] means. Errors are descriptive
/// strings; callers wrap them with context (file offset on replay).
pub fn apply_op(tables: &mut Catalog, op: Op) -> std::result::Result<(), String> {
    match op {
        Op::CreateTable { name, schema } => {
            if tables.contains_key(&name) {
                return Err(format!("create table {name}: already exists"));
            }
            tables.insert(
                name,
                maybms_urel::URelation::empty(Arc::new(schema)),
            );
        }
        Op::PutTable { name, table } => {
            if tables.contains_key(&name) {
                return Err(format!("put table {name}: already exists"));
            }
            tables.insert(name, table);
        }
        Op::InsertRows { table, rows } => {
            let t = tables
                .get_mut(&table)
                .ok_or_else(|| format!("insert into {table}: no such table"))?;
            t.tuples_mut().extend(rows);
        }
        Op::ReplaceRows { table, rows } => {
            let t = tables
                .get_mut(&table)
                .ok_or_else(|| format!("replace rows of {table}: no such table"))?;
            *t.tuples_mut() = rows;
        }
        Op::DropTable { name } => {
            if tables.remove(&name).is_none() {
                return Err(format!("drop table {name}: no such table"));
            }
        }
    }
    Ok(())
}

/// Extend a world table per a record's world extension. Idempotent:
/// variables below the current count are assumed already present
/// (recovery re-applying a snapshot-covered extension), and a gap below
/// `first` is padded with certain (`[1.0]`) variables — those ids were
/// burnt by query side effects that never became durable, and nothing
/// durable references them, but later ids must line up exactly.
fn apply_world_ext(
    wt: &mut WorldTable,
    first: u32,
    dists: &[Vec<f64>],
) -> std::result::Result<(), String> {
    while wt.num_vars() < first as usize {
        wt.new_var(&[1.0]).map_err(|e| format!("world-table padding: {e}"))?;
    }
    for (i, d) in dists.iter().enumerate() {
        let id = first as usize + i;
        if id < wt.num_vars() {
            continue; // already durable (snapshot covered it)
        }
        wt.new_var(d).map_err(|e| format!("world variable x{id}: {e}"))?;
    }
    Ok(())
}

/// State reconstructed by [`Store::open`].
#[derive(Debug)]
pub struct Recovered {
    /// The stored tables.
    pub tables: Catalog,
    /// The world table (exactly the durable variables).
    pub wt: WorldTable,
    /// How many WAL records were replayed on top of the snapshot.
    pub replayed: usize,
    /// Whether a torn WAL tail was truncated away.
    pub truncated_tail: bool,
}

/// Durability status, for banners and monitoring.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoreStatus {
    /// Where the data lives (directory path, or `<memory>`).
    pub location: String,
    /// WAL bytes appended since the last checkpoint (replay debt).
    pub wal_bytes: u64,
    /// Next log sequence number.
    pub next_lsn: u64,
    /// Whether a snapshot file exists.
    pub has_snapshot: bool,
    /// Whether the store is refusing writes after an I/O failure.
    pub poisoned: bool,
}

/// A durable catalog store. See the module docs for the protocol.
pub struct Store {
    vfs: Arc<dyn Vfs>,
    /// Append handle on the WAL (recreated on checkpoint).
    wal_file: Box<dyn VfsFile>,
    next_lsn: u64,
    /// World-table variables already durable (snapshot + logged exts).
    durable_vars: usize,
    wal_bytes: u64,
    has_snapshot: bool,
    poisoned: Option<String>,
}

impl std::fmt::Debug for Store {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Store")
            .field("location", &self.vfs.location())
            .field("next_lsn", &self.next_lsn)
            .field("durable_vars", &self.durable_vars)
            .field("wal_bytes", &self.wal_bytes)
            .field("poisoned", &self.poisoned)
            .finish()
    }
}

impl Store {
    /// Open a data directory through `vfs`, running crash recovery:
    /// load the latest snapshot, replay the WAL tail, truncate any torn
    /// record. Returns the store plus the recovered catalog state.
    pub fn open(vfs: Arc<dyn Vfs>) -> Result<(Store, Recovered)> {
        let mut span = maybms_obs::trace::span("recovery");
        // A stale staging file is volatile garbage from a crashed
        // checkpoint; clear it so it can never shadow anything.
        if vfs.exists(snapshot::SNAPSHOT_TMP)? {
            let _ = vfs.remove(snapshot::SNAPSHOT_TMP);
        }
        let (mut base_lsn, mut wt, mut tables, has_snapshot) =
            match snapshot::load(vfs.as_ref())? {
                Some(s) => (s.base_lsn, s.wt, s.tables, true),
                None => (0, WorldTable::new(), Catalog::new(), false),
            };
        let mut next_lsn = base_lsn;
        let mut replayed = 0usize;
        let mut truncated_tail = false;
        let wal_file = if vfs.exists(WAL_FILE)? {
            let bytes = vfs.read(WAL_FILE)?;
            let scan = wal::scan(&bytes)?;
            let mut stale = 0usize;
            let mut offset = WAL_MAGIC.len() as u64;
            for rec in scan.records {
                let frame_len = 8 + wal::encode_record(&rec).len() as u64;
                if rec.lsn < base_lsn {
                    // Folded into the snapshot already (crash between
                    // checkpoint rename and WAL reset).
                    stale += 1;
                } else {
                    if rec.lsn != next_lsn {
                        return Err(StoreError::corrupt(
                            WAL_FILE,
                            offset,
                            format!("LSN gap: record {} where {next_lsn} expected", rec.lsn),
                        ));
                    }
                    if let Some((first, dists)) = &rec.world_ext {
                        apply_world_ext(&mut wt, *first, dists)
                            .map_err(|e| StoreError::corrupt(WAL_FILE, offset, e))?;
                    }
                    apply_op(&mut tables, rec.op)
                        .map_err(|e| StoreError::corrupt(WAL_FILE, offset, e))?;
                    next_lsn = rec.lsn + 1;
                    replayed += 1;
                }
                offset += frame_len;
            }
            if stale > 0 && replayed == 0 {
                // Every record predates the snapshot: finish the
                // interrupted checkpoint by resetting the WAL.
                base_lsn = next_lsn;
                let _ = base_lsn; // next_lsn already correct
                Self::retry_transient(|| Self::reset_wal(vfs.as_ref()))?
            } else {
                if scan.valid_len < bytes.len() as u64 {
                    // Chop the torn tail so appends resume on a clean
                    // record boundary.
                    Self::retry_transient(|| {
                        vfs.truncate(WAL_FILE, scan.valid_len.max(WAL_MAGIC.len() as u64))
                    })?;
                    truncated_tail = true;
                }
                if scan.valid_len < WAL_MAGIC.len() as u64 {
                    // The header itself tore; rewrite it.
                    Self::retry_transient(|| Self::reset_wal(vfs.as_ref()))?
                } else {
                    vfs.open_append(WAL_FILE)?
                }
            }
        } else {
            // A fresh directory's first WAL write deserves the same
            // transient-retry budget as any later append: a blip here
            // must not fail the whole open.
            Self::retry_transient(|| Self::reset_wal(vfs.as_ref()))?
        };
        let wal_bytes =
            vfs.read(WAL_FILE)?.len().saturating_sub(WAL_MAGIC.len()) as u64;
        let m = maybms_obs::metrics();
        m.recovery_replayed.set(replayed as u64);
        m.recovery_truncated_tail.set(truncated_tail as u64);
        span.attr("replayed", replayed);
        span.attr("truncated_tail", truncated_tail as u64);
        span.attr("has_snapshot", has_snapshot as u64);
        let durable_vars = wt.num_vars();
        let store = Store {
            vfs,
            wal_file,
            next_lsn,
            durable_vars,
            wal_bytes,
            has_snapshot,
            poisoned: None,
        };
        Ok((store, Recovered { tables, wt, replayed, truncated_tail }))
    }

    /// Create a fresh WAL (header only, fsynced) and return its handle.
    fn reset_wal(vfs: &dyn Vfs) -> Result<Box<dyn VfsFile>> {
        let mut f = vfs.create(WAL_FILE)?;
        f.append(WAL_MAGIC)?;
        f.sync()?;
        Ok(f)
    }

    /// The VFS this store writes through — `\reopen` re-runs recovery
    /// over it to resurrect a poisoned store in-process.
    pub fn vfs(&self) -> Arc<dyn Vfs> {
        self.vfs.clone()
    }

    fn check_poisoned(&self) -> Result<()> {
        match &self.poisoned {
            Some(cause) => Err(StoreError::Poisoned { cause: cause.clone() }),
            None => Ok(()),
        }
    }

    /// Run `f`, retrying *transient* failures with bounded, jitterless,
    /// deterministic exponential backoff (1/2/4/8 ms). Persistent
    /// failures — and transient ones that outlive the retry budget —
    /// surface for the caller to poison on. Each retry counts in the
    /// `maybms_store_retries_total` metric.
    fn retry_transient<T>(mut f: impl FnMut() -> Result<T>) -> Result<T> {
        const BACKOFF_MS: [u64; 4] = [1, 2, 4, 8];
        let mut attempt = 0usize;
        loop {
            match f() {
                Ok(v) => return Ok(v),
                Err(e) if e.is_transient() && attempt < BACKOFF_MS.len() => {
                    std::thread::sleep(std::time::Duration::from_millis(
                        BACKOFF_MS[attempt],
                    ));
                    maybms_obs::metrics().store_retries.inc();
                    attempt += 1;
                }
                Err(e) => return Err(e),
            }
        }
    }

    fn poison<T>(&mut self, r: Result<T>) -> Result<T> {
        if let Err(e) = &r {
            self.poisoned = Some(e.to_string());
        }
        r
    }

    /// Append one mutation to the WAL and fsync it. `wt` is the *live*
    /// world table: any variables beyond the durable count are logged
    /// with the record, so rows referencing them commit atomically.
    /// Call this *before* installing the mutation in memory.
    pub fn log(&mut self, op: &Op, wt: &WorldTable) -> Result<()> {
        self.check_poisoned()?;
        let world_ext = if wt.num_vars() > self.durable_vars {
            let dists = (self.durable_vars..wt.num_vars())
                .map(|i| {
                    wt.distribution(Var(i as u32)).map(<[f64]>::to_vec).map_err(|e| {
                        StoreError::corrupt(WAL_FILE, 0, format!("world table: {e}"))
                    })
                })
                .collect::<Result<Vec<_>>>()?;
            Some((self.durable_vars as u32, dists))
        } else {
            None
        };
        let rec = WalRecord { lsn: self.next_lsn, world_ext, op: op.clone() };
        let frame = wal::frame_record(&rec);
        let mut span = maybms_obs::trace::span("wal_append");
        span.attr("bytes", frame.len());
        let t0 = std::time::Instant::now();
        // Transient append/fsync failures retry after truncating the WAL
        // back to the pre-append boundary, so a half-written frame from a
        // failed attempt can never linger mid-log. Only a persistent
        // failure (or an exhausted retry budget) poisons the store.
        let pre_len = WAL_MAGIC.len() as u64 + self.wal_bytes;
        let mut first = true;
        let vfs = self.vfs.clone();
        let wal_file = &mut self.wal_file;
        let r = Self::retry_transient(|| {
            if !first {
                vfs.truncate(WAL_FILE, pre_len)?;
            }
            first = false;
            let _fsync = maybms_obs::trace::span("wal_fsync");
            wal_file.append(&frame)?;
            wal_file.sync()
        });
        self.poison(r)?;
        let m = maybms_obs::metrics();
        m.wal_appends.inc();
        m.wal_fsync_seconds.observe(t0.elapsed());
        span.attr("lsn", self.next_lsn);
        self.next_lsn += 1;
        self.durable_vars = wt.num_vars();
        self.wal_bytes += frame.len() as u64;
        Ok(())
    }

    /// Write an atomic snapshot of the full state and reset the WAL.
    pub fn checkpoint(&mut self, tables: &Catalog, wt: &WorldTable) -> Result<()> {
        self.check_poisoned()?;
        let mut span = maybms_obs::trace::span("checkpoint");
        span.attr("tables", tables.len());
        let t0 = std::time::Instant::now();
        // Both checkpoint halves are idempotent, so transient failures
        // retry wholesale: rewriting `snapshot.tmp` or the WAL header
        // from scratch is always safe.
        let r = Self::retry_transient(|| {
            snapshot::write(self.vfs.as_ref(), self.next_lsn, tables, wt)
        });
        self.poison(r)?;
        let r = Self::retry_transient(|| Self::reset_wal(self.vfs.as_ref()));
        self.wal_file = self.poison(r)?;
        self.durable_vars = wt.num_vars();
        self.wal_bytes = 0;
        self.has_snapshot = true;
        let m = maybms_obs::metrics();
        m.checkpoints.inc();
        m.checkpoint_seconds.observe(t0.elapsed());
        Ok(())
    }

    /// Current durability status.
    pub fn status(&self) -> StoreStatus {
        StoreStatus {
            location: self.vfs.location(),
            wal_bytes: self.wal_bytes,
            next_lsn: self.next_lsn,
            has_snapshot: self.has_snapshot,
            poisoned: self.poisoned.is_some(),
        }
    }
}

/// A canonical byte fingerprint of the *observable* catalog state: every
/// stored table (schema, rows, WSDs) plus the distribution of every
/// world-table variable some stored WSD references. Two databases with
/// equal fingerprints answer every query identically — including exact
/// confidence computation — so the crash-matrix tests compare these.
pub fn fingerprint(tables: &Catalog, wt: &WorldTable) -> Vec<u8> {
    let mut w = Writer::new();
    w.put_u32(tables.len() as u32);
    let mut referenced: Vec<u32> = Vec::new();
    for (name, table) in tables {
        w.put_str(name);
        codec::put_urelation(&mut w, table);
        for t in table.tuples() {
            referenced.extend(t.wsd.vars().map(|v| v.0));
        }
    }
    referenced.sort_unstable();
    referenced.dedup();
    w.put_u32(referenced.len() as u32);
    for v in referenced {
        w.put_u32(v);
        match wt.distribution(Var(v)) {
            Ok(d) => {
                w.put_u32(d.len() as u32);
                for &p in d {
                    w.put_f64(p);
                }
            }
            // A dangling variable is itself part of the observable
            // state; encode it distinctly rather than failing.
            Err(_) => w.put_u32(u32::MAX),
        }
    }
    w.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vfs::MemVfs;
    use maybms_engine::{DataType, Schema, Tuple, Value};
    use maybms_urel::{URelation, UTuple, Wsd};

    fn row(vals: Vec<Value>) -> UTuple {
        UTuple::certain(Tuple::new(vals))
    }

    fn open_mem(vfs: &MemVfs) -> (Store, Recovered) {
        Store::open(Arc::new(vfs.clone())).unwrap()
    }

    #[test]
    fn fresh_open_is_empty_wal_only() {
        let vfs = MemVfs::new();
        let (store, rec) = open_mem(&vfs);
        assert!(rec.tables.is_empty());
        assert_eq!(rec.wt.num_vars(), 0);
        assert_eq!(store.status().wal_bytes, 0);
        assert!(!store.status().has_snapshot);
    }

    #[test]
    fn log_replay_roundtrip() {
        let vfs = MemVfs::new();
        let wt = WorldTable::new();
        let (mut store, mut rec) = open_mem(&vfs);
        let ops = vec![
            Op::CreateTable {
                name: "t".into(),
                schema: Schema::from_pairs(&[("a", DataType::Int)]),
            },
            Op::InsertRows {
                table: "t".into(),
                rows: vec![row(vec![Value::Int(1)]), row(vec![Value::Int(2)])],
            },
            Op::ReplaceRows { table: "t".into(), rows: vec![row(vec![Value::Int(9)])] },
        ];
        for op in &ops {
            store.log(op, &wt).unwrap();
            apply_op(&mut rec.tables, op.clone()).unwrap();
        }
        drop(store);
        let (_, rec2) = open_mem(&vfs);
        assert_eq!(rec2.replayed, 3);
        assert_eq!(rec2.tables, rec.tables);
        assert_eq!(fingerprint(&rec2.tables, &rec2.wt), fingerprint(&rec.tables, &wt));
    }

    #[test]
    fn unsynced_record_dies_with_crash() {
        let vfs = MemVfs::new();
        let wt = WorldTable::new();
        let (mut store, _) = open_mem(&vfs);
        store
            .log(
                &Op::CreateTable {
                    name: "t".into(),
                    schema: Schema::from_pairs(&[("a", DataType::Int)]),
                },
                &wt,
            )
            .unwrap();
        // Tear the tail: append garbage straight to the file, unsynced.
        let mut f = vfs.open_append(WAL_FILE).unwrap();
        f.append(&[1, 2, 3]).unwrap();
        drop(f);
        drop(store);
        vfs.crash();
        let (_, rec) = open_mem(&vfs);
        assert_eq!(rec.replayed, 1);
        assert!(rec.tables.contains_key("t"));
    }

    #[test]
    fn world_ext_commits_with_rows() {
        let vfs = MemVfs::new();
        let mut wt = WorldTable::new();
        let (mut store, _) = open_mem(&vfs);
        // Query side effect burnt var 0 without storing anything.
        wt.new_var(&[0.3, 0.7]).unwrap();
        // Now a CTAS stores rows referencing var 1.
        let x = wt.new_var(&[0.5, 0.5]).unwrap();
        let schema = Arc::new(Schema::from_pairs(&[("a", DataType::Int)]));
        let mut table = URelation::empty(schema);
        table
            .tuples_mut()
            .push(UTuple::new(Tuple::new(vec![Value::Int(1)]), Wsd::of(x, 1)));
        let op = Op::PutTable { name: "picks".into(), table };
        store.log(&op, &wt).unwrap();
        drop(store);
        let (_, rec) = open_mem(&vfs);
        // Both variables durable (the ext covers everything non-durable).
        assert_eq!(rec.wt.num_vars(), 2);
        assert_eq!(rec.wt.distribution(Var(1)).unwrap(), &[0.5, 0.5]);
        assert_eq!(rec.tables["picks"].tuples()[0].wsd, Wsd::of(x, 1));
    }

    #[test]
    fn checkpoint_then_snapshot_only_restart() {
        let vfs = MemVfs::new();
        let mut wt = WorldTable::new();
        wt.new_var(&[0.25, 0.75]).unwrap();
        let (mut store, mut rec) = open_mem(&vfs);
        let op = Op::CreateTable {
            name: "t".into(),
            schema: Schema::from_pairs(&[("a", DataType::Int)]),
        };
        store.log(&op, &wt).unwrap();
        apply_op(&mut rec.tables, op).unwrap();
        store.checkpoint(&rec.tables, &wt).unwrap();
        assert_eq!(store.status().wal_bytes, 0);
        drop(store);
        let (store2, rec2) = open_mem(&vfs);
        assert_eq!(rec2.replayed, 0); // snapshot-only: nothing to replay
        assert!(store2.status().has_snapshot);
        assert_eq!(rec2.tables, rec.tables);
        assert_eq!(rec2.wt.num_vars(), 1);
        assert_eq!(rec2.wt.distribution(Var(0)).unwrap(), &[0.25, 0.75]);
    }

    #[test]
    fn stale_records_after_interrupted_checkpoint_are_skipped() {
        let vfs = MemVfs::new();
        let wt = WorldTable::new();
        let (mut store, mut rec) = open_mem(&vfs);
        let op = Op::CreateTable {
            name: "t".into(),
            schema: Schema::from_pairs(&[("a", DataType::Int)]),
        };
        store.log(&op, &wt).unwrap();
        apply_op(&mut rec.tables, op).unwrap();
        // Simulate a checkpoint that crashed between the snapshot
        // rename and the WAL reset: write the snapshot by hand, leave
        // the WAL untouched.
        snapshot::write(&vfs, store.next_lsn, &rec.tables, &wt).unwrap();
        drop(store);
        vfs.crash();
        let (_, rec2) = open_mem(&vfs);
        assert_eq!(rec2.replayed, 0); // stale record skipped by LSN
        assert_eq!(rec2.tables, rec.tables);
        // And the interrupted checkpoint was finished: WAL reset.
        assert_eq!(vfs.read(WAL_FILE).unwrap(), WAL_MAGIC);
    }

    #[test]
    fn double_recovery_is_identical_including_files() {
        let vfs = MemVfs::new();
        let wt = WorldTable::new();
        let (mut store, _) = open_mem(&vfs);
        for i in 0..3 {
            store
                .log(
                    &Op::CreateTable {
                        name: format!("t{i}"),
                        schema: Schema::from_pairs(&[("a", DataType::Int)]),
                    },
                    &wt,
                )
                .unwrap();
        }
        // Tear the last record's bytes.
        let bytes = vfs.read(WAL_FILE).unwrap();
        vfs.truncate(WAL_FILE, bytes.len() as u64 - 3).unwrap();
        drop(store);
        vfs.crash();
        let (_, rec1) = open_mem(&vfs);
        assert!(rec1.truncated_tail);
        let wal_after_1 = vfs.read(WAL_FILE).unwrap();
        let (_, rec2) = open_mem(&vfs);
        assert!(!rec2.truncated_tail); // second recovery finds a clean log
        assert_eq!(vfs.read(WAL_FILE).unwrap(), wal_after_1);
        assert_eq!(rec1.tables, rec2.tables);
        assert_eq!(rec1.replayed, rec2.replayed);
    }

    #[test]
    fn poisoned_store_refuses_further_writes() {
        use crate::vfs::{FaultMode, FaultVfs};
        let mem = MemVfs::new();
        let fault = FaultVfs::new(mem.clone(), 6, FaultMode::FailStop);
        let wt = WorldTable::new();
        let (mut store, _) = Store::open(Arc::new(fault)).unwrap(); // ops 1-3
        let op = Op::CreateTable {
            name: "t".into(),
            schema: Schema::from_pairs(&[("a", DataType::Int)]),
        };
        store.log(&op, &wt).unwrap(); // ops 4-5
        let err = store.log(&op, &wt).unwrap_err(); // op 6 injected
        assert!(matches!(err, StoreError::Io { .. }), "{err}");
        let err = store.log(&op, &wt).unwrap_err();
        assert!(matches!(err, StoreError::Poisoned { .. }), "{err}");
        let err = store.checkpoint(&Catalog::new(), &wt).unwrap_err();
        assert!(matches!(err, StoreError::Poisoned { .. }), "{err}");
    }

    #[test]
    fn wal_and_checkpoint_metrics_accumulate() {
        let m = maybms_obs::metrics();
        let appends = m.wal_appends.get();
        let fsyncs = m.wal_fsync_seconds.count();
        let checkpoints = m.checkpoints.get();
        let vfs = MemVfs::new();
        let wt = WorldTable::new();
        let (mut store, rec) = open_mem(&vfs);
        store
            .log(
                &Op::CreateTable {
                    name: "t".into(),
                    schema: Schema::from_pairs(&[("a", DataType::Int)]),
                },
                &wt,
            )
            .unwrap();
        store.checkpoint(&rec.tables, &wt).unwrap();
        assert!(m.wal_appends.get() > appends);
        assert!(m.wal_fsync_seconds.count() > fsyncs);
        assert!(m.checkpoints.get() > checkpoints);
    }

    #[test]
    fn apply_op_reports_missing_tables() {
        let mut tables = Catalog::new();
        assert!(apply_op(&mut tables, Op::DropTable { name: "x".into() }).is_err());
        assert!(apply_op(
            &mut tables,
            Op::InsertRows { table: "x".into(), rows: vec![] }
        )
        .is_err());
    }
}
