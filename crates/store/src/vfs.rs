//! The virtual file system the store writes through.
//!
//! All durable I/O — WAL appends, fsyncs, snapshot writes, the atomic
//! rename — goes through the [`Vfs`] trait, so the same WAL/checkpoint/
//! recovery code runs against three backends:
//!
//! * [`StdVfs`] — real files rooted in a data directory (`std::fs`);
//! * [`MemVfs`] — an in-memory filesystem with *crash semantics*: every
//!   file tracks a durable image (what survives a crash) separately from
//!   its current content, and only `fsync` promotes current → durable.
//!   [`MemVfs::crash`] reverts to the durable view, which is what the
//!   crash-matrix tests simulate a power cut with;
//! * [`FaultVfs`] — wraps a `MemVfs` and fails (or tears) the Nth
//!   mutating operation, after which every operation fails: the process
//!   is "dead" from that point, and the harness crashes + recovers.
//!
//! Paths are flat file names relative to the data directory (the store
//! uses only `wal`, `snapshot`, and `snapshot.tmp`).
//!
//! Durability model: `append` is volatile until `sync`; `rename` is
//! atomic and immediately durable (the journalling-filesystem guarantee
//! `StdVfs` approximates by fsyncing the parent directory). Recovery
//! never depends on the content of an unsynced write.

use std::collections::HashMap;
use std::fmt;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

use crate::error::{Result, StoreError};

/// Build a (persistent) I/O error for `path`/`op` from a message.
fn io_err(path: &str, op: &'static str, message: impl ToString) -> StoreError {
    StoreError::Io {
        path: path.to_string(),
        op,
        message: message.to_string(),
        transient: false,
    }
}

/// Build a *transient* I/O error — the store retries these with bounded
/// backoff before poisoning.
fn io_transient(path: &str, op: &'static str, message: impl ToString) -> StoreError {
    StoreError::Io {
        path: path.to_string(),
        op,
        message: message.to_string(),
        transient: true,
    }
}

/// An open file handle (append-only; the store never seeks).
pub trait VfsFile: Send {
    /// Append bytes at the end of the file. Volatile until [`VfsFile::sync`].
    fn append(&mut self, data: &[u8]) -> Result<()>;
    /// Make everything appended so far durable (fsync).
    fn sync(&mut self) -> Result<()>;
}

/// A minimal filesystem abstraction; see the module docs for semantics.
pub trait Vfs: Send + Sync + fmt::Debug {
    /// Read a whole file.
    fn read(&self, path: &str) -> Result<Vec<u8>>;
    /// Whether a file exists.
    fn exists(&self, path: &str) -> Result<bool>;
    /// Create (or truncate) a file and return an append handle.
    fn create(&self, path: &str) -> Result<Box<dyn VfsFile>>;
    /// Open an existing file for appending.
    fn open_append(&self, path: &str) -> Result<Box<dyn VfsFile>>;
    /// Truncate a file to `len` bytes (used to chop a torn WAL tail);
    /// durable once the next `sync` on an append handle completes — the
    /// implementations here make it durable immediately, which is the
    /// conservative direction for recovery (the tail is already gone).
    fn truncate(&self, path: &str, len: u64) -> Result<()>;
    /// Atomically replace `to` with `from` (both content and existence).
    fn rename(&self, from: &str, to: &str) -> Result<()>;
    /// Remove a file (used for stale `snapshot.tmp` leftovers).
    fn remove(&self, path: &str) -> Result<()>;
    /// Human-readable location for banners and error messages.
    fn location(&self) -> String;
}

// ---------------------------------------------------------------------
// StdVfs — real files under a data directory.
// ---------------------------------------------------------------------

/// Real-filesystem backend rooted at a data directory.
#[derive(Debug)]
pub struct StdVfs {
    root: PathBuf,
}

impl StdVfs {
    /// Open (creating if needed) a data directory.
    pub fn open(root: impl AsRef<Path>) -> Result<StdVfs> {
        let root = root.as_ref().to_path_buf();
        std::fs::create_dir_all(&root)
            .map_err(|e| io_err(&root.display().to_string(), "create-dir", e))?;
        Ok(StdVfs { root })
    }

    fn path(&self, name: &str) -> PathBuf {
        self.root.join(name)
    }

    /// Fsync the data directory itself so renames/creates are durable.
    fn sync_dir(&self) -> Result<()> {
        let dir = std::fs::File::open(&self.root)
            .map_err(|e| io_err(&self.root.display().to_string(), "open-dir", e))?;
        dir.sync_all()
            .map_err(|e| io_err(&self.root.display().to_string(), "fsync-dir", e))
    }
}

/// Append handle over a real file.
struct StdFile {
    file: std::fs::File,
    path: String,
}

impl VfsFile for StdFile {
    fn append(&mut self, data: &[u8]) -> Result<()> {
        // Handles from `create` carry a plain cursor, and `truncate` may
        // shrink the file underneath one (the transient-retry path does
        // exactly that); writing at a stale cursor past EOF would punch a
        // zero-filled hole. Append means append: seek to the real end
        // first (a no-op for O_APPEND handles from `open_append`).
        use std::io::Seek as _;
        self.file
            .seek(std::io::SeekFrom::End(0))
            .map_err(|e| io_err(&self.path, "append-seek", e))?;
        self.file.write_all(data).map_err(|e| io_err(&self.path, "append", e))
    }

    fn sync(&mut self) -> Result<()> {
        self.file.sync_all().map_err(|e| io_err(&self.path, "fsync", e))
    }
}

impl Vfs for StdVfs {
    fn read(&self, path: &str) -> Result<Vec<u8>> {
        std::fs::read(self.path(path)).map_err(|e| io_err(path, "read", e))
    }

    fn exists(&self, path: &str) -> Result<bool> {
        Ok(self.path(path).exists())
    }

    fn create(&self, path: &str) -> Result<Box<dyn VfsFile>> {
        let file = std::fs::File::create(self.path(path))
            .map_err(|e| io_err(path, "create", e))?;
        self.sync_dir()?;
        Ok(Box::new(StdFile { file, path: path.to_string() }))
    }

    fn open_append(&self, path: &str) -> Result<Box<dyn VfsFile>> {
        let file = std::fs::OpenOptions::new()
            .append(true)
            .open(self.path(path))
            .map_err(|e| io_err(path, "open-append", e))?;
        Ok(Box::new(StdFile { file, path: path.to_string() }))
    }

    fn truncate(&self, path: &str, len: u64) -> Result<()> {
        let file = std::fs::OpenOptions::new()
            .write(true)
            .open(self.path(path))
            .map_err(|e| io_err(path, "open-truncate", e))?;
        file.set_len(len).map_err(|e| io_err(path, "truncate", e))?;
        file.sync_all().map_err(|e| io_err(path, "fsync", e))
    }

    fn rename(&self, from: &str, to: &str) -> Result<()> {
        std::fs::rename(self.path(from), self.path(to))
            .map_err(|e| io_err(from, "rename", e))?;
        self.sync_dir()
    }

    fn remove(&self, path: &str) -> Result<()> {
        std::fs::remove_file(self.path(path)).map_err(|e| io_err(path, "remove", e))
    }

    fn location(&self) -> String {
        self.root.display().to_string()
    }
}

// ---------------------------------------------------------------------
// MemVfs — in-memory filesystem with crash semantics.
// ---------------------------------------------------------------------

/// One in-memory file: current content plus the durable image.
#[derive(Debug, Clone, Default)]
struct MemFile {
    /// Current content (what readers of the live process see).
    cur: Vec<u8>,
    /// Content guaranteed to survive a crash; `None` = the file itself
    /// does not durably exist yet.
    durable: Option<Vec<u8>>,
}

/// In-memory filesystem with explicit crash semantics (see module docs).
/// Cheap to clone: clones share the same underlying files.
#[derive(Debug, Clone, Default)]
pub struct MemVfs {
    files: Arc<Mutex<HashMap<String, MemFile>>>,
}

impl MemVfs {
    /// A fresh, empty in-memory filesystem.
    pub fn new() -> MemVfs {
        MemVfs::default()
    }

    fn lock(&self) -> MutexGuard<'_, HashMap<String, MemFile>> {
        // A poisoned lock means a panic mid-mutation in *this test
        // process*; the durable image is still the right thing to expose.
        match self.files.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Simulate a power cut: every file reverts to its durable image;
    /// files never synced disappear entirely.
    pub fn crash(&self) {
        let mut files = self.lock();
        files.retain(|_, f| f.durable.is_some());
        for f in files.values_mut() {
            f.cur = f.durable.clone().unwrap_or_default();
        }
    }

    /// Current size of a file, for tests.
    pub fn size(&self, path: &str) -> Option<usize> {
        self.lock().get(path).map(|f| f.cur.len())
    }
}

/// Append handle over an in-memory file.
struct MemHandle {
    vfs: MemVfs,
    path: String,
}

impl VfsFile for MemHandle {
    fn append(&mut self, data: &[u8]) -> Result<()> {
        let mut files = self.vfs.lock();
        let f = files
            .get_mut(&self.path)
            .ok_or_else(|| io_err(&self.path, "append", "file removed"))?;
        f.cur.extend_from_slice(data);
        Ok(())
    }

    fn sync(&mut self) -> Result<()> {
        let mut files = self.vfs.lock();
        let f = files
            .get_mut(&self.path)
            .ok_or_else(|| io_err(&self.path, "fsync", "file removed"))?;
        f.durable = Some(f.cur.clone());
        Ok(())
    }
}

impl Vfs for MemVfs {
    fn read(&self, path: &str) -> Result<Vec<u8>> {
        self.lock()
            .get(path)
            .map(|f| f.cur.clone())
            .ok_or_else(|| io_err(path, "read", "no such file"))
    }

    fn exists(&self, path: &str) -> Result<bool> {
        Ok(self.lock().contains_key(path))
    }

    fn create(&self, path: &str) -> Result<Box<dyn VfsFile>> {
        let mut files = self.lock();
        let f = files.entry(path.to_string()).or_default();
        f.cur.clear();
        Ok(Box::new(MemHandle { vfs: self.clone(), path: path.to_string() }))
    }

    fn open_append(&self, path: &str) -> Result<Box<dyn VfsFile>> {
        if !self.lock().contains_key(path) {
            return Err(io_err(path, "open-append", "no such file"));
        }
        Ok(Box::new(MemHandle { vfs: self.clone(), path: path.to_string() }))
    }

    fn truncate(&self, path: &str, len: u64) -> Result<()> {
        let mut files = self.lock();
        let f = files
            .get_mut(path)
            .ok_or_else(|| io_err(path, "truncate", "no such file"))?;
        f.cur.truncate(len as usize);
        // Conservative: a truncate used by recovery is made durable at
        // once (the chopped tail can never come back after a re-crash).
        if let Some(d) = &mut f.durable {
            d.truncate(len as usize);
        }
        Ok(())
    }

    fn rename(&self, from: &str, to: &str) -> Result<()> {
        let mut files = self.lock();
        let mut f = files
            .remove(from)
            .ok_or_else(|| io_err(from, "rename", "no such file"))?;
        // Atomic + durable (see module docs): the renamed file's durable
        // image is its current content.
        f.durable = Some(f.cur.clone());
        files.insert(to.to_string(), f);
        Ok(())
    }

    fn remove(&self, path: &str) -> Result<()> {
        self.lock()
            .remove(path)
            .map(|_| ())
            .ok_or_else(|| io_err(path, "remove", "no such file"))
    }

    fn location(&self) -> String {
        "<memory>".into()
    }
}

// ---------------------------------------------------------------------
// FaultVfs — fail or tear the Nth mutating operation.
// ---------------------------------------------------------------------

/// What the injected fault does at the chosen operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultMode {
    /// The operation has no effect and errors (a failed fsync, a full
    /// disk, a pulled cable).
    FailStop,
    /// An `append` writes only the first half of its bytes before
    /// erroring (a torn write); other operations behave like
    /// [`FaultMode::FailStop`].
    Torn,
    /// Starting at the fault point, the next `failures` mutating
    /// operations fail with *transient* errors (no effect on the file),
    /// then everything succeeds again — momentary contention rather than
    /// a dead process. Exercises the store's retry-before-poison path.
    Transient {
        /// How many consecutive mutating operations fail.
        failures: u32,
    },
}

#[derive(Debug)]
struct FaultState {
    /// Mutating ops seen so far.
    counter: u64,
    /// Fail when `counter` reaches this (1-based).
    fail_at: u64,
    mode: FaultMode,
}

/// Fault-injection wrapper around [`MemVfs`]: mutating operations
/// (`create`, `append`, `sync`, `truncate`, `rename`, `remove`) are
/// counted, the `fail_at`-th fails per [`FaultMode`], and every
/// operation after that fails too — the process is considered dead.
#[derive(Debug, Clone)]
pub struct FaultVfs {
    inner: MemVfs,
    state: Arc<Mutex<FaultState>>,
    triggered: Arc<AtomicBool>,
}

impl FaultVfs {
    /// Wrap `inner`, failing the `fail_at`-th mutating operation.
    pub fn new(inner: MemVfs, fail_at: u64, mode: FaultMode) -> FaultVfs {
        FaultVfs {
            inner,
            state: Arc::new(Mutex::new(FaultState { counter: 0, fail_at, mode })),
            triggered: Arc::new(AtomicBool::new(false)),
        }
    }

    /// Whether the fault point was reached. When a whole run finishes
    /// with this still `false`, the crash matrix has covered every
    /// injection point and can stop.
    pub fn triggered(&self) -> bool {
        self.triggered.load(Ordering::SeqCst)
    }

    /// Whether the process is dead (a [`FaultMode::FailStop`]/[`Torn`]
    /// fault fired). Transient faults never kill the process.
    ///
    /// [`Torn`]: FaultMode::Torn
    fn dead(&self) -> bool {
        if !self.triggered() {
            return false;
        }
        let s = match self.state.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        !matches!(s.mode, FaultMode::Transient { .. })
    }

    /// Count one mutating op and report the fault to apply, if any. For
    /// fail-stop/torn modes, the `fail_at`-th op gets the mode and every
    /// later op errors (the process is dead). For transient mode, ops
    /// `fail_at .. fail_at + failures` get the mode; everything else
    /// succeeds. Returns the mode on the exact failing op so `append`
    /// can tear.
    fn step(&self, path: &str, op: &'static str) -> Result<Option<FaultMode>> {
        let mut s = match self.state.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        s.counter += 1;
        match s.mode {
            FaultMode::Transient { failures } => {
                if s.counter >= s.fail_at && s.counter < s.fail_at + failures as u64 {
                    self.triggered.store(true, Ordering::SeqCst);
                    Ok(Some(s.mode))
                } else {
                    Ok(None)
                }
            }
            FaultMode::FailStop | FaultMode::Torn => {
                if s.counter == s.fail_at {
                    self.triggered.store(true, Ordering::SeqCst);
                    Ok(Some(s.mode))
                } else if s.counter > s.fail_at {
                    Err(io_err(path, op, "injected fault: process crashed"))
                } else {
                    Ok(None)
                }
            }
        }
    }
}

/// Append handle that routes through the fault counter.
struct FaultHandle {
    inner: Box<dyn VfsFile>,
    fault: FaultVfs,
    path: String,
}

impl VfsFile for FaultHandle {
    fn append(&mut self, data: &[u8]) -> Result<()> {
        match self.fault.step(&self.path, "append")? {
            None => self.inner.append(data),
            Some(FaultMode::Torn) => {
                // Write half the bytes, then die: the classic torn write.
                let half = data.len() / 2;
                let _ = self.inner.append(&data[..half]);
                Err(io_err(&self.path, "append", "injected fault: torn write"))
            }
            Some(FaultMode::FailStop) => {
                Err(io_err(&self.path, "append", "injected fault: write failed"))
            }
            Some(FaultMode::Transient { .. }) => {
                Err(io_transient(&self.path, "append", "injected fault: transient write failure"))
            }
        }
    }

    fn sync(&mut self) -> Result<()> {
        match self.fault.step(&self.path, "fsync")? {
            None => self.inner.sync(),
            Some(FaultMode::Transient { .. }) => {
                Err(io_transient(&self.path, "fsync", "injected fault: transient fsync failure"))
            }
            // A failed fsync promotes nothing: unsynced bytes stay
            // volatile and die with the crash.
            Some(_) => Err(io_err(&self.path, "fsync", "injected fault: fsync failed")),
        }
    }
}

impl FaultVfs {
    /// Fail a non-appending mutating op per the stepped fault mode.
    fn fault_err(path: &str, op: &'static str, mode: FaultMode) -> StoreError {
        match mode {
            FaultMode::Transient { .. } => {
                io_transient(path, op, format!("injected fault: transient {op} failure"))
            }
            _ => io_err(path, op, format!("injected fault: {op} failed")),
        }
    }
}

impl Vfs for FaultVfs {
    fn read(&self, path: &str) -> Result<Vec<u8>> {
        if self.dead() {
            return Err(io_err(path, "read", "injected fault: process crashed"));
        }
        self.inner.read(path)
    }

    fn exists(&self, path: &str) -> Result<bool> {
        if self.dead() {
            return Err(io_err(path, "exists", "injected fault: process crashed"));
        }
        self.inner.exists(path)
    }

    fn create(&self, path: &str) -> Result<Box<dyn VfsFile>> {
        match self.step(path, "create")? {
            None => Ok(Box::new(FaultHandle {
                inner: self.inner.create(path)?,
                fault: self.clone(),
                path: path.to_string(),
            })),
            Some(mode) => Err(Self::fault_err(path, "create", mode)),
        }
    }

    fn open_append(&self, path: &str) -> Result<Box<dyn VfsFile>> {
        if self.dead() {
            return Err(io_err(path, "open-append", "injected fault: process crashed"));
        }
        Ok(Box::new(FaultHandle {
            inner: self.inner.open_append(path)?,
            fault: self.clone(),
            path: path.to_string(),
        }))
    }

    fn truncate(&self, path: &str, len: u64) -> Result<()> {
        match self.step(path, "truncate")? {
            None => self.inner.truncate(path, len),
            Some(mode) => Err(Self::fault_err(path, "truncate", mode)),
        }
    }

    fn rename(&self, from: &str, to: &str) -> Result<()> {
        match self.step(from, "rename")? {
            None => self.inner.rename(from, to),
            Some(mode) => Err(Self::fault_err(from, "rename", mode)),
        }
    }

    fn remove(&self, path: &str) -> Result<()> {
        match self.step(path, "remove")? {
            None => self.inner.remove(path),
            Some(mode) => Err(Self::fault_err(path, "remove", mode)),
        }
    }

    fn location(&self) -> String {
        "<memory, fault-injected>".into()
    }
}

// ---------------------------------------------------------------------
// ChaosVfs — periodic transient faults, for the CI chaos leg.
// ---------------------------------------------------------------------

/// Shared mutating-op counter behind a [`ChaosVfs`] and its handles.
#[derive(Debug)]
struct ChaosState {
    every: u64,
    counter: std::sync::atomic::AtomicU64,
}

impl ChaosState {
    /// Tick the mutating-op counter; `Err` on the chaos beat.
    fn step(&self, path: &str, op: &'static str) -> Result<()> {
        let n = self.counter.fetch_add(1, Ordering::SeqCst) + 1;
        if n.is_multiple_of(self.every) {
            return Err(io_transient(path, op, format!("chaos: transient {op} failure")));
        }
        Ok(())
    }
}

/// Deterministic chaos wrapper: every `every`-th mutating operation
/// fails once with a *transient* error (the operation is not performed);
/// the retry that follows lands on a different count and succeeds.
/// [`maybe_chaos`] installs it from `MAYBMS_STORE_FAULT_EVERY`.
#[derive(Debug)]
pub struct ChaosVfs {
    inner: Arc<dyn Vfs>,
    state: Arc<ChaosState>,
}

impl ChaosVfs {
    /// Wrap `inner`, failing every `every`-th mutating op transiently.
    pub fn new(inner: Arc<dyn Vfs>, every: u64) -> ChaosVfs {
        ChaosVfs {
            inner,
            state: Arc::new(ChaosState {
                every: every.max(1),
                counter: std::sync::atomic::AtomicU64::new(0),
            }),
        }
    }

    fn step(&self, path: &str, op: &'static str) -> Result<()> {
        self.state.step(path, op)
    }
}

/// Wrap `vfs` in a [`ChaosVfs`] when `MAYBMS_STORE_FAULT_EVERY` is set
/// to a positive count; otherwise return it unchanged.
pub fn maybe_chaos(vfs: Arc<dyn Vfs>) -> Arc<dyn Vfs> {
    match std::env::var("MAYBMS_STORE_FAULT_EVERY")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
    {
        Some(every) if every > 0 => Arc::new(ChaosVfs::new(vfs, every)),
        _ => vfs,
    }
}

/// Append handle that routes through the shared chaos counter.
struct ChaosHandle {
    inner: Box<dyn VfsFile>,
    state: Arc<ChaosState>,
    path: String,
}

impl VfsFile for ChaosHandle {
    fn append(&mut self, data: &[u8]) -> Result<()> {
        self.state.step(&self.path, "append")?;
        self.inner.append(data)
    }

    fn sync(&mut self) -> Result<()> {
        self.state.step(&self.path, "fsync")?;
        self.inner.sync()
    }
}

impl Vfs for ChaosVfs {
    fn read(&self, path: &str) -> Result<Vec<u8>> {
        self.inner.read(path)
    }

    fn exists(&self, path: &str) -> Result<bool> {
        self.inner.exists(path)
    }

    fn create(&self, path: &str) -> Result<Box<dyn VfsFile>> {
        self.step(path, "create")?;
        Ok(Box::new(ChaosHandle {
            inner: self.inner.create(path)?,
            state: self.state.clone(),
            path: path.to_string(),
        }))
    }

    fn open_append(&self, path: &str) -> Result<Box<dyn VfsFile>> {
        Ok(Box::new(ChaosHandle {
            inner: self.inner.open_append(path)?,
            state: self.state.clone(),
            path: path.to_string(),
        }))
    }

    fn truncate(&self, path: &str, len: u64) -> Result<()> {
        self.step(path, "truncate")?;
        self.inner.truncate(path, len)
    }

    fn rename(&self, from: &str, to: &str) -> Result<()> {
        self.step(from, "rename")?;
        self.inner.rename(from, to)
    }

    fn remove(&self, path: &str) -> Result<()> {
        self.step(path, "remove")?;
        self.inner.remove(path)
    }

    fn location(&self) -> String {
        format!(
            "{} (chaos: 1/{} transient faults)",
            self.inner.location(),
            self.state.every
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_crash_drops_unsynced_appends() {
        let vfs = MemVfs::new();
        let mut f = vfs.create("wal").unwrap();
        f.append(b"durable").unwrap();
        f.sync().unwrap();
        f.append(b" volatile").unwrap();
        assert_eq!(vfs.read("wal").unwrap(), b"durable volatile");
        vfs.crash();
        assert_eq!(vfs.read("wal").unwrap(), b"durable");
    }

    #[test]
    fn mem_crash_removes_never_synced_files() {
        let vfs = MemVfs::new();
        let mut f = vfs.create("tmp").unwrap();
        f.append(b"x").unwrap();
        vfs.crash();
        assert!(!vfs.exists("tmp").unwrap());
    }

    #[test]
    fn mem_rename_is_atomic_and_durable() {
        let vfs = MemVfs::new();
        let mut f = vfs.create("a").unwrap();
        f.append(b"payload").unwrap();
        f.sync().unwrap();
        vfs.rename("a", "b").unwrap();
        vfs.crash();
        assert!(!vfs.exists("a").unwrap());
        assert_eq!(vfs.read("b").unwrap(), b"payload");
    }

    #[test]
    fn fault_fails_nth_op_then_everything() {
        let mem = MemVfs::new();
        let fault = FaultVfs::new(mem.clone(), 3, FaultMode::FailStop);
        let mut f = fault.create("wal").unwrap(); // op 1
        f.append(b"one").unwrap(); // op 2
        assert!(f.sync().is_err()); // op 3: injected
        assert!(fault.triggered());
        assert!(f.append(b"two").is_err()); // dead
        mem.crash();
        assert!(!mem.exists("wal").unwrap()); // nothing ever synced
    }

    #[test]
    fn torn_append_writes_prefix() {
        let mem = MemVfs::new();
        let fault = FaultVfs::new(mem.clone(), 2, FaultMode::Torn);
        let mut f = fault.create("wal").unwrap(); // op 1
        assert!(f.append(b"abcdef").is_err()); // op 2: torn
        assert_eq!(mem.read("wal").unwrap(), b"abc");
    }

    #[test]
    fn std_vfs_roundtrip() {
        let dir = std::env::temp_dir().join(format!("maybms_vfs_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let vfs = StdVfs::open(&dir).unwrap();
        let mut f = vfs.create("wal").unwrap();
        f.append(b"hello").unwrap();
        f.sync().unwrap();
        drop(f);
        assert_eq!(vfs.read("wal").unwrap(), b"hello");
        let mut f = vfs.open_append("wal").unwrap();
        f.append(b" world").unwrap();
        f.sync().unwrap();
        drop(f);
        assert_eq!(vfs.read("wal").unwrap(), b"hello world");
        vfs.truncate("wal", 5).unwrap();
        assert_eq!(vfs.read("wal").unwrap(), b"hello");
        vfs.rename("wal", "wal2").unwrap();
        assert!(!vfs.exists("wal").unwrap());
        vfs.remove("wal2").unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }
}
