//! Typed errors for the durability subsystem.
//!
//! The contract of this crate is that a bad disk never aborts the
//! process: every fallible I/O and every byte-level decode surfaces here
//! as a [`StoreError`] carrying the failing path (and, for corruption,
//! the byte offset), so callers — the shell, the server front ends —
//! can report it and keep running.

use std::fmt;

/// Error raised by the durable store.
#[derive(Debug, Clone, PartialEq)]
pub enum StoreError {
    /// An I/O operation failed (or a fault was injected).
    Io {
        /// Path the operation targeted (relative to the data directory).
        path: String,
        /// The operation (`read`, `append`, `fsync`, `rename`, …).
        op: &'static str,
        /// The underlying error message.
        message: String,
        /// Whether the failure is classified as transient (momentary
        /// contention, an interrupted syscall, an injected chaos fault):
        /// the store retries these with bounded deterministic backoff
        /// before poisoning; persistent failures poison immediately.
        transient: bool,
    },
    /// A durable file failed validation (bad magic, CRC mismatch on the
    /// snapshot, an undecodable record, a replay that references a
    /// missing table, …).
    Corrupt {
        /// Which file is damaged.
        path: String,
        /// Byte offset of the first invalid data.
        offset: u64,
        /// What was wrong.
        reason: String,
    },
    /// A previous I/O failure left the in-memory catalog ahead of (or
    /// behind) the durable state; further mutations are refused so the
    /// two cannot silently diverge. Reopen the database to recover.
    Poisoned {
        /// The original failure, for the record.
        cause: String,
    },
}

impl StoreError {
    /// Shorthand for corruption errors.
    pub(crate) fn corrupt(
        path: impl Into<String>,
        offset: u64,
        reason: impl Into<String>,
    ) -> StoreError {
        StoreError::Corrupt { path: path.into(), offset, reason: reason.into() }
    }

    /// Whether this failure is worth retrying (see [`StoreError::Io`]'s
    /// `transient` field); corruption and poisoning never are.
    pub fn is_transient(&self) -> bool {
        matches!(self, StoreError::Io { transient: true, .. })
    }
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io { path, op, message, transient } => {
                let kind = if *transient { "transient storage I/O error" } else { "storage I/O error" };
                write!(f, "{kind}: {op} {path}: {message}")
            }
            StoreError::Corrupt { path, offset, reason } => {
                write!(f, "corrupt data directory: {path} at byte {offset}: {reason}")
            }
            StoreError::Poisoned { cause } => write!(
                f,
                "store is read-only after an earlier I/O failure ({cause}); \
                 reopen the database to recover"
            ),
        }
    }
}

impl std::error::Error for StoreError {}

/// Result alias for this crate.
pub type Result<T> = std::result::Result<T, StoreError>;
