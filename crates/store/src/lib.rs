//! Durability for the MayBMS catalog: write-ahead logging, atomic
//! checkpoints, and crash recovery.
//!
//! The store persists the *catalog* — stored U-relations plus the world
//! table — not query results. Mutating statements log a physical
//! [`Op`] (row images, not SQL text: `repair key` / `pick tuples`
//! introduce world-table variables nondeterministically relative to a
//! replay context, so logical replay would misalign variable ids) to a
//! checksummed WAL before the change is installed in memory.
//! [`Store::checkpoint`] folds everything into one atomically-renamed
//! snapshot and empties the log; [`Store::open`] recovers by loading
//! the snapshot and replaying the WAL tail, truncating at the first
//! torn record.
//!
//! All file traffic goes through the [`Vfs`] trait: [`StdVfs`] for real
//! directories, [`MemVfs`] for tests (with a [`MemVfs::crash`] that
//! drops unsynced writes), and [`FaultVfs`] for fault injection — fail
//! or tear the Nth mutating operation, which the crash-matrix tests use
//! to prove every statement is atomic and recovery is idempotent.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod codec;
mod error;
pub mod snapshot;
mod store;
mod vfs;
pub mod wal;

pub use error::{Result, StoreError};
pub use snapshot::Catalog;
pub use store::{apply_op, fingerprint, Recovered, Store, StoreStatus};
pub use vfs::{maybe_chaos, ChaosVfs, FaultMode, FaultVfs, MemVfs, StdVfs, Vfs, VfsFile};
pub use wal::{Op, WalRecord, WorldExt};
