//! Pipelined ≡ materialised: the morsel-driven executor (`maybms-pipe`)
//! must produce **bit-identical** output — schema, tuples, WSDs, order —
//! to the bottom-up materialising executors, at any thread count and any
//! morsel size.
//!
//! Random plans are generated as token programs folded into well-typed
//! trees (arity tracked through projections and joins, comparisons and
//! arithmetic restricted to numeric columns), over data with NULL join
//! keys, cross-type numeric duplicates (`1 == 1.0`), and — on the
//! U-relational side — conflicting WSDs whose join conjunctions are
//! unsatisfiable and must be dropped. Each case runs on explicit 1-, 2-,
//! and 8-thread pools with morsel sizes down to a single row (the
//! worst case for any order bug); CI additionally runs the whole suite
//! under `MAYBMS_THREADS=1` and `=4`, covering the process-wide pool
//! dispatch.

use std::sync::Arc;

use maybms_core::agg as uagg;
use maybms_core::translate::AggSpec;
use maybms_engine::ops::{AggCall, AggFunc, ProjectItem, SortKey};
use maybms_engine::{
    optimizer, Catalog, DataType, Expr, Field, PhysicalPlan, Relation, Schema, Tuple, Value,
};
use maybms_par::ThreadPool;
use maybms_pipe::UStream;
use maybms_urel::{algebra, Assignment, URelation, UTuple, Var, WorldTable, Wsd};
use proptest::prelude::*;

/// Per-stage `(label, rows_in, rows_out, build_rows)` fingerprint of an
/// instrumented pipeline, plus its group count. Everything in here is
/// part of the determinism contract — bit-identical at any thread count
/// and morsel size. (Morsel counts and wall times are *not*: morsel
/// boundaries depend on the pool.)
fn stage_fingerprint(ps: &maybms_obs::PipelineStats) -> (Vec<(String, u64, u64, u64)>, u64) {
    (
        ps.stages
            .iter()
            .map(|s| (s.label.clone(), s.rows_in.get(), s.rows_out.get(), s.build_rows.get()))
            .collect(),
        ps.groups.get(),
    )
}

/// The thread-invariant portion of a per-query collector: per-pipeline
/// stage fingerprints plus the confidence-estimator effort counters.
#[allow(clippy::type_complexity)]
fn query_fingerprint(
    qs: &maybms_obs::QueryStats,
) -> (Vec<(Vec<(String, u64, u64, u64)>, u64)>, [u64; 5], u64) {
    (
        qs.pipelines().iter().map(|p| stage_fingerprint(p)).collect(),
        [
            qs.conf_calls.get(),
            qs.dnf_clauses.get(),
            qs.dtree_nodes.get(),
            qs.samples_drawn.get(),
            qs.sample_batches.get(),
        ],
        qs.max_rel_stderr().to_bits(),
    )
}

// ---------------------------------------------------------------------
// Certain path: random PhysicalPlans vs pipe::execute
// ---------------------------------------------------------------------

/// Numeric-or-NULL values: safe under comparison and arithmetic, with
/// cross-type duplicates in the key columns.
fn arb_num() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        (0i64..5).prop_map(Value::Int),
        (0i64..8).prop_map(|i| Value::Float(i as f64 / 2.0)),
    ]
}

/// A catalog with two all-numeric tables, `t0` (3 columns) and `t1`
/// (2 columns).
fn arb_catalog() -> impl Strategy<Value = Catalog> {
    (
        prop::collection::vec((arb_num(), arb_num(), arb_num()), 0..20),
        prop::collection::vec((arb_num(), arb_num()), 0..8),
    )
        .prop_map(|(rows0, rows1)| {
            let mut c = Catalog::new();
            let s0 = Arc::new(Schema::from_pairs(&[
                ("a", DataType::Unknown),
                ("b", DataType::Unknown),
                ("c", DataType::Unknown),
            ]));
            c.create(
                "t0",
                Relation::new_unchecked(
                    s0,
                    rows0.into_iter().map(|(a, b, x)| Tuple::new(vec![a, b, x])).collect(),
                ),
            )
            .unwrap();
            let s1 = Arc::new(Schema::from_pairs(&[
                ("d", DataType::Unknown),
                ("e", DataType::Unknown),
            ]));
            c.create(
                "t1",
                Relation::new_unchecked(
                    s1,
                    rows1.into_iter().map(|(d, e)| Tuple::new(vec![d, e])).collect(),
                ),
            )
            .unwrap();
            c
        })
}

/// One plan-building token: `(opcode, a, b)`.
type Token = (u8, u8, u8);

fn table_arity(idx: u8) -> (String, usize) {
    if idx.is_multiple_of(2) {
        ("t0".to_string(), 3)
    } else {
        ("t1".to_string(), 2)
    }
}

/// Fold a token program into a well-typed plan, tracking output arity.
/// All columns stay numeric-or-NULL, so every generated expression is
/// total on the data.
fn build_plan(base: u8, tokens: &[Token]) -> PhysicalPlan {
    let (table, mut arity) = table_arity(base);
    let mut plan = PhysicalPlan::Scan { table, alias: None };
    for &(op, a, b) in tokens {
        let col = |x: u8| Expr::ColumnIdx(x as usize % arity);
        match op % 9 {
            0 => {
                let cmp = if b % 2 == 0 {
                    maybms_engine::BinaryOp::Gt
                } else {
                    maybms_engine::BinaryOp::LtEq
                };
                plan = PhysicalPlan::Filter {
                    input: Box::new(plan),
                    predicate: col(a).binary(cmp, Expr::lit(i64::from(b % 5))),
                };
            }
            1 => {
                // Rotate the columns and append one computed column.
                let mut items: Vec<ProjectItem> = (0..arity)
                    .map(|i| {
                        ProjectItem::new(
                            Expr::ColumnIdx((i + a as usize) % arity),
                            format!("p{i}"),
                        )
                    })
                    .collect();
                items.push(ProjectItem::new(
                    col(b).binary(maybms_engine::BinaryOp::Add, Expr::lit(1i64)),
                    "sum",
                ));
                arity += 1;
                plan = PhysicalPlan::Project { input: Box::new(plan), items };
            }
            2 => {
                let (rt, ra) = table_arity(b);
                plan = PhysicalPlan::HashJoin {
                    left: Box::new(plan),
                    right: Box::new(PhysicalPlan::Scan { table: rt, alias: None }),
                    left_keys: vec![a as usize % arity],
                    right_keys: vec![b as usize % ra],
                };
                arity += ra;
            }
            3 => plan = PhysicalPlan::Distinct { input: Box::new(plan) },
            4 => {
                plan = PhysicalPlan::Sort {
                    input: Box::new(plan),
                    keys: vec![SortKey { expr: col(a), ascending: b % 2 == 0 }],
                };
            }
            5 => plan = PhysicalPlan::Limit { input: Box::new(plan), n: a as usize % 9 },
            6 => {
                plan = PhysicalPlan::UnionAll { inputs: vec![plan.clone(), plan] };
            }
            8 => {
                // Grouped aggregation (the streaming breaker): every
                // aggregate function, with and without group keys, over
                // numeric-or-NULL columns (NULL keys form groups too).
                let n_keys = (a % 2) as usize;
                let (group_exprs, group_names) = if n_keys == 1 {
                    (vec![col(b)], vec!["g".to_string()])
                } else {
                    (Vec::new(), Vec::new())
                };
                let aggs = vec![
                    AggCall::new(AggFunc::Count, None, "n"),
                    AggCall::new(AggFunc::Sum, Some(col(a)), "s"),
                    AggCall::new(AggFunc::Avg, Some(col(b)), "m"),
                    AggCall::new(AggFunc::Min, Some(col(a)), "lo"),
                    AggCall::new(AggFunc::Max, Some(col(b)), "hi"),
                ];
                plan = PhysicalPlan::Aggregate {
                    input: Box::new(plan),
                    group_exprs,
                    group_names,
                    aggs,
                };
                arity = n_keys + 5;
            }
            _ => {
                let (rt, ra) = table_arity(b);
                let pred = Expr::ColumnIdx(a as usize % arity)
                    .binary(maybms_engine::BinaryOp::Lt, Expr::ColumnIdx(arity));
                plan = PhysicalPlan::NestedLoopJoin {
                    left: Box::new(plan),
                    right: Box::new(PhysicalPlan::Scan { table: rt, alias: None }),
                    predicate: if a % 2 == 0 { Some(pred) } else { None },
                };
                arity += ra;
            }
        }
    }
    plan
}

fn arb_tokens() -> impl Strategy<Value = Vec<Token>> {
    prop::collection::vec((0u8..9, 0u8..16, 0u8..16), 0..6)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// pipe::execute ≡ PhysicalPlan::execute, exactly, at 1/2/8 threads
    /// and morsel sizes down to one row.
    #[test]
    fn pipelined_plan_matches_materialized(
        catalog in arb_catalog(),
        base in 0u8..2,
        tokens in arb_tokens(),
    ) {
        let plan = build_plan(base, &tokens);
        let materialized = plan.execute(&catalog).unwrap();
        for threads in [1usize, 2, 8] {
            let pool = ThreadPool::new(threads);
            for morsel in [1usize, 4] {
                let pipelined =
                    maybms_pipe::execute_with(&plan, &catalog, &pool, morsel).unwrap();
                prop_assert_eq!(
                    pipelined.schema().names(),
                    materialized.schema().names(),
                    "schema, threads {} morsel {}", threads, morsel
                );
                prop_assert_eq!(
                    pipelined.tuples(),
                    materialized.tuples(),
                    "tuples, threads {} morsel {}", threads, morsel
                );
            }
        }
    }

    /// The optimizer's rewrites (including the new Project-merge and
    /// identity-elimination rules) compose with pipelining: optimizing
    /// then pipelining equals executing the optimized plan bottom-up.
    #[test]
    fn optimized_plan_pipelines_identically(
        catalog in arb_catalog(),
        base in 0u8..2,
        tokens in arb_tokens(),
    ) {
        let plan = build_plan(base, &tokens);
        let optimized = optimizer::optimize(&plan, &catalog).unwrap();
        let materialized = optimized.execute(&catalog).unwrap();
        let pool = ThreadPool::new(8);
        let pipelined =
            maybms_pipe::execute_with(&optimized, &catalog, &pool, 1).unwrap();
        prop_assert_eq!(pipelined.tuples(), materialized.tuples());
    }
}

// ---------------------------------------------------------------------
// U-relational path: UStream chains vs the algebra sequence
// ---------------------------------------------------------------------

/// Mixed values (numerics, NULLs, and text payload for the third
/// column).
fn arb_cell() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        (0i64..4).prop_map(Value::Int),
        (0i64..6).prop_map(|i| Value::Float(i as f64 / 2.0)),
    ]
}

fn arb_text() -> impl Strategy<Value = Value> {
    prop::sample::select(vec!["a", "b", "c"]).prop_map(Value::str)
}

fn uschema() -> Arc<Schema> {
    Arc::new(Schema::from_pairs(&[
        ("k", DataType::Unknown),
        ("v", DataType::Unknown),
        ("s", DataType::Text),
    ]))
}

/// A world table with three small variables plus a U-relation whose WSDs
/// mention them — self-joins hit conflicting (unsatisfiable) WSD pairs.
fn arb_urelation() -> impl Strategy<Value = (WorldTable, URelation)> {
    (
        prop::collection::vec((arb_cell(), arb_cell(), arb_text()), 0..14),
        prop::collection::vec(prop::collection::vec((0u32..3, 0u16..2), 0..3), 0..14),
    )
        .prop_map(|(rows, raw_wsds)| {
            let mut wt = WorldTable::new();
            for _ in 0..3 {
                wt.new_var(&[0.5, 0.5]).unwrap();
            }
            let tuples = rows
                .into_iter()
                .zip(raw_wsds.into_iter().chain(std::iter::repeat(Vec::new())))
                .map(|((k, v, s), raw)| {
                    let wsd = Wsd::from_assignments(
                        raw.into_iter().map(|(v, a)| Assignment::new(Var(v), a)).collect(),
                    )
                    .unwrap_or_else(Wsd::tautology);
                    UTuple::new(Tuple::new(vec![k, v, s]), wsd)
                })
                .collect();
            (wt, URelation::new(uschema(), tuples))
        })
}

/// Track, per output column, whether it is numeric-or-NULL (comparisons
/// against integer literals are total only then).
struct UChain {
    numeric: Vec<bool>,
}

/// Fold tokens into both the eager algebra chain and the lazy stream.
/// Returns `(materialized, stream, per-column numeric-or-NULL flags)`;
/// both sides built from identical stages.
fn build_uchain(
    u1: &URelation,
    u2: &URelation,
    tokens: &[Token],
) -> (URelation, UStream, Vec<bool>) {
    let mut info = UChain { numeric: vec![true, true, false] };
    let mut eager = u1.clone();
    let mut lazy = UStream::new(u1.clone());
    for &(op, a, b) in tokens {
        let arity = info.numeric.len();
        match op % 3 {
            0 => {
                // Filter: comparison on a numeric column when one
                // exists, IS NOT NULL otherwise (total either way).
                let idx = a as usize % arity;
                let pred = if info.numeric[idx] {
                    let cmp = if b % 2 == 0 {
                        maybms_engine::BinaryOp::Gt
                    } else {
                        maybms_engine::BinaryOp::Lt
                    };
                    Expr::ColumnIdx(idx).binary(cmp, Expr::lit(i64::from(b % 4)))
                } else {
                    Expr::IsNull { expr: Box::new(Expr::ColumnIdx(idx)), negated: true }
                };
                eager = algebra::select(&eager, &pred).unwrap();
                lazy = lazy.filter(&pred).unwrap();
            }
            1 => {
                // Project: rotate all columns (bare references keep the
                // per-column numeric flags meaningful).
                let items: Vec<ProjectItem> = (0..arity)
                    .map(|i| {
                        ProjectItem::new(
                            Expr::ColumnIdx((i + a as usize) % arity),
                            format!("p{i}"),
                        )
                    })
                    .collect();
                info.numeric =
                    (0..arity).map(|i| info.numeric[(i + a as usize) % arity]).collect();
                eager = algebra::project(&eager, &items).unwrap();
                lazy = lazy.project(&items).unwrap();
            }
            _ => {
                // Hash-join probe against u2 (or u1 for a self-join's
                // conflicting WSDs); the stream is the probe side.
                let build = if b % 2 == 0 { u2 } else { u1 };
                let lk = a as usize % arity;
                eager = algebra::hash_join(&eager, build, &[lk], &[0]).unwrap();
                lazy = lazy.hash_join(build.clone(), &[lk], &[0]).unwrap();
                info.numeric.extend([true, true, false]);
            }
        }
    }
    let UChain { numeric } = info;
    (eager, lazy, numeric)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Fused UStream chains ≡ the materialising algebra sequence — data,
    /// WSDs (unsatisfiable conjunctions dropped), and row order — at
    /// 1/2/8 threads and single-row morsels.
    #[test]
    fn ustream_chain_matches_algebra(
        (_wt, u1) in arb_urelation(),
        (_w2, u2) in arb_urelation(),
        tokens in prop::collection::vec((0u8..3, 0u8..16, 0u8..16), 0..5),
    ) {
        let (eager, lazy, _) = build_uchain(&u1, &u2, &tokens);
        prop_assert_eq!(lazy.schema().len(), eager.schema().len());
        // Collected per-stage stats must also be bit-identical across
        // thread counts (order-independent sums — the instrumentation
        // side of the determinism contract).
        let mut fingerprints = Vec::new();
        for threads in [1usize, 2, 8] {
            let pool = ThreadPool::new(threads);
            // Rebuild the stream per thread count (collect consumes it).
            let (_, stream, _) = build_uchain(&u1, &u2, &tokens);
            let ps = stream.stats_skeleton("property pipeline");
            let got = stream
                .collect_stats(&pool, 1, maybms_pipe::columnar_default(), Some(&ps))
                .unwrap();
            prop_assert_eq!(got.tuples(), eager.tuples(), "threads {}", threads);
            fingerprints.push(stage_fingerprint(&ps));
        }
        prop_assert_eq!(&fingerprints[1], &fingerprints[0], "stats, threads 2 vs 1");
        prop_assert_eq!(&fingerprints[2], &fingerprints[0], "stats, threads 8 vs 1");
        let (_, stream, _) = build_uchain(&u1, &u2, &tokens);
        prop_assert_eq!(stream.collect().unwrap().tuples(), eager.tuples());
        let _ = lazy;
    }

    /// The streaming grouped-aggregation breaker ≡ materialising the
    /// chain and running the two-pass group + aggregate path — group
    /// keys (incl. NULLs and duplicate select keys), `conf()`,
    /// `esum`/`ecount` partial sums, and `aconf` seed numbering — at
    /// 1/2/8 threads with single-row morsels. Covers empty inputs with
    /// and without GROUP BY (0-row generators).
    #[test]
    fn grouped_streaming_matches_two_pass(
        (wt, u1) in arb_urelation(),
        (_w2, u2) in arb_urelation(),
        tokens in prop::collection::vec((0u8..3, 0u8..16, 0u8..16), 0..4),
        key_pick in 0u8..3,
        agg_pick in 0u8..4,
    ) {
        let (eager, _, numeric) = build_uchain(&u1, &u2, &tokens);
        // Group keys: global (none), one key, or a duplicated key pair
        // (the same expression selected twice).
        let k0 = Expr::ColumnIdx(0);
        let grouping: Vec<Expr> = match key_pick {
            0 => Vec::new(),
            1 => vec![k0.clone()],
            _ => vec![k0.clone(), k0],
        };
        let key_fields: Vec<Field> = (0..grouping.len())
            .map(|i| Field::new(format!("k{i}"), DataType::Unknown))
            .collect();
        // esum needs a numeric argument; pick the first numeric column
        // (falling back to column 0, where both paths must then raise
        // the same typing error).
        let num_col = numeric
            .iter()
            .position(|&n| n)
            .map(Expr::ColumnIdx)
            .unwrap_or(Expr::ColumnIdx(0));
        let aggs: Vec<(AggSpec, String)> = match agg_pick {
            0 => vec![(AggSpec::Conf, "p".into())],
            1 => vec![
                (AggSpec::ESum(num_col.clone()), "es".into()),
                (AggSpec::ECount(None), "ec".into()),
            ],
            2 => vec![
                (AggSpec::AConf { epsilon: 0.5, delta: 0.4 }, "ap".into()),
                (AggSpec::Conf, "p".into()),
            ],
            _ => vec![
                (AggSpec::ECount(Some(Expr::ColumnIdx(1))), "ec".into()),
                (AggSpec::Conf, "p".into()),
                (AggSpec::ESum(num_col.clone()), "es".into()),
            ],
        };
        let ctx = uagg::ConfContext::default();
        // Two-pass reference over the materialised chain.
        let want = uagg::group(&eager, &grouping).and_then(|groups| {
            uagg::aggregate_groups(&eager, &groups, key_fields.clone(), &aggs, &wt, &ctx)
        });
        // Per-query collectors attached at every thread count: results
        // AND collected stats (per-stage rows, group counts, estimator
        // effort) must be bit-identical.
        let mut fingerprints = Vec::new();
        for threads in [1usize, 2, 8] {
            let pool = ThreadPool::new(threads);
            let (_, stream, _) = build_uchain(&u1, &u2, &tokens);
            let qs = maybms_obs::QueryStats::new();
            let got = uagg::aggregate_stream_with(
                stream,
                &grouping,
                grouping.len(),
                key_fields.clone(),
                &aggs,
                &wt,
                &ctx,
                Some(&qs),
                &pool,
                1,
            );
            match (&want, &got) {
                (Ok(w), Ok(g)) => {
                    prop_assert_eq!(g.tuples(), w.tuples(), "threads {}", threads);
                    fingerprints.push(query_fingerprint(&qs));
                }
                (Err(_), Err(_)) => {}
                (w, g) => prop_assert!(
                    false,
                    "two-pass {:?} vs streaming {:?} (threads {})",
                    w,
                    g,
                    threads
                ),
            }
        }
        for (i, f) in fingerprints.iter().enumerate().skip(1) {
            prop_assert_eq!(f, &fingerprints[0], "stats fingerprint, run {}", i);
        }
    }
}
