//! Vectorised ≡ scalar: the columnar kernels and the columnar pipeline
//! path must be **bit-identical** to the row-at-a-time evaluator —
//! values (variant and float bits included), NULL propagation, row
//! order, and the first runtime error (row *and* message).
//!
//! Three layers:
//! * expression level — random expression trees (arithmetic,
//!   comparisons, `AND`/`OR`, `NOT`, negation, `IS NULL`, `||`, `CASE`,
//!   `IN`, `CAST`) over random column batches (typed, mixed-variant,
//!   all-NULL, empty, single-row) checked against per-row
//!   [`Expr::eval_values`];
//! * certain pipelines — random σ/π/⋈ chains executed with the columnar
//!   path on vs off, at 1/2/8 threads and single-row morsels;
//! * U-relational pipelines — `UStream` chains (WSDs riding along)
//!   collected with the columnar path on vs off.
//!
//! Plus pinned regressions for the `Value` edge cases the kernels must
//! not drift on: `'a' || NULL`, `%` by zero (integer and float),
//! Float/Int cross-type comparisons (including the > 2^53 widening
//! quirk), and mixed-variant columns under `||`.

use std::sync::Arc;

use maybms_engine::column::ColumnBatch;
use maybms_engine::ops::ProjectItem;
use maybms_engine::{
    vector, BinaryOp, Catalog, DataType, Expr, PhysicalPlan, Relation, Schema, Tuple,
    UnaryOp, Value,
};
use maybms_par::ThreadPool;
use maybms_pipe::UStream;
use maybms_urel::{Assignment, URelation, UTuple, Var, Wsd};
use proptest::prelude::*;

// ---------------------------------------------------------------------
// Expression level: eval_batch vs per-row eval_values
// ---------------------------------------------------------------------

/// One cell of column `mode`: typed columns (0–4), mixed-variant (5).
/// `r % 5 == 0` is NULL everywhere, so NULL-heavy data is routine.
fn make_cell(mode: u8, r: u8) -> Value {
    if r.is_multiple_of(5) {
        return Value::Null;
    }
    match mode {
        // Small ints: arithmetic mostly succeeds.
        0 => Value::Int(i64::from(r) - 120),
        // Extreme ints: overflow and the f64-widening comparison zone.
        1 => {
            if r.is_multiple_of(2) {
                Value::Int(i64::MAX - i64::from(r))
            } else {
                Value::Int(i64::from(r) << 55)
            }
        }
        2 => Value::Float(f64::from(r) / 4.0 - 20.0),
        3 => Value::str(match r % 3 {
            0 => "a",
            1 => "bb",
            _ => "",
        }),
        4 => Value::Bool(r.is_multiple_of(2)),
        // Mixed-variant column: pivots to the Values fallback.
        _ => match r % 4 {
            0 => Value::Int(i64::from(r)),
            1 => Value::Float(f64::from(r) / 2.0),
            2 => Value::str("m"),
            _ => Value::Bool(true),
        },
    }
}

/// Random 4-column batches: per-column type mode plus raw cells.
/// 0..12 rows covers empty and single-row morsels.
fn arb_rows() -> impl Strategy<Value = Vec<Vec<Value>>> {
    (
        prop::collection::vec(0u8..6, 4),
        prop::collection::vec(prop::collection::vec(0u8..250, 4), 0..12),
    )
        .prop_map(|(modes, raw)| {
            raw.into_iter()
                .map(|cells| {
                    cells.iter().zip(&modes).map(|(&r, &m)| make_cell(m, r)).collect()
                })
                .collect()
        })
}

type ExprToken = (u8, u8, u8);

fn arb_expr_tokens() -> impl Strategy<Value = Vec<ExprToken>> {
    prop::collection::vec((0u8..13, 0u8..16, 0u8..16), 0..5)
}

fn arith_op(b: u8) -> BinaryOp {
    [BinaryOp::Add, BinaryOp::Sub, BinaryOp::Mul, BinaryOp::Div, BinaryOp::Mod]
        [b as usize % 5]
}

fn cmp_op(b: u8) -> BinaryOp {
    [BinaryOp::Eq, BinaryOp::NotEq, BinaryOp::Lt, BinaryOp::LtEq, BinaryOp::Gt, BinaryOp::GtEq]
        [b as usize % 6]
}

/// Fold a token program into one expression over 4 columns. Every
/// kernel (and both scalar-fallback node kinds) is reachable, as are
/// runtime errors: `% 0`, overflow, type mismatches, non-bool logic.
fn build_expr(tokens: &[ExprToken]) -> Expr {
    let col = |x: u8| Expr::ColumnIdx(x as usize % 4);
    let mut e = col(tokens.first().map_or(0, |t| t.1));
    for &(op, a, b) in tokens {
        e = match op % 13 {
            0 => e.binary(arith_op(b), col(a)),
            // Literal arithmetic — `% 0` and `/ 0` included.
            1 => e.binary(arith_op(b), Expr::lit(i64::from(a % 5))),
            2 => e.binary(cmp_op(b), col(a)),
            3 => e.binary(cmp_op(b), litf(f64::from(a) / 2.0 - 3.0)),
            4 => e.and(col(a).binary(cmp_op(b), Expr::lit(1i64))),
            5 => e.or(col(a).binary(cmp_op(b), Expr::lit(2i64))),
            6 => e.not(),
            7 => Expr::Unary { op: UnaryOp::Neg, expr: Box::new(e) },
            8 => Expr::IsNull { expr: Box::new(e), negated: b % 2 == 1 },
            9 => e.binary(BinaryOp::Concat, col(a)),
            10 => Expr::Case {
                branches: vec![(col(a).binary(BinaryOp::Gt, Expr::lit(0i64)), e)],
                else_expr: Some(Box::new(Expr::lit(i64::from(b)))),
            },
            11 => Expr::InList {
                expr: Box::new(e),
                list: vec![Expr::lit(i64::from(a % 3)), Expr::lit(Value::Null), col(b)],
                negated: b % 2 == 0,
            },
            _ => Expr::Cast {
                expr: Box::new(e),
                dtype: [DataType::Int, DataType::Float, DataType::Text, DataType::Bool]
                    [b as usize % 4],
            },
        };
    }
    e
}

/// `Expr::lit` only takes `Into<Value>`; floats go through the variant.
fn litf(f: f64) -> Expr {
    Expr::Literal(Value::Float(f))
}

/// The oracle: eval_batch must agree with row-at-a-time eval_values on
/// values, variants, and the first error (row + message). Panics on
/// divergence (the vendored proptest reports panics as case failures).
fn check_expr(e: &Expr, rows: &[Vec<Value>]) {
    let batch = ColumnBatch::pivot(rows.len(), rows.iter().map(|r| r.as_slice()), &[0, 1, 2, 3]);
    let (col, err) = vector::eval_batch(e, &batch);
    let mut scalar_err = None;
    let mut expected = Vec::new();
    for (i, row) in rows.iter().enumerate() {
        match e.eval_values(row) {
            Ok(v) => expected.push(v),
            Err(er) => {
                scalar_err = Some((i, er.to_string()));
                break;
            }
        }
    }
    let vec_err = err.map(|(i, er)| (i, er.to_string()));
    assert_eq!(vec_err, scalar_err, "error mismatch for {e}");
    assert_eq!(col.len(), expected.len(), "value count for {e}");
    for (i, want) in expected.iter().enumerate() {
        let got = col.value_at(i);
        assert_eq!(&got, want, "row {i} of {e}");
        assert_eq!(got.data_type(), want.data_type(), "variant at row {i} of {e}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Vectorised expression evaluation ≡ scalar, over random
    /// expressions and random batches (typed, mixed, NULL-heavy, empty,
    /// single-row), errors included.
    #[test]
    fn vectorised_expr_matches_scalar(
        rows in arb_rows(),
        tokens in arb_expr_tokens(),
    ) {
        let e = build_expr(&tokens);
        check_expr(&e, &rows);
        // All-NULL batches of the same shape, too.
        let null_rows: Vec<Vec<Value>> =
            rows.iter().map(|r| vec![Value::Null; r.len()]).collect();
        check_expr(&e, &null_rows);
        // And the single-row slices (morsel size one).
        for row in rows.iter().take(2) {
            check_expr(&e, std::slice::from_ref(row));
        }
    }
}

// ---------------------------------------------------------------------
// Certain pipelines: columnar on ≡ columnar off ≡ materialised
// ---------------------------------------------------------------------

fn arb_num() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        (0i64..5).prop_map(Value::Int),
        (0i64..8).prop_map(|i| Value::Float(i as f64 / 2.0)),
    ]
}

fn arb_catalog() -> impl Strategy<Value = Catalog> {
    (
        prop::collection::vec((arb_num(), arb_num(), arb_num()), 0..20),
        prop::collection::vec((arb_num(), arb_num()), 0..8),
    )
        .prop_map(|(rows0, rows1)| {
            let mut c = Catalog::new();
            let s0 = Arc::new(Schema::from_pairs(&[
                ("a", DataType::Unknown),
                ("b", DataType::Unknown),
                ("c", DataType::Unknown),
            ]));
            c.create(
                "t0",
                Relation::new_unchecked(
                    s0,
                    rows0.into_iter().map(|(a, b, x)| Tuple::new(vec![a, b, x])).collect(),
                ),
            )
            .unwrap();
            let s1 = Arc::new(Schema::from_pairs(&[
                ("d", DataType::Unknown),
                ("e", DataType::Unknown),
            ]));
            c.create(
                "t1",
                Relation::new_unchecked(
                    s1,
                    rows1.into_iter().map(|(d, e)| Tuple::new(vec![d, e])).collect(),
                ),
            )
            .unwrap();
            c
        })
}

type Token = (u8, u8, u8);

/// σ/π/hash-probe chains — exactly the stage shapes the columnar prefix
/// covers (breakers are shared between both paths).
fn build_chain(base: u8, tokens: &[Token]) -> PhysicalPlan {
    let (table, mut arity) = if base.is_multiple_of(2) {
        ("t0".to_string(), 3usize)
    } else {
        ("t1".to_string(), 2usize)
    };
    let mut plan = PhysicalPlan::Scan { table, alias: None };
    for &(op, a, b) in tokens {
        let col = |x: u8| Expr::ColumnIdx(x as usize % arity);
        match op % 4 {
            0 => {
                plan = PhysicalPlan::Filter {
                    input: Box::new(plan),
                    predicate: col(a).binary(cmp_op(b), Expr::lit(i64::from(b % 5))),
                };
            }
            1 => {
                // Conjunction with a comparison right side (vectorises)
                // or an IS NULL (vectorises) — NULL-heavy keys exercise
                // the Kleene kernel.
                let right = if b % 2 == 0 {
                    col(b).binary(BinaryOp::LtEq, col(a))
                } else {
                    Expr::IsNull { expr: Box::new(col(b)), negated: a % 2 == 0 }
                };
                plan = PhysicalPlan::Filter {
                    input: Box::new(plan),
                    predicate: col(a).binary(BinaryOp::Gt, Expr::lit(1i64)).and(right),
                };
            }
            2 => {
                let mut items: Vec<ProjectItem> = (0..arity)
                    .map(|i| {
                        ProjectItem::new(
                            Expr::ColumnIdx((i + a as usize) % arity),
                            format!("p{i}"),
                        )
                    })
                    .collect();
                items.push(ProjectItem::new(
                    col(b)
                        .binary(BinaryOp::Add, Expr::lit(1i64))
                        .binary(BinaryOp::Mul, col(a)),
                    "sum",
                ));
                arity += 1;
                plan = PhysicalPlan::Project { input: Box::new(plan), items };
            }
            _ => {
                let (rt, ra) = if b % 2 == 0 { ("t0", 3) } else { ("t1", 2) };
                plan = PhysicalPlan::HashJoin {
                    left: Box::new(plan),
                    right: Box::new(PhysicalPlan::Scan { table: rt.into(), alias: None }),
                    left_keys: vec![a as usize % arity],
                    right_keys: vec![b as usize % ra],
                };
                arity += ra;
            }
        }
    }
    plan
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Columnar pipeline ≡ row pipeline ≡ materialised plan, at 1/2/8
    /// threads and morsel sizes down to one row.
    #[test]
    fn columnar_pipeline_matches_row_pipeline(
        catalog in arb_catalog(),
        base in 0u8..2,
        tokens in prop::collection::vec((0u8..4, 0u8..16, 0u8..16), 0..6),
    ) {
        let plan = build_chain(base, &tokens);
        let materialized = plan.execute(&catalog).unwrap();
        for threads in [1usize, 2, 8] {
            let pool = ThreadPool::new(threads);
            for morsel in [1usize, 4] {
                let row = maybms_pipe::execute_opts(&plan, &catalog, &pool, morsel, false)
                    .unwrap();
                let col = maybms_pipe::execute_opts(&plan, &catalog, &pool, morsel, true)
                    .unwrap();
                prop_assert_eq!(
                    col.schema().names(),
                    row.schema().names(),
                    "schema, threads {} morsel {}", threads, morsel
                );
                prop_assert_eq!(
                    col.tuples(),
                    row.tuples(),
                    "columnar vs row, threads {} morsel {}", threads, morsel
                );
                prop_assert_eq!(
                    col.tuples(),
                    materialized.tuples(),
                    "columnar vs materialised, threads {} morsel {}", threads, morsel
                );
            }
        }
    }
}

// ---------------------------------------------------------------------
// U-relational pipelines: UStream columnar ≡ row (WSDs ride along)
// ---------------------------------------------------------------------

fn arb_cell() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        (0i64..4).prop_map(Value::Int),
        (0i64..6).prop_map(|i| Value::Float(i as f64 / 2.0)),
    ]
}

fn arb_text() -> impl Strategy<Value = Value> {
    prop::sample::select(vec!["a", "b", "c"]).prop_map(Value::str)
}

fn uschema() -> Arc<Schema> {
    Arc::new(Schema::from_pairs(&[
        ("k", DataType::Unknown),
        ("v", DataType::Unknown),
        ("s", DataType::Text),
    ]))
}

fn arb_urelation() -> impl Strategy<Value = URelation> {
    (
        prop::collection::vec((arb_cell(), arb_cell(), arb_text()), 0..14),
        prop::collection::vec(prop::collection::vec((0u32..3, 0u16..2), 0..3), 0..14),
    )
        .prop_map(|(rows, raw_wsds)| {
            let tuples = rows
                .into_iter()
                .zip(raw_wsds.into_iter().chain(std::iter::repeat(Vec::new())))
                .map(|((k, v, s), raw)| {
                    let wsd = Wsd::from_assignments(
                        raw.into_iter().map(|(v, a)| Assignment::new(Var(v), a)).collect(),
                    )
                    .unwrap_or_else(Wsd::tautology);
                    UTuple::new(Tuple::new(vec![k, v, s]), wsd)
                })
                .collect();
            URelation::new(uschema(), tuples)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// UStream σ → π → self-probe chains: columnar collect ≡ row collect
    /// — data, WSDs (conjunction + unsatisfiable drops), and order — at
    /// 1/2/8 threads, single-row morsels included.
    #[test]
    fn ustream_columnar_matches_row(
        u in arb_urelation(),
        pa in 0u8..3,
        pb in 0u8..5,
        join_raw in 0u8..2,
    ) {
        let join = join_raw == 1;
        let pred = Expr::ColumnIdx(pa as usize % 3)
            .binary(cmp_op(pb), Expr::lit(i64::from(pb % 3)));
        let items = [
            ProjectItem::new(Expr::ColumnIdx(0), "k"),
            ProjectItem::new(
                Expr::ColumnIdx(1).binary(BinaryOp::Add, Expr::lit(1i64)),
                "v1",
            ),
        ];
        let build = |u: &URelation| -> maybms_urel::Result<UStream> {
            let mut s = UStream::new(u.clone()).filter(&pred)?;
            if join {
                s = s.hash_join(u.clone(), &[0], &[0])?;
            }
            s.project(&items)
        };
        for threads in [1usize, 2, 8] {
            let pool = ThreadPool::new(threads);
            let row = build(&u).unwrap().collect_opts(&pool, 1, false);
            let col = build(&u).unwrap().collect_opts(&pool, 1, true);
            match (row, col) {
                (Ok(r), Ok(c)) => prop_assert_eq!(
                    c.tuples(),
                    r.tuples(),
                    "columnar vs row U-stream, threads {}", threads
                ),
                // Mixed-type data can error; both paths must agree on it.
                (Err(re), Err(ce)) => prop_assert_eq!(
                    re.to_string(),
                    ce.to_string(),
                    "columnar vs row U-stream error, threads {}", threads
                ),
                (r, c) => prop_assert!(
                    false,
                    "path divergence at {} threads: row {:?} vs columnar {:?}",
                    threads, r.is_ok(), c.is_ok()
                ),
            }
        }
    }
}

// ---------------------------------------------------------------------
// Pinned Value-semantics regressions (scalar ≡ vectorised, each)
// ---------------------------------------------------------------------

/// Run a plan through both pipeline paths; they must agree exactly —
/// values or error message. (The materialised executor triangulates on
/// success; on error it may legitimately surface a *different* row's
/// error, since it runs stage-major while fused pipelines run
/// row-major — the columnar ≡ row contract is the strict one.)
fn three_way(plan: &PhysicalPlan, catalog: &Catalog) {
    let pool = ThreadPool::new(2);
    let materialized = plan.execute(catalog);
    let row = maybms_pipe::execute_opts(plan, catalog, &pool, 1, false);
    let col = maybms_pipe::execute_opts(plan, catalog, &pool, 1, true);
    match (row, col) {
        (Ok(r), Ok(c)) => {
            assert_eq!(r.tuples(), c.tuples(), "columnar vs row");
            assert_eq!(
                materialized.expect("pipelines succeeded").tuples(),
                r.tuples(),
                "vs materialised"
            );
        }
        (Err(re), Err(ce)) => {
            assert_eq!(re.to_string(), ce.to_string(), "columnar vs row error");
            assert!(materialized.is_err(), "materialised must error too");
        }
        (r, c) => panic!("path divergence: row {r:?} vs columnar {c:?}"),
    }
}

fn one_table(rows: Vec<Vec<Value>>) -> Catalog {
    let mut c = Catalog::new();
    let schema = Arc::new(Schema::from_pairs(&[
        ("a", DataType::Unknown),
        ("b", DataType::Unknown),
    ]));
    c.create(
        "t",
        Relation::new_unchecked(schema, rows.into_iter().map(Tuple::new).collect()),
    )
    .unwrap();
    c
}

fn scan() -> PhysicalPlan {
    PhysicalPlan::Scan { table: "t".into(), alias: None }
}

#[test]
fn regression_concat_with_null() {
    let c = one_table(vec![
        vec![Value::str("a"), Value::str("b")],
        vec![Value::str("x"), Value::Null],
        vec![Value::Null, Value::Null],
    ]);
    let plan = PhysicalPlan::Project {
        input: Box::new(scan()),
        items: vec![ProjectItem::new(
            Expr::col("a").binary(BinaryOp::Concat, Expr::col("b")),
            "ab",
        )],
    };
    three_way(&plan, &c);
    // And as a predicate operand: (a || b) IS NULL.
    let plan = PhysicalPlan::Filter {
        input: Box::new(scan()),
        predicate: Expr::IsNull {
            expr: Box::new(Expr::col("a").binary(BinaryOp::Concat, Expr::col("b"))),
            negated: false,
        },
    };
    three_way(&plan, &c);
}

#[test]
fn regression_mod_by_zero() {
    // Integer % 0 errors at row 1 on every path; rows before it flow.
    let c = one_table(vec![
        vec![Value::Int(7), Value::Int(2)],
        vec![Value::Int(7), Value::Int(0)],
    ]);
    let plan = PhysicalPlan::Project {
        input: Box::new(scan()),
        items: vec![ProjectItem::new(
            Expr::col("a").binary(BinaryOp::Mod, Expr::col("b")),
            "m",
        )],
    };
    three_way(&plan, &c);
    // Float % 0.0, and the Int % Float(0.0) cross-type case.
    let c = one_table(vec![vec![Value::Float(7.5), Value::Float(0.0)]]);
    three_way(&plan, &c);
    let c = one_table(vec![vec![Value::Int(7), Value::Float(0.0)]]);
    three_way(&plan, &c);
}

#[test]
fn regression_float_int_cross_comparisons() {
    // Mixed Int/Float comparisons — including the > 2^53 zone where the
    // scalar path's f64 widening makes distinct ints compare Equal.
    let big = 1i64 << 60;
    let c = one_table(vec![
        vec![Value::Int(2), Value::Float(2.0)],
        vec![Value::Int(2), Value::Float(2.5)],
        vec![Value::Int(big), Value::Int(big + 1)],
        vec![Value::Null, Value::Float(1.0)],
    ]);
    for op in [BinaryOp::Eq, BinaryOp::NotEq, BinaryOp::Lt, BinaryOp::GtEq] {
        let plan = PhysicalPlan::Filter {
            input: Box::new(scan()),
            predicate: Expr::col("a").binary(op, Expr::col("b")),
        };
        three_way(&plan, &c);
    }
}

#[test]
fn regression_mixed_variant_column_concat() {
    // A mixed Int/Float column must render per-variant under || —
    // Int(1) is "1", Float(1.0) is "1.0" — on every path.
    let c = one_table(vec![
        vec![Value::Int(1), Value::str("x")],
        vec![Value::Float(1.0), Value::str("x")],
    ]);
    let plan = PhysicalPlan::Project {
        input: Box::new(scan()),
        items: vec![ProjectItem::new(
            Expr::col("a").binary(BinaryOp::Concat, Expr::col("b")),
            "ax",
        )],
    };
    three_way(&plan, &c);
    let pool = ThreadPool::new(1);
    let out = maybms_pipe::execute_opts(&plan, &c, &pool, 1, true).unwrap();
    assert_eq!(out.tuples()[0].value(0), &Value::str("1x"));
    assert_eq!(out.tuples()[1].value(0), &Value::str("1.0x"));
}

#[test]
fn regression_division_error_vs_filter_order() {
    // Row 0 passes the filter and then divides by zero in the project;
    // row 1 would error in the filter — row-major order means the
    // project's row-0 error must win on every path.
    let c = one_table(vec![
        vec![Value::Int(1), Value::Int(0)],
        vec![Value::str("s"), Value::Int(1)],
    ]);
    let plan = PhysicalPlan::Project {
        input: Box::new(PhysicalPlan::Filter {
            input: Box::new(scan()),
            predicate: Expr::col("a").binary(BinaryOp::LtEq, Expr::lit(5i64)),
        }),
        items: vec![ProjectItem::new(
            Expr::lit(1i64).binary(BinaryOp::Div, Expr::col("b")),
            "q",
        )],
    };
    three_way(&plan, &c);
}

#[test]
fn regression_fold_keeps_error_beside_constant_false() {
    // `(1/0 = 1) AND false`: the scalar evaluator always runs the left
    // side, so bind-time folding must not rewrite the predicate to
    // `false` — the pipelined paths must error exactly like the
    // materialising one.
    let c = one_table(vec![vec![Value::Int(1), Value::Int(2)]]);
    let boom =
        Expr::lit(1i64).binary(BinaryOp::Div, Expr::lit(0i64)).eq(Expr::lit(1i64));
    let plan = PhysicalPlan::Filter {
        input: Box::new(scan()),
        predicate: boom.clone().and(Expr::lit(false)),
    };
    assert!(plan.execute(&c).is_err(), "materialising path errors");
    three_way(&plan, &c);
    // Mirrored: `false AND (1/0 = 1)` short-circuits — no error, empty.
    let plan = PhysicalPlan::Filter {
        input: Box::new(scan()),
        predicate: Expr::lit(false).and(boom),
    };
    assert_eq!(plan.execute(&c).unwrap().len(), 0);
    three_way(&plan, &c);
}

#[test]
fn explain_marks_vectorised_stages() {
    if !maybms_pipe::columnar_default() {
        return; // MAYBMS_COLUMNAR=0 leg: nothing vectorises.
    }
    let plan = PhysicalPlan::Project {
        input: Box::new(PhysicalPlan::Filter {
            input: Box::new(scan()),
            predicate: Expr::col("a").binary(BinaryOp::Gt, Expr::lit(1i64)),
        }),
        items: vec![ProjectItem::new(
            Expr::col("a").binary(BinaryOp::Add, Expr::col("b")),
            "s",
        )],
    };
    let text = maybms_pipe::explain(&plan);
    assert!(text.contains("-> filter (a > 1) (vectorised)"), "{text}");
    assert!(text.contains("(vectorised)\n"), "{text}");
    // CASE stays scalar — and says so by not being marked.
    let plan = PhysicalPlan::Filter {
        input: Box::new(scan()),
        predicate: Expr::Case {
            branches: vec![(Expr::col("a").binary(BinaryOp::Gt, Expr::lit(0i64)), Expr::lit(true))],
            else_expr: Some(Box::new(Expr::lit(false))),
        },
    };
    let text = maybms_pipe::explain(&plan);
    assert!(!text.contains("(vectorised)"), "{text}");
}

#[test]
fn ustream_constant_filters_fold_at_bind() {
    let u = URelation::new(
        uschema(),
        vec![UTuple::new(
            Tuple::new(vec![Value::Int(1), Value::Int(2), Value::str("a")]),
            Wsd::tautology(),
        )],
    );
    // σ_true records no stage.
    let s = UStream::new(u.clone()).filter(&Expr::lit(true)).unwrap();
    assert_eq!(s.stage_count(), 0);
    // σ_false empties the stream outright (infallible prior stages).
    let s = UStream::new(u.clone())
        .filter(&Expr::lit(1i64).eq(Expr::lit(2i64)))
        .unwrap();
    assert_eq!(s.stage_count(), 0);
    assert_eq!(s.collect().unwrap().len(), 0);
    // …but a fallible stage before it must keep raising its error.
    let boom = [ProjectItem::new(
        Expr::lit(1i64).binary(BinaryOp::Div, Expr::lit(0i64)),
        "boom",
    )];
    let s = UStream::new(u)
        .project(&boom)
        .unwrap()
        .filter(&Expr::lit(false))
        .unwrap();
    assert!(s.collect().is_err(), "σ_false must not swallow the projection error");
}
