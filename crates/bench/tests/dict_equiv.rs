//! Dictionary-code paths ≡ string paths.
//!
//! The columnar store dictionary-encodes text columns, and two executor
//! fast paths consume the u32 codes directly: the hash-join build side
//! (`fuse::build_table`) and the dense-code grouped-aggregation sink
//! (`groupby::dense_dict_groups`). Both must be *invisible*: joining or
//! grouping on a dictionary-encoded columnar table has to produce output
//! bit-identical to the row-major string path — same tuples, same order,
//! same group key variants — at 1/2/8 threads and morsel sizes down to a
//! single row.
//!
//! The string universe is tiny (heavy duplication, so many rows share a
//! code and hash buckets collide across distinct keys), and NULL keys are
//! frequent (they must never match in a join and must form their own
//! group in an aggregation).

use std::sync::Arc;

use maybms_engine::ops::{AggCall, AggFunc};
use maybms_engine::{
    Catalog, DataType, Expr, PhysicalPlan, Relation, Schema, Tuple, Value,
};
use maybms_par::ThreadPool;
use proptest::prelude::*;

fn arb_key() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        prop::sample::select(vec!["a", "b", "c", "dd"]).prop_map(Value::str),
    ]
}

fn arb_payload() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        (0i64..6).prop_map(Value::Int),
        (0i64..8).prop_map(|i| Value::Float(i as f64 / 2.0)),
    ]
}

fn table(name: &str, rows: Vec<(Value, Value)>) -> (String, Relation) {
    let schema = Arc::new(Schema::from_pairs(&[
        (&format!("{name}_k"), DataType::Text),
        (&format!("{name}_v"), DataType::Unknown),
    ]));
    let tuples = rows.into_iter().map(|(k, v)| Tuple::new(vec![k, v])).collect();
    (name.to_string(), Relation::new_unchecked(schema, tuples))
}

/// Two catalogs over the same logical data: every table row-major in
/// one, columnar-at-rest (text keys dictionary-encoded) in the other —
/// forced explicitly, independent of the `MAYBMS_COLUMNAR_STORE` gate.
fn catalogs(tables: Vec<(String, Relation)>) -> (Catalog, Catalog) {
    let mut rows = Catalog::new();
    let mut cols = Catalog::new();
    for (name, r) in tables {
        rows.create(&name, r.clone()).unwrap();
        *rows.get_mut(&name).unwrap() = r.clone();
        cols.create(&name, r.clone()).unwrap();
        let compacted = r.compact();
        assert!(compacted.is_columnar());
        *cols.get_mut(&name).unwrap() = compacted;
    }
    (rows, cols)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Hash join keyed on a text column: the dictionary-code build side
    /// over the columnar catalog ≡ the string build side over the
    /// row-major catalog, bit-identically, at every thread count.
    #[test]
    fn dict_join_build_matches_string_path(
        build in prop::collection::vec((arb_key(), arb_payload()), 0..24),
        probe in prop::collection::vec((arb_key(), arb_payload()), 0..24),
    ) {
        let (rows, cols) =
            catalogs(vec![table("b", build), table("p", probe)]);
        let plan = PhysicalPlan::HashJoin {
            left: Box::new(PhysicalPlan::Scan { table: "p".into(), alias: None }),
            right: Box::new(PhysicalPlan::Scan { table: "b".into(), alias: None }),
            left_keys: vec![0],
            right_keys: vec![0],
        };
        let want = plan.execute(&rows).unwrap();
        // NULL never equals NULL: no output row may carry a NULL key.
        for t in want.tuples() {
            prop_assert!(t.value(0) != &Value::Null);
        }
        for threads in [1usize, 2, 8] {
            let pool = ThreadPool::new(threads);
            for morsel in [1usize, 4] {
                for catalog in [&rows, &cols] {
                    let got =
                        maybms_pipe::execute_with(&plan, catalog, &pool, morsel).unwrap();
                    prop_assert_eq!(
                        got.tuples(), want.tuples(),
                        "threads {} morsel {}", threads, morsel
                    );
                }
            }
        }
    }

    /// GROUP BY a text key: the dense-code sink over the columnar
    /// catalog ≡ the hashed sink over the row-major catalog ≡ the
    /// materialising aggregate, bit-identically, at every thread count.
    #[test]
    fn dense_dict_group_matches_hashed_group(
        data in prop::collection::vec((arb_key(), arb_payload()), 0..32),
    ) {
        let (rows, cols) = catalogs(vec![table("t", data)]);
        let plan = PhysicalPlan::Aggregate {
            input: Box::new(PhysicalPlan::Scan { table: "t".into(), alias: None }),
            group_exprs: vec![Expr::ColumnIdx(0)],
            group_names: vec!["g".into()],
            aggs: vec![
                AggCall::new(AggFunc::Count, None, "n"),
                AggCall::new(AggFunc::Sum, Some(Expr::ColumnIdx(1)), "s"),
                AggCall::new(AggFunc::Min, Some(Expr::ColumnIdx(1)), "lo"),
            ],
        };
        let want = plan.execute(&rows).unwrap();
        for threads in [1usize, 2, 8] {
            let pool = ThreadPool::new(threads);
            for morsel in [1usize, 4] {
                for catalog in [&rows, &cols] {
                    let got =
                        maybms_pipe::execute_with(&plan, catalog, &pool, morsel).unwrap();
                    prop_assert_eq!(
                        got.tuples(), want.tuples(),
                        "threads {} morsel {}", threads, morsel
                    );
                }
            }
        }
    }
}
