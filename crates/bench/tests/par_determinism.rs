//! Determinism property tests for the parallel execution paths.
//!
//! `maybms-par` callers promise that parallel output is **identical** to
//! the sequential path — same tuples, same order, same WSDs, bit-equal
//! confidence values — at any thread count. These properties check that
//! promise on explicit 1/2/8-thread pools with chunk sizes small enough
//! that tiny random inputs really split across tasks, over the same
//! adversarial input families as `op_equiv.rs`: NULL join keys (which
//! must never match), cross-type numeric keys (1 == 1.0), and
//! conflicting WSDs (whose join pairs must drop as unsatisfiable).

use maybms_conf::{dklr, exact, karp_luby::KarpLuby, Dnf};
use maybms_engine::{ops, BinaryOp, DataType, Expr, Relation, Schema, Tuple, Value};
use maybms_par::ThreadPool;
use maybms_urel::{algebra, Assignment, URelation, UTuple, Var, WorldTable, Wsd};
use proptest::prelude::*;
use std::sync::Arc;

/// Thread counts every property is checked at (1 must equal 2 must equal
/// 8 must equal the sequential reference).
const THREADS: [usize; 3] = [1, 2, 8];

/// Chunk size small enough that 0..24-row relations split across tasks.
const TINY_CHUNK: usize = 3;

fn arb_num() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        (0i64..5).prop_map(Value::Int),
        (0i64..8).prop_map(|i| Value::Float(i as f64 / 2.0)),
    ]
}

fn arb_text() -> impl Strategy<Value = Value> {
    prop::sample::select(vec!["a", "b", "c"]).prop_map(Value::str)
}

fn schema3() -> Arc<Schema> {
    Arc::new(Schema::from_pairs(&[
        ("k", DataType::Unknown),
        ("v", DataType::Unknown),
        ("s", DataType::Text),
    ]))
}

fn arb_relation() -> impl Strategy<Value = Relation> {
    prop::collection::vec((arb_num(), arb_num(), arb_text()), 0..24).prop_map(|rows| {
        Relation::new_unchecked(
            schema3(),
            rows.into_iter().map(|(k, v, s)| Tuple::new(vec![k, v, s])).collect(),
        )
    })
}

/// A U-relation over three shared variables: self-joins hit conflicting
/// assignments, i.e. unsatisfiable-WSD drops.
fn arb_urelation() -> impl Strategy<Value = (WorldTable, URelation)> {
    (
        prop::collection::vec((arb_num(), arb_num(), arb_text()), 0..16),
        prop::collection::vec(prop::collection::vec((0u32..3, 0u16..2), 0..3), 0..16),
    )
        .prop_map(|(rows, raw_wsds)| {
            let mut wt = WorldTable::new();
            for _ in 0..3 {
                wt.new_var(&[0.5, 0.5]).unwrap();
            }
            let tuples = rows
                .into_iter()
                .zip(raw_wsds.into_iter().chain(std::iter::repeat(Vec::new())))
                .map(|((k, v, s), raw)| {
                    let wsd = Wsd::from_assignments(
                        raw.into_iter()
                            .map(|(v, a)| Assignment::new(Var(v), a))
                            .collect(),
                    )
                    .unwrap_or_else(Wsd::tautology);
                    UTuple::new(Tuple::new(vec![k, v, s]), wsd)
                })
                .collect();
            (wt, URelation::new(schema3(), tuples))
        })
}

/// A DNF with independent blocks (exercising parallel partitions) plus a
/// few cross-block clauses (forcing Shannon nodes above them).
fn arb_dnf() -> impl Strategy<Value = (WorldTable, Dnf)> {
    (
        2usize..5,                                         // blocks
        prop::collection::vec((0u16..2, 0u16..2), 1..4),   // cross clauses
    )
        .prop_map(|(blocks, cross)| {
            let mut wt = WorldTable::new();
            let mut vars = Vec::new();
            let mut clauses = Vec::new();
            for b in 0..blocks {
                let x = wt.new_var(&[0.4, 0.6]).unwrap();
                let y = wt.new_var(&[0.3 + 0.1 * (b % 3) as f64, 0.7 - 0.1 * (b % 3) as f64]).unwrap();
                vars.push((x, y));
                clauses.push(
                    Wsd::from_assignments(vec![
                        Assignment::new(x, 1),
                        Assignment::new(y, 1),
                    ])
                    .unwrap(),
                );
                clauses.push(
                    Wsd::from_assignments(vec![
                        Assignment::new(x, 0),
                        Assignment::new(y, 0),
                    ])
                    .unwrap(),
                );
            }
            for (i, &(a0, a1)) in cross.iter().enumerate() {
                let (x, _) = vars[i % vars.len()];
                let (_, y) = vars[(i + 1) % vars.len()];
                if let Some(w) = Wsd::from_assignments(vec![
                    Assignment::new(x, a0),
                    Assignment::new(y, a1),
                ]) {
                    clauses.push(w);
                }
            }
            (wt, Dnf::new(clauses))
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// σ: the chunk-parallel selection vector equals the sequential scan,
    /// order included, at 1/2/8 threads.
    #[test]
    fn par_filter_identical(r in arb_relation()) {
        let pred = Expr::col("v").binary(BinaryOp::Gt, Expr::lit(1i64));
        let seq = ops::filter(&r, &pred).unwrap();
        for threads in THREADS {
            let pool = ThreadPool::new(threads);
            let par = ops::filter_with(&r, &pred, &pool, TINY_CHUNK).unwrap();
            prop_assert_eq!(seq.tuples(), par.tuples(), "threads = {}", threads);
        }
    }

    /// ⋈: the partitioned-build / chunked-probe join equals the
    /// sequential join tuple-for-tuple (order included), NULL keys and
    /// cross-type numeric keys included.
    #[test]
    fn par_hash_join_identical(l in arb_relation(), r in arb_relation()) {
        let seq = ops::hash_join(&l, &r, &[0], &[0]).unwrap();
        for threads in THREADS {
            let pool = ThreadPool::new(threads);
            let par = ops::hash_join_with(&l, &r, &[0], &[0], &pool, TINY_CHUNK).unwrap();
            prop_assert_eq!(seq.tuples(), par.tuples(), "threads = {}", threads);
        }
    }

    /// Multi-column keys take the generic (non-columnar) path; it must be
    /// deterministic too.
    #[test]
    fn par_hash_join_two_keys_identical(l in arb_relation(), r in arb_relation()) {
        let seq = ops::hash_join(&l, &r, &[0, 1], &[0, 1]).unwrap();
        for threads in THREADS {
            let pool = ThreadPool::new(threads);
            let par =
                ops::hash_join_with(&l, &r, &[0, 1], &[0, 1], &pool, TINY_CHUNK).unwrap();
            prop_assert_eq!(seq.tuples(), par.tuples(), "threads = {}", threads);
        }
    }

    /// Grouping: chunk-local groups merged in chunk order equal the
    /// sequential first-seen key order and ascending member lists.
    #[test]
    fn par_group_indices_identical(r in arb_relation()) {
        let exprs = [Expr::col("k")];
        let seq = ops::group_indices(&r, &exprs).unwrap();
        for threads in THREADS {
            let pool = ThreadPool::new(threads);
            let par = ops::group_indices_with(&r, &exprs, &pool, TINY_CHUNK).unwrap();
            prop_assert_eq!(&seq, &par, "threads = {}", threads);
        }
    }

    /// U-relational σ: WSDs ride along unchanged, order preserved.
    #[test]
    fn par_select_u_identical((_wt, u) in arb_urelation()) {
        let pred = Expr::col("v").binary(BinaryOp::Gt, Expr::lit(1i64));
        let seq = algebra::select(&u, &pred).unwrap();
        for threads in THREADS {
            let pool = ThreadPool::new(threads);
            let par = algebra::select_with(&u, &pred, &pool, TINY_CHUNK).unwrap();
            prop_assert_eq!(seq.tuples(), par.tuples(), "threads = {}", threads);
        }
    }

    /// U-relational self-⋈: conflicting WSDs (unsatisfiable conjunctions)
    /// drop identically in the parallel probe, and surviving (data, wsd)
    /// pairs come out in the sequential order.
    #[test]
    fn par_hash_join_u_identical((_wt, u) in arb_urelation()) {
        let seq = algebra::hash_join(&u, &u, &[0], &[0]).unwrap();
        for threads in THREADS {
            let pool = ThreadPool::new(threads);
            let par = algebra::hash_join_with(&u, &u, &[0], &[0], &pool, TINY_CHUNK).unwrap();
            prop_assert_eq!(seq.tuples(), par.tuples(), "threads = {}", threads);
        }
    }

    /// Exact confidence: parallel independent-partition evaluation is
    /// bit-identical to the sequential d-tree, with identical node
    /// statistics (memoization off — the standard `conf()` path).
    #[test]
    fn par_exact_conf_bit_identical((wt, dnf) in arb_dnf()) {
        let opts = exact::ExactOptions::standard();
        let (seq_p, seq_stats) = exact::probability_with(&dnf, &wt, &opts).unwrap();
        for threads in THREADS {
            let pool = ThreadPool::new(threads);
            let (par_p, par_stats) =
                exact::probability_par(&dnf, &wt, &opts, &pool, 1).unwrap();
            prop_assert_eq!(seq_p.to_bits(), par_p.to_bits(), "threads = {}", threads);
            prop_assert_eq!(&seq_stats, &par_stats, "threads = {}", threads);
        }
    }

    /// Instrumented execution: attaching a per-pipeline stats collector
    /// never changes the output, and the collected per-stage `(rows_in,
    /// rows_out, build_rows)` counts are identical at 1/2/8 threads with
    /// single-row morsels (order-independent sums — the instrumentation
    /// side of the determinism contract).
    #[test]
    fn instrumented_ustream_stats_identical((_wt, u) in arb_urelation()) {
        use maybms_pipe::UStream;
        let pred = Expr::col("v").binary(BinaryOp::Gt, Expr::lit(0i64));
        let build_stream = || {
            UStream::new(u.clone())
                .filter(&pred)
                .unwrap()
                .hash_join(u.clone(), &[0], &[0])
                .unwrap()
        };
        let p1 = ThreadPool::new(1);
        let reference = build_stream().collect_with(&p1, 1).unwrap();
        let fingerprint = |ps: &maybms_obs::PipelineStats| -> Vec<(u64, u64, u64)> {
            ps.stages
                .iter()
                .map(|s| (s.rows_in.get(), s.rows_out.get(), s.build_rows.get()))
                .collect()
        };
        let mut prints = Vec::new();
        for threads in THREADS {
            let pool = ThreadPool::new(threads);
            let stream = build_stream();
            let ps = stream.stats_skeleton("par determinism");
            let got = stream
                .collect_stats(&pool, 1, maybms_pipe::columnar_default(), Some(&ps))
                .unwrap();
            prop_assert_eq!(got.tuples(), reference.tuples(), "threads = {}", threads);
            prints.push(fingerprint(&ps));
        }
        prop_assert_eq!(&prints[1], &prints[0], "stats, threads 2 vs 1");
        prop_assert_eq!(&prints[2], &prints[0], "stats, threads 8 vs 1");
    }

    /// Seeded Karp–Luby and DKLR: estimates and sample counts are
    /// bit-identical at every thread count for the same seed.
    #[test]
    fn par_sampling_bit_identical((wt, dnf) in arb_dnf(), seed in 0u64..1000) {
        let kl = KarpLuby::new(&dnf, &wt).unwrap();
        let p1 = ThreadPool::new(1);
        if kl.constant_value().is_some() {
            return Ok(());
        }
        let est_ref = kl.estimate_seeded(&wt, 2500, seed, &p1);
        let opts = dklr::DklrOptions::new(0.25, 0.2);
        let aa_ref = dklr::approximate_seeded(&kl, &wt, &opts, seed, &p1).unwrap();
        for threads in [2usize, 8] {
            let pool = ThreadPool::new(threads);
            let est = kl.estimate_seeded(&wt, 2500, seed, &pool);
            prop_assert_eq!(est_ref.to_bits(), est.to_bits(), "threads = {}", threads);
            let aa = dklr::approximate_seeded(&kl, &wt, &opts, seed, &pool).unwrap();
            prop_assert_eq!(aa_ref.estimate.to_bits(), aa.estimate.to_bits());
            prop_assert_eq!(aa_ref.samples, aa.samples, "threads = {}", threads);
        }
    }
}

/// Non-property check: an unsatisfiable self-join pair (x↦0 ∧ x↦1) must
/// drop in both paths — the `op_equiv.rs` edge case, pinned explicitly.
#[test]
fn unsatisfiable_wsd_pairs_drop_in_parallel_join() {
    let mut wt = WorldTable::new();
    let x = wt.new_var(&[0.5, 0.5]).unwrap();
    let schema = Arc::new(Schema::from_pairs(&[("k", DataType::Int)]));
    let u = URelation::new(
        schema,
        vec![
            UTuple::new(Tuple::new(vec![Value::Int(1)]), Wsd::of(x, 0)),
            UTuple::new(Tuple::new(vec![Value::Int(1)]), Wsd::of(x, 1)),
        ],
    );
    let seq = algebra::hash_join(&u, &u, &[0], &[0]).unwrap();
    assert_eq!(seq.len(), 2, "only the self-consistent pairs survive");
    for threads in THREADS {
        let pool = ThreadPool::new(threads);
        let par = algebra::hash_join_with(&u, &u, &[0], &[0], &pool, 1).unwrap();
        assert_eq!(seq.tuples(), par.tuples(), "threads = {threads}");
    }
}

/// NULL keys never match, in parallel exactly as sequentially.
#[test]
fn null_keys_never_match_in_parallel_join() {
    let r = maybms_engine::rel(
        &[("k", DataType::Int)],
        vec![vec![Value::Null], vec![Value::Null], vec![1.into()], vec![1.into()]],
    );
    let seq = ops::hash_join(&r, &r, &[0], &[0]).unwrap();
    assert_eq!(seq.len(), 4, "2×2 non-NULL pairs only");
    for threads in THREADS {
        let pool = ThreadPool::new(threads);
        let par = ops::hash_join_with(&r, &r, &[0], &[0], &pool, 1).unwrap();
        assert_eq!(seq.tuples(), par.tuples(), "threads = {threads}");
    }
}
