//! Operator-equivalence property tests for the zero-clone execution core.
//!
//! The optimized operators (selection vectors, hashed join keys, batched
//! row buffers, inline WSDs) must agree tuple-for-tuple with the
//! seed-faithful naive implementations in `maybms_bench::naive` — exactly
//! (order included) for order-defined operators (σ, distinct, sort), and
//! as bags for joins. Inputs include NULL join keys (which must never
//! match) and conflicting WSDs (whose join pairs must be dropped as
//! unsatisfiable).

use maybms_bench::naive;
use maybms_engine::{ops, BinaryOp, DataType, Expr, Relation, Schema, Tuple, Value};
use maybms_urel::{algebra, Assignment, URelation, UTuple, Var, WorldTable, Wsd};
use proptest::prelude::*;
use std::sync::Arc;

/// Numeric-or-NULL values: usable as join keys and in comparison
/// predicates, with cross-type Int/Float duplicates (1 == 1.0).
fn arb_num() -> impl Strategy<Value = Value> {
    prop_oneof![
        Just(Value::Null),
        (0i64..5).prop_map(Value::Int),
        (0i64..8).prop_map(|i| Value::Float(i as f64 / 2.0)),
    ]
}

/// Text payload (exercises `Arc<str>` sharing through the operators).
fn arb_text() -> impl Strategy<Value = Value> {
    prop::sample::select(vec!["a", "b", "c"]).prop_map(Value::str)
}

fn schema3() -> Arc<Schema> {
    Arc::new(Schema::from_pairs(&[
        ("k", DataType::Unknown),
        ("v", DataType::Unknown),
        ("s", DataType::Text),
    ]))
}

/// A relation over (k, v, s) with NULLs and cross-type numeric duplicates
/// in the key column.
fn arb_relation() -> impl Strategy<Value = Relation> {
    prop::collection::vec((arb_num(), arb_num(), arb_text()), 0..24).prop_map(|rows| {
        Relation::new_unchecked(
            schema3(),
            rows.into_iter().map(|(k, v, s)| Tuple::new(vec![k, v, s])).collect(),
        )
    })
}

/// A world table with three small variables plus a U-relation whose WSDs
/// mention them — self-joins hit conflicting assignments (unsatisfiable
/// conjunctions that the join must drop).
fn arb_urelation() -> impl Strategy<Value = (WorldTable, URelation)> {
    (
        prop::collection::vec((arb_num(), arb_num(), arb_text()), 0..16),
        prop::collection::vec(prop::collection::vec((0u32..3, 0u16..2), 0..3), 0..16),
    )
        .prop_map(|(rows, raw_wsds)| {
            let mut wt = WorldTable::new();
            for _ in 0..3 {
                wt.new_var(&[0.5, 0.5]).unwrap();
            }
            let tuples = rows
                .into_iter()
                .zip(raw_wsds.into_iter().chain(std::iter::repeat(Vec::new())))
                .map(|((k, v, s), raw)| {
                    let wsd = Wsd::from_assignments(
                        raw.into_iter()
                            .map(|(v, a)| Assignment::new(Var(v), a))
                            .collect(),
                    )
                    .unwrap_or_else(Wsd::tautology);
                    UTuple::new(Tuple::new(vec![k, v, s]), wsd)
                })
                .collect();
            (wt, URelation::new(schema3(), tuples))
        })
}

fn bag(r: &Relation) -> Vec<Tuple> {
    let mut v = r.tuples().to_vec();
    v.sort();
    v
}

fn ubag(u: &URelation) -> Vec<(Tuple, Wsd)> {
    let mut v: Vec<(Tuple, Wsd)> =
        u.tuples().iter().map(|t| (t.data.clone(), t.wsd.clone())).collect();
    v.sort();
    v
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// σ: selection-vector filter equals the cloning filter, order and all.
    #[test]
    fn filter_matches_naive(r in arb_relation()) {
        let pred = Expr::col("v").binary(BinaryOp::Gt, Expr::lit(1i64));
        let a = ops::filter(&r, &pred).unwrap();
        let b = naive::filter(&r, &pred).unwrap();
        prop_assert_eq!(a.tuples(), b.tuples());
    }

    /// distinct: index-dedup equals the double-clone dedup, order included.
    #[test]
    fn distinct_matches_naive(r in arb_relation()) {
        prop_assert_eq!(ops::distinct(&r).tuples(), naive::distinct(&r).tuples());
    }

    /// sort: gather-based sort equals the clone-based sort exactly
    /// (stability included).
    #[test]
    fn sort_matches_naive(r in arb_relation()) {
        let keys = [ops::SortKey::desc(Expr::col("v")), ops::SortKey::asc(Expr::col("k"))];
        let a = ops::sort(&r, &keys).unwrap();
        let b = naive::sort(&r, &keys).unwrap();
        prop_assert_eq!(a.tuples(), b.tuples());
    }

    /// Hashed join equals the Vec-keyed join as a bag, including NULL join
    /// keys (never match) and cross-type numeric keys (1 == 1.0).
    #[test]
    fn hash_join_matches_naive(l in arb_relation(), r in arb_relation()) {
        let a = ops::hash_join(&l, &r, &[0], &[0]).unwrap();
        let b = naive::hash_join(&l, &r, &[0], &[0]).unwrap();
        prop_assert_eq!(bag(&a), bag(&b));
    }

    /// Hashed join also equals a nested-loop join with the equivalent
    /// equality predicate (independent oracle).
    #[test]
    fn hash_join_matches_nested_loop(l in arb_relation(), r in arb_relation()) {
        let a = ops::hash_join(&l, &r, &[0], &[0]).unwrap();
        let pred = Expr::ColumnIdx(0).eq(Expr::ColumnIdx(3));
        let b = ops::nested_loop_join(&l, &r, Some(&pred)).unwrap();
        prop_assert_eq!(bag(&a), bag(&b));
    }

    /// U-relational σ: selection vector equals deep-clone select.
    #[test]
    fn select_u_matches_naive((_wt, u) in arb_urelation()) {
        let pred = Expr::col("v").binary(BinaryOp::Gt, Expr::lit(1i64));
        let a = algebra::select(&u, &pred).unwrap();
        let b = naive::select_u(&u, &pred).unwrap();
        prop_assert_eq!(ubag(&a), ubag(&b));
    }

    /// U-relational hashed join equals the Vec-keyed join as a bag of
    /// (data, wsd) pairs — WSD conjunction and unsatisfiable-pair drops
    /// included.
    #[test]
    fn hash_join_u_matches_naive((_wt, u) in arb_urelation(), (_w2, u2) in arb_urelation()) {
        let a = algebra::hash_join(&u, &u2, &[0], &[0]).unwrap();
        let b = naive::hash_join_u(&u, &u2, &[0], &[0]).unwrap();
        prop_assert_eq!(ubag(&a), ubag(&b));
    }

    /// U-relational hashed self-join equals the nested-loop translation —
    /// self-joins maximise conflicting-WSD pairs.
    #[test]
    fn hash_join_u_self_matches_nested_loop((_wt, u) in arb_urelation()) {
        let a = algebra::hash_join(&u, &u, &[0], &[0]).unwrap();
        let pred = Expr::ColumnIdx(0).eq(Expr::ColumnIdx(3));
        let b = naive::nested_loop_join_u(&u, &u, Some(&pred)).unwrap();
        prop_assert_eq!(ubag(&a), ubag(&b));
    }

    /// repair key: the optimized construction (scratch grouping, inline
    /// WSDs) produces the identical U-relation to the seed construction —
    /// same rows, same variables, same conditions.
    #[test]
    fn repair_key_matches_naive(
        rows in prop::collection::vec((0i64..6, 1u32..10), 1..40),
    ) {
        let schema = Arc::new(Schema::from_pairs(&[
            ("k", DataType::Int),
            ("w", DataType::Float),
        ]));
        let input = Relation::new_unchecked(
            schema,
            rows.iter()
                .map(|&(k, w)| Tuple::new(vec![
                    Value::Int(k),
                    Value::Float(f64::from(w) / 10.0),
                ]))
                .collect(),
        );
        let opts = maybms_urel::repair::RepairKeyOptions {
            weight: Some(Expr::col("w")),
        };
        let mut wt_a = WorldTable::new();
        let a = maybms_urel::repair::repair_key(&input, &[Expr::col("k")], &opts, &mut wt_a)
            .unwrap();
        let mut wt_b = WorldTable::new();
        let b = naive::repair_key(&input, &[Expr::col("k")], &opts, &mut wt_b).unwrap();
        prop_assert_eq!(a.tuples(), b.tuples());
        prop_assert_eq!(wt_a.num_vars(), wt_b.num_vars());
    }

    /// pick tuples: identical output and world table.
    #[test]
    fn pick_tuples_matches_naive(
        rows in prop::collection::vec((0i64..6, 0u32..=10), 1..40),
    ) {
        let schema = Arc::new(Schema::from_pairs(&[
            ("v", DataType::Int),
            ("p", DataType::Float),
        ]));
        let input = Relation::new_unchecked(
            schema,
            rows.iter()
                .map(|&(v, p)| Tuple::new(vec![
                    Value::Int(v),
                    Value::Float(f64::from(p) / 10.0),
                ]))
                .collect(),
        );
        let opts = maybms_urel::pick::PickTuplesOptions {
            probability: Some(Expr::col("p")),
        };
        let mut wt_a = WorldTable::new();
        let a = maybms_urel::pick::pick_tuples(&input, &opts, &mut wt_a).unwrap();
        let mut wt_b = WorldTable::new();
        let b = naive::pick_tuples(&input, &opts, &mut wt_b).unwrap();
        prop_assert_eq!(a.tuples(), b.tuples());
        prop_assert_eq!(wt_a.num_vars(), wt_b.num_vars());
    }
}
