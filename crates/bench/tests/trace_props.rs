//! Well-formedness and determinism properties of the tracing span trees.
//!
//! The span subsystem promises (obs phase 2):
//!
//! 1. **Well-formed trees** — every recorded span's parent exists in the
//!    same tree, children are temporally nested inside their parent's
//!    `[start, end]` interval, and the statement root covers every
//!    pipeline span of that statement.
//! 2. **Thread-invariant shape** — the *shape* of a statement's span
//!    tree (the multiset of `(label, parent-label-path)` pairs) is
//!    bit-identical at 1, 2, and 8 execution threads, because
//!    `maybms-par` propagates the trace context from the spawn site into
//!    every worker task. Durations, attribute values, and completion
//!    order are explicitly *not* part of the contract.
//! 3. **Pipeline agreement** — the number of `pipeline` spans under a
//!    statement root equals `QueryStats::pipeline_count()`, i.e. what
//!    `EXPLAIN ANALYZE` reports for the same statement.
//!
//! The ring sink and the enable flag are process-wide, so every test in
//! this binary serialises on one mutex and filters spans by root id
//! (other tests' spans in the ring are harmless but eviction while a
//! tree is being collected would not be).

use std::collections::BTreeMap;
use std::sync::Mutex;

use maybms_core::MayBms;
use maybms_obs::trace::{self, SpanRecord};

/// Serialises the tests in this binary: tracing enablement and the
/// global thread pool are process-wide.
static TRACE_TEST_LOCK: Mutex<()> = Mutex::new(());

/// Thread counts the span-tree shape must be identical across.
const THREADS: [usize; 3] = [1, 2, 8];

/// A database with enough uncertainty that `conf()` runs per group and
/// query plans have several pipelines.
fn seeded_db() -> MayBms {
    let mut db = MayBms::new();
    for sql in [
        "create table coin (face text, toss bigint, w double precision)",
        "insert into coin values \
         ('heads', 1, 4.0), ('tails', 1, 1.0), \
         ('heads', 2, 1.0), ('tails', 2, 1.0), ('edge', 2, 0.1)",
    ] {
        db.run(sql).unwrap();
    }
    db
}

/// Runs `sql` with tracing on and returns the statement's span tree
/// (every record whose root is the statement root) plus the
/// `QueryStats` pipeline count.
fn traced_run(db: &mut MayBms, sql: &str) -> (Vec<SpanRecord>, usize) {
    trace::set_enabled(true);
    db.run(sql).unwrap();
    trace::set_enabled(false);
    let stats = db.last_stats().expect("statement just ran");
    let root = stats.root_span().expect("tracing was on");
    let spans = trace::spans_for_root(root);
    assert!(!spans.is_empty(), "root {root} not found in the ring");
    (spans, stats.pipeline_count())
}

/// `(label, parent-label-path)` multiset — the thread-invariant
/// fingerprint of a span tree. The path is the chain of labels from the
/// root down to the span itself, so sibling order and durations don't
/// participate.
fn shape_fingerprint(spans: &[SpanRecord]) -> Vec<String> {
    let by_id: BTreeMap<u64, &SpanRecord> = spans.iter().map(|s| (s.id, s)).collect();
    let mut shape: Vec<String> = spans
        .iter()
        .map(|s| {
            let mut path = Vec::new();
            let mut cur = Some(s);
            while let Some(rec) = cur {
                path.push(rec.label);
                cur = by_id.get(&rec.parent).copied();
            }
            path.reverse();
            path.join("/")
        })
        .collect();
    shape.sort();
    shape
}

/// Checks property 1 (well-formed tree) and returns the root record.
fn assert_well_formed(spans: &[SpanRecord]) -> SpanRecord {
    let by_id: BTreeMap<u64, &SpanRecord> = spans.iter().map(|s| (s.id, s)).collect();
    let roots: Vec<&&SpanRecord> =
        by_id.values().filter(|s| s.parent == 0).collect();
    assert_eq!(roots.len(), 1, "exactly one root per statement tree");
    let root = (**roots[0]).clone();
    assert_eq!(root.label, "statement");
    assert_eq!(root.root, root.id);
    for s in spans {
        assert_eq!(s.root, root.id, "span {} ({}) in the wrong tree", s.id, s.label);
        if s.parent == 0 {
            continue;
        }
        let parent = by_id
            .get(&s.parent)
            .unwrap_or_else(|| panic!("span {} ({}) has a dangling parent {}", s.id, s.label, s.parent));
        assert!(
            s.start_nanos >= parent.start_nanos && s.end_nanos() <= parent.end_nanos(),
            "span {} ({}) [{}, {}] escapes parent {} ({}) [{}, {}]",
            s.id,
            s.label,
            s.start_nanos,
            s.end_nanos(),
            parent.id,
            parent.label,
            parent.start_nanos,
            parent.end_nanos(),
        );
    }
    root
}

/// Properties 1 and 3 on a conf-bearing grouped query: the tree is
/// well-formed, the root covers every pipeline span, and the pipeline
/// span count equals what `EXPLAIN ANALYZE` would report.
#[test]
fn span_tree_well_formed_and_agrees_with_explain_analyze() {
    let _guard = TRACE_TEST_LOCK.lock().unwrap();
    let mut db = seeded_db();
    let sql = "select face, conf() as p \
               from (repair key toss in coin weight by w) c group by face";
    let (spans, pipeline_count) = traced_run(&mut db, sql);
    let root = assert_well_formed(&spans);
    let pipelines: Vec<&SpanRecord> =
        spans.iter().filter(|s| s.label == "pipeline").collect();
    assert_eq!(
        pipelines.len(),
        pipeline_count,
        "pipeline spans must agree with EXPLAIN ANALYZE's pipeline count"
    );
    assert!(pipeline_count > 0, "grouped conf query must run pipelines");
    for p in &pipelines {
        assert!(
            p.start_nanos >= root.start_nanos && p.end_nanos() <= root.end_nanos(),
            "statement root must cover pipeline span {}",
            p.id
        );
    }
    // The same statement records conf spans (one per group) and a parse
    // child (the statement came in through `run`, i.e. as SQL text).
    assert!(spans.iter().any(|s| s.label == "conf"), "conf() must be spanned");
    assert!(spans.iter().any(|s| s.label == "parse"), "parse must be spanned");
    assert!(spans.iter().any(|s| s.label == "execute"), "execute must be spanned");
}

/// Property 2: the `(label, parent-label-path)` multiset is identical at
/// 1/2/8 threads for the same statements — conf spans land under the
/// spawn-site span, not under whichever worker ran them.
#[test]
fn span_tree_shape_identical_across_thread_counts() {
    let _guard = TRACE_TEST_LOCK.lock().unwrap();
    let statements = [
        "select face, conf() as p \
         from (repair key toss in coin weight by w) c group by face",
        "select face from coin where w > 0.5",
        "select c.face, conf() as p \
         from (repair key toss in coin weight by w) c, coin d \
         where c.face = d.face group by c.face",
    ];
    let before = maybms_par::current_threads();
    let mut shapes: Vec<Vec<Vec<String>>> = Vec::new();
    for threads in THREADS {
        maybms_par::set_threads(threads);
        let mut db = seeded_db();
        let mut per_stmt = Vec::new();
        for sql in statements {
            let (spans, _) = traced_run(&mut db, sql);
            assert_well_formed(&spans);
            per_stmt.push(shape_fingerprint(&spans));
        }
        shapes.push(per_stmt);
    }
    maybms_par::set_threads(before);
    assert_eq!(shapes[0], shapes[1], "span-tree shape differs, 2 threads vs 1");
    assert_eq!(shapes[0], shapes[2], "span-tree shape differs, 8 threads vs 1");
}

/// DML and DDL statements get statement roots too (the latency windows
/// and the slow-query log classify them as `dml`).
#[test]
fn dml_statements_have_statement_roots() {
    let _guard = TRACE_TEST_LOCK.lock().unwrap();
    let mut db = MayBms::new();
    trace::set_enabled(true);
    db.run("create table t (a bigint)").unwrap();
    trace::set_enabled(false);
    let stats = db.last_stats().unwrap();
    let root = stats.root_span().expect("DDL gets a root span");
    let spans = trace::spans_for_root(root);
    let rec = assert_well_formed(&spans);
    assert!(
        rec.attrs.iter().any(|(k, v)| *k == "kind" && v.to_string() == "dml"),
        "statement root must carry kind=dml: {:?}",
        rec.attrs
    );
}
