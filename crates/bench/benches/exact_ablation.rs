//! E7 (ablation of the Koch–Olteanu exact algorithm, DESIGN.md §3): the
//! value of independence decomposition on block-structured DNFs and the
//! variable-elimination heuristics on random DNFs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use maybms_bench::workloads::{block_dnf, random_dnf, DnfParams};
use maybms_conf::exact::{probability_with, ExactOptions, VarChoice};

fn bench_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("exact_ablation");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));

    // Decomposition on/off over block-structured DNFs.
    for blocks in [6usize, 10] {
        let (wt, dnf) = block_dnf(17, blocks, 4, 3, 2);
        group.bench_with_input(
            BenchmarkId::new("decompose_on", blocks),
            &blocks,
            |b, _| {
                b.iter(|| probability_with(&dnf, &wt, &ExactOptions::standard()).unwrap().0)
            },
        );
        group.bench_with_input(
            BenchmarkId::new("decompose_off", blocks),
            &blocks,
            |b, _| {
                let opts = ExactOptions {
                    decompose: false,
                    ..ExactOptions::standard()
                };
                b.iter(|| probability_with(&dnf, &wt, &opts).unwrap().0)
            },
        );
    }

    // Variable-elimination heuristics on a connected random DNF.
    let (wt, dnf) = random_dnf(
        19,
        DnfParams { clauses: 18, vars: 12, clause_len: 3, domain: 3 },
    );
    for (name, choice) in [
        ("max_occurrence", VarChoice::MaxOccurrence),
        ("min_domain", VarChoice::MinDomain),
        ("first", VarChoice::First),
    ] {
        group.bench_with_input(BenchmarkId::new("heuristic", name), &name, |b, _| {
            let opts = ExactOptions { var_choice: choice, ..ExactOptions::standard() };
            b.iter(|| probability_with(&dnf, &wt, &opts).unwrap().0)
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);
