//! E5 (Antova–Jansen–Koch–Olteanu, ICDE'08): positive relational algebra
//! on U-relations costs about the same as on certain tables of the same
//! representation size, although the U-relation stands for 2^rows worlds —
//! query time depends on the representation, never on the world count.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use maybms_bench::workloads::overhead_pair;
use maybms_engine::{ops, BinaryOp, Expr};
use maybms_urel::algebra;

fn bench_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("urel_overhead");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for rows in [1_000usize, 10_000] {
        let (certain, _wt, uncertain) = overhead_pair(21, rows, (rows / 10) as i64);
        let pred = Expr::col("v").binary(BinaryOp::Lt, Expr::lit(500i64));

        // σ then self-⋈ on k, on the certain twin (plain engine).
        group.bench_with_input(
            BenchmarkId::new("certain_select_join", rows),
            &rows,
            |b, _| {
                b.iter(|| {
                    let f = ops::filter(&certain, &pred).unwrap();
                    ops::hash_join(&f, &certain, &[0], &[0]).unwrap().len()
                })
            },
        );
        // The same plan on the U-relational twin (WSD bookkeeping).
        group.bench_with_input(
            BenchmarkId::new("uncertain_select_join", rows),
            &rows,
            |b, _| {
                b.iter(|| {
                    let f = algebra::select(&uncertain, &pred).unwrap();
                    algebra::hash_join(&f, &uncertain, &[0], &[0]).unwrap().len()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_overhead);
criterion_main!(benches);
