//! E3 (Dagum–Karp–Luby–Ross): cost of the (ε, δ)-approximation as ε
//! shrinks — the sample count grows as 1/ε², and the 𝒜𝒜 algorithm's
//! variance adaptation keeps it competitive with the plain stopping rule.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use maybms_bench::workloads::{random_dnf, DnfParams};
use maybms_conf::dklr::{approximate, stopping_rule, DklrOptions};
use maybms_conf::karp_luby::KarpLuby;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_dklr(c: &mut Criterion) {
    let (wt, dnf) = random_dnf(
        11,
        DnfParams { clauses: 100, vars: 150, clause_len: 3, domain: 2 },
    );
    let kl = KarpLuby::new(&dnf, &wt).unwrap();
    let mut group = c.benchmark_group("dklr_sweep");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for epsilon in [0.5, 0.2, 0.1, 0.05] {
        group.bench_with_input(
            BenchmarkId::new("aa", format!("eps{epsilon}")),
            &epsilon,
            |b, &eps| {
                let mut rng = StdRng::seed_from_u64(5);
                b.iter(|| {
                    approximate(&kl, &wt, &DklrOptions::new(eps, 0.1), &mut rng)
                        .unwrap()
                        .samples
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("stopping_rule", format!("eps{epsilon}")),
            &epsilon,
            |b, &eps| {
                let mut rng = StdRng::seed_from_u64(5);
                b.iter(|| {
                    stopping_rule(&kl, &wt, &DklrOptions::new(eps, 0.1), &mut rng)
                        .unwrap()
                        .samples
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_dklr);
criterion_main!(benches);
