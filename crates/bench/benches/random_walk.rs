//! E1 (Figure 1 / §3 "Fitness prediction"): cost of k-step random walks on
//! stochastic matrices via `repair key` + `conf()`, scaling in the number
//! of players and the walk length.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use maybms_bench::workloads;
use maybms_core::MayBms;

/// Build the FT/States tables for `players` and run a k-step walk.
fn run_walk(players: usize, steps: usize) -> usize {
    let (ft, states) = workloads::nba(42, players);
    let mut db = MayBms::new();
    db.register("ft", ft).unwrap();
    db.register("states", states).unwrap();
    // Step 1 result table seeded from the initial states.
    db.run(
        "create table W1 as
         select R.Player, S.State as Init, R.Final, conf() as p from
         (repair key Player, Init in FT weight by p) R, States S
         where R.Player = S.Player and R.Init = S.State
         group by R.Player, S.State, R.Final;",
    )
    .unwrap();
    for k in 2..=steps {
        let sql = format!(
            "create table W{k} as
             select R1.Player, R1.Init, R2.Final, conf() as p from
             (repair key Player, Init in W{} weight by p) R1,
             (repair key Player, Init in FT weight by p) R2
             where R1.Final = R2.Init and R1.Player = R2.Player
             group by R1.Player, R1.Init, R2.Final;",
            k - 1
        );
        db.run(&sql).unwrap();
    }
    db.query(&format!("select Player, Final, p from W{steps}")).unwrap().len()
}

fn bench_walk(c: &mut Criterion) {
    let mut group = c.benchmark_group("random_walk");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for players in [4usize, 16, 64] {
        for steps in [1usize, 2, 3] {
            group.bench_with_input(
                BenchmarkId::new(format!("players{players}"), format!("steps{steps}")),
                &(players, steps),
                |b, &(players, steps)| b.iter(|| run_walk(players, steps)),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_walk);
criterion_main!(benches);
