//! E4 (SPROUT, ICDE'09): lazy vs eager safe plans on tuple-independent
//! TPC-H-style databases, against the general exact d-tree on the same
//! lineage as the non-specialised baseline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use maybms_bench::workloads::tpch_ti;
use maybms_conf::sprout::{
    eval_eager, eval_lazy, lineage_dnf, safe_plan, Cq, SproutDb, Subgoal, Term,
};
use maybms_conf::exact;

fn v(name: &str) -> Term {
    Term::Var(name.into())
}

/// q(segment) :- customer(ck, segment, _), orders(ok, ck, _) — hierarchical.
fn grouped_query() -> Cq {
    Cq {
        head: vec!["segment".into()],
        subgoals: vec![
            Subgoal {
                table: "customer".into(),
                terms: vec![v("ck"), v("segment"), v("pc")],
            },
            Subgoal { table: "orders".into(), terms: vec![v("ok"), v("ck"), v("po")] },
        ],
    }
}

/// q() :- orders(ok, ck, _), lineitem(ok, qty, _) — Boolean, hierarchical.
fn boolean_query() -> Cq {
    Cq {
        head: vec![],
        subgoals: vec![
            Subgoal { table: "orders".into(), terms: vec![v("ok"), v("ck"), v("po")] },
            Subgoal { table: "lineitem".into(), terms: vec![v("ok"), v("qty"), v("pl")] },
        ],
    }
}

fn bench_sprout(c: &mut Criterion) {
    let mut group = c.benchmark_group("sprout_lazy_eager");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for customers in [100usize, 1000] {
        let (wt, tables) = tpch_ti(13, customers, 3, 3);
        let db = SproutDb { tables: &tables, wt: &wt };
        for (qname, q) in [("grouped", grouped_query()), ("boolean", boolean_query())] {
            let plan = safe_plan(&q).expect("hierarchical query");
            group.bench_with_input(
                BenchmarkId::new(format!("eager_{qname}"), customers),
                &customers,
                |b, _| b.iter(|| eval_eager(&db, &plan).unwrap().len()),
            );
            group.bench_with_input(
                BenchmarkId::new(format!("lazy_{qname}"), customers),
                &customers,
                |b, _| b.iter(|| eval_lazy(&db, &plan).unwrap().len()),
            );
            // Baseline: general exact algorithm over the extracted lineage.
            group.bench_with_input(
                BenchmarkId::new(format!("dtree_{qname}"), customers),
                &customers,
                |b, _| {
                    b.iter(|| {
                        let lineages = lineage_dnf(&db, &plan, &q.head).unwrap();
                        lineages
                            .values()
                            .map(|d| exact::probability(d, &wt).unwrap())
                            .sum::<f64>()
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_sprout);
criterion_main!(benches);
