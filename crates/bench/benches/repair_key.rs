//! E6 (§2.2): cost of constructing the hypothesis space — `repair key`
//! over growing group counts and alternatives per group, and
//! `pick tuples` over growing tables.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use maybms_bench::workloads::repair_input;
use maybms_engine::Expr;
use maybms_urel::pick::{pick_tuples, PickTuplesOptions};
use maybms_urel::repair::{repair_key, RepairKeyOptions};
use maybms_urel::WorldTable;

fn bench_repair(c: &mut Criterion) {
    let mut group = c.benchmark_group("repair_key");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for groups in [1_000usize, 10_000] {
        for alts in [4usize, 16] {
            let input = repair_input(31, groups, alts);
            group.bench_with_input(
                BenchmarkId::new(format!("repair_g{groups}"), format!("a{alts}")),
                &(groups, alts),
                |b, _| {
                    b.iter(|| {
                        let mut wt = WorldTable::new();
                        repair_key(
                            &input,
                            &[Expr::col("k")],
                            &RepairKeyOptions { weight: Some(Expr::col("w")) },
                            &mut wt,
                        )
                        .unwrap()
                        .len()
                    })
                },
            );
        }
    }
    for rows in [1_000usize, 10_000, 100_000] {
        let input = repair_input(33, rows, 1);
        group.bench_with_input(BenchmarkId::new("pick_tuples", rows), &rows, |b, _| {
            b.iter(|| {
                let mut wt = WorldTable::new();
                pick_tuples(&input, &PickTuplesOptions::default(), &mut wt)
                    .unwrap()
                    .len()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_repair);
criterion_main!(benches);
