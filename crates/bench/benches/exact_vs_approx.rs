//! E2 (§2.3 claim, from Koch–Olteanu VLDB'08): "Outside a narrow range of
//! variable-to-clause count ratios, it [the exact algorithm] outperforms
//! the approximation techniques." Sweep the variable/clause ratio and time
//! the exact d-tree against `aconf(0.1, 0.1)` (Karp–Luby + DKLR 𝒜𝒜).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use maybms_bench::workloads::{random_dnf, DnfParams};
use maybms_conf::dklr::{approximate, DklrOptions};
use maybms_conf::exact;
use maybms_conf::karp_luby::KarpLuby;
use rand::rngs::StdRng;
use rand::SeedableRng;

const CLAUSES: usize = 40;
const RATIOS: [f64; 5] = [0.25, 0.5, 1.0, 2.0, 4.0];

fn bench_crossover(c: &mut Criterion) {
    let mut group = c.benchmark_group("exact_vs_approx");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for ratio in RATIOS {
        let vars = ((CLAUSES as f64 * ratio).round() as usize).max(3);
        let (wt, dnf) = random_dnf(
            7,
            DnfParams { clauses: CLAUSES, vars, clause_len: 3, domain: 2 },
        );
        group.bench_with_input(
            BenchmarkId::new("exact", format!("ratio{ratio}")),
            &ratio,
            |b, _| b.iter(|| exact::probability(&dnf, &wt).unwrap()),
        );
        let kl = KarpLuby::new(&dnf, &wt).unwrap();
        group.bench_with_input(
            BenchmarkId::new("aconf_0.1_0.1", format!("ratio{ratio}")),
            &ratio,
            |b, _| {
                let mut rng = StdRng::seed_from_u64(99);
                b.iter(|| {
                    approximate(&kl, &wt, &DklrOptions::new(0.1, 0.1), &mut rng)
                        .unwrap()
                        .estimate
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_crossover);
criterion_main!(benches);
