//! E3 harness: DKLR sample counts and accuracy vs ε (δ = 0.05), plus the
//! empirical failure rate against the exact probability — the (ε, δ)
//! guarantee in action.

use maybms_bench::workloads::{random_dnf, DnfParams};
use maybms_conf::dklr::{approximate, stopping_rule, DklrOptions};
use maybms_conf::exact;
use maybms_conf::karp_luby::KarpLuby;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let (wt, dnf) = random_dnf(
        11,
        DnfParams { clauses: 60, vars: 80, clause_len: 3, domain: 2 },
    );
    let truth = exact::probability(&dnf, &wt).unwrap();
    let kl = KarpLuby::new(&dnf, &wt).unwrap();
    println!("E3 — DKLR (ε, δ=0.05) over a 60-clause DNF; exact p = {truth:.6}");
    println!(
        "{:>7} {:>14} {:>14} {:>12} {:>12}",
        "eps", "AA samples", "SRA samples", "mean |rel|", "fail rate"
    );
    let runs = 20;
    for eps in [0.5, 0.2, 0.1, 0.05, 0.02] {
        let opts = DklrOptions::new(eps, 0.05);
        let mut rng = StdRng::seed_from_u64(77);
        let mut aa_samples = 0u64;
        let mut sra_samples = 0u64;
        let mut rel_sum = 0.0;
        let mut failures = 0u32;
        for _ in 0..runs {
            let aa = approximate(&kl, &wt, &opts, &mut rng).unwrap();
            let sra = stopping_rule(&kl, &wt, &opts, &mut rng).unwrap();
            aa_samples += aa.samples;
            sra_samples += sra.samples;
            let rel = ((aa.estimate - truth) / truth).abs();
            rel_sum += rel;
            if rel > eps {
                failures += 1;
            }
        }
        println!(
            "{:>7} {:>14} {:>14} {:>12.5} {:>12.3}",
            eps,
            aa_samples / runs as u64,
            sra_samples / runs as u64,
            rel_sum / f64::from(runs),
            f64::from(failures) / f64::from(runs)
        );
    }
}
