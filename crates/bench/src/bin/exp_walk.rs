//! E1 harness: random-walk scaling table (Figure 1 / §3).
//!
//! Prints median wall time of the full SQL pipeline (repair-key + conf)
//! per (players, steps) cell, plus a correctness column: the walk output
//! distribution sums to 1 per player.

use std::time::Instant;

use maybms_bench::workloads;
use maybms_core::MayBms;

fn run_walk(players: usize, steps: usize) -> (f64, bool) {
    let (ft, states) = workloads::nba(42, players);
    let start = Instant::now();
    let mut db = MayBms::new();
    db.register("ft", ft).unwrap();
    db.register("states", states).unwrap();
    db.run(
        "create table W1 as
         select R.Player, S.State as Init, R.Final, conf() as p from
         (repair key Player, Init in FT weight by p) R, States S
         where R.Player = S.Player and R.Init = S.State
         group by R.Player, S.State, R.Final;",
    )
    .unwrap();
    for k in 2..=steps {
        db.run(&format!(
            "create table W{k} as
             select R1.Player, R1.Init, R2.Final, conf() as p from
             (repair key Player, Init in W{} weight by p) R1,
             (repair key Player, Init in FT weight by p) R2
             where R1.Final = R2.Init and R1.Player = R2.Player
             group by R1.Player, R1.Init, R2.Final;",
            k - 1
        ))
        .unwrap();
    }
    let out = db.query(&format!("select Player, p from W{steps}")).unwrap();
    let elapsed = start.elapsed().as_secs_f64() * 1e3;
    // Correctness: per-player distribution sums to 1.
    let mut sums: std::collections::HashMap<String, f64> = std::collections::HashMap::new();
    for t in out.tuples() {
        *sums.entry(t.value(0).to_string()).or_insert(0.0) +=
            t.value(1).as_f64().unwrap();
    }
    let ok = sums.values().all(|s| (s - 1.0).abs() < 1e-9);
    (elapsed, ok)
}

fn main() {
    println!("E1 — k-step random walks via repair-key + conf (Figure 1)");
    println!("{:<10} {:>6} {:>12} {:>8}", "players", "steps", "median ms", "sums=1");
    for players in [4usize, 16, 64, 256] {
        for steps in [1usize, 2, 3, 4] {
            let mut times = Vec::new();
            let mut ok = true;
            for _ in 0..3 {
                let (t, o) = run_walk(players, steps);
                times.push(t);
                ok &= o;
            }
            times.sort_by(f64::total_cmp);
            println!(
                "{:<10} {:>6} {:>12.2} {:>8}",
                players,
                steps,
                times[times.len() / 2],
                if ok { "yes" } else { "NO" }
            );
        }
    }
}
