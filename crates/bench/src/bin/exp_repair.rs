//! E6 harness: hypothesis-space construction cost — `repair key` across
//! group counts × alternatives, `pick tuples` across table sizes.

use std::time::Instant;

use maybms_bench::workloads::repair_input;
use maybms_engine::Expr;
use maybms_urel::pick::{pick_tuples, PickTuplesOptions};
use maybms_urel::repair::{repair_key, RepairKeyOptions};
use maybms_urel::WorldTable;

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(f64::total_cmp);
    xs[xs.len() / 2]
}

fn main() {
    println!("E6 — repair-key construction");
    println!("{:>8} {:>6} {:>10} {:>12} {:>10}", "groups", "alts", "rows", "median ms", "vars");
    for groups in [1_000usize, 10_000, 100_000] {
        for alts in [2usize, 4, 16] {
            let input = repair_input(31, groups, alts);
            let mut times = Vec::new();
            let mut vars = 0usize;
            for _ in 0..5 {
                let t0 = Instant::now();
                let mut wt = WorldTable::new();
                let out = repair_key(
                    &input,
                    &[Expr::col("k")],
                    &RepairKeyOptions { weight: Some(Expr::col("w")) },
                    &mut wt,
                )
                .unwrap();
                std::hint::black_box(out.len());
                vars = wt.num_vars();
                times.push(t0.elapsed().as_secs_f64() * 1e3);
            }
            println!(
                "{:>8} {:>6} {:>10} {:>12.3} {:>10}",
                groups,
                alts,
                groups * alts,
                median(times),
                vars
            );
        }
    }
    println!("\npick-tuples construction");
    println!("{:>10} {:>12}", "rows", "median ms");
    for rows in [1_000usize, 10_000, 100_000, 1_000_000] {
        let input = repair_input(33, rows, 1);
        let mut times = Vec::new();
        for _ in 0..5 {
            let t0 = Instant::now();
            let mut wt = WorldTable::new();
            let out = pick_tuples(&input, &PickTuplesOptions::default(), &mut wt).unwrap();
            std::hint::black_box(out.len());
            times.push(t0.elapsed().as_secs_f64() * 1e3);
        }
        println!("{:>10} {:>12.3}", rows, median(times));
    }
}
