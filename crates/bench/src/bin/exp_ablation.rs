//! E7 harness: exact-algorithm ablations — independence decomposition
//! on/off over block DNFs (d-tree statistics included), and the
//! variable-elimination heuristics on connected random DNFs.

use std::time::Instant;

use maybms_bench::workloads::{block_dnf, random_dnf, DnfParams};
use maybms_conf::exact::{probability_with, ExactOptions, VarChoice};

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(f64::total_cmp);
    xs[xs.len() / 2]
}

fn main() {
    println!("E7a — independence decomposition on block DNFs (4 clauses/block)");
    println!(
        "{:>7} {:>10} {:>14} {:>14} {:>12} {:>12}",
        "blocks", "clauses", "with ms", "without ms", "elim(with)", "elim(w/o)"
    );
    for blocks in [4usize, 6, 8, 10, 12] {
        let (wt, dnf) = block_dnf(17, blocks, 4, 3, 2);
        let on = ExactOptions::standard();
        let off = ExactOptions { decompose: false, ..ExactOptions::standard() };
        let mut t_on = Vec::new();
        let mut t_off = Vec::new();
        let mut s_on = Default::default();
        let mut s_off = Default::default();
        for _ in 0..5 {
            let t0 = Instant::now();
            let (_, s) = probability_with(&dnf, &wt, &on).unwrap();
            t_on.push(t0.elapsed().as_secs_f64() * 1e3);
            s_on = s;
            let t0 = Instant::now();
            let (_, s) = probability_with(&dnf, &wt, &off).unwrap();
            t_off.push(t0.elapsed().as_secs_f64() * 1e3);
            s_off = s;
        }
        println!(
            "{:>7} {:>10} {:>14.3} {:>14.3} {:>12} {:>12}",
            blocks,
            dnf.len(),
            median(t_on),
            median(t_off),
            s_on.eliminations,
            s_off.eliminations
        );
    }

    println!("\nE7b — variable-elimination heuristics on connected random DNFs");
    println!("{:>16} {:>12} {:>14}", "heuristic", "median ms", "eliminations");
    let (wt, dnf) = random_dnf(
        19,
        DnfParams { clauses: 18, vars: 12, clause_len: 3, domain: 3 },
    );
    for (name, choice) in [
        ("max_occurrence", VarChoice::MaxOccurrence),
        ("min_domain", VarChoice::MinDomain),
        ("first", VarChoice::First),
    ] {
        let opts = ExactOptions { var_choice: choice, ..ExactOptions::standard() };
        let mut times = Vec::new();
        let mut stats = Default::default();
        for _ in 0..5 {
            let t0 = Instant::now();
            let (_, s) = probability_with(&dnf, &wt, &opts).unwrap();
            times.push(t0.elapsed().as_secs_f64() * 1e3);
            stats = s;
        }
        println!("{:>16} {:>12.3} {:>14}", name, median(times), stats.eliminations);
    }

    // E7c — the executor's tuple-independent fast path for conf():
    // 1 − Π(1 − pᵢ) per group instead of building a d-tree.
    println!("\nE7c — conf() tuple-independence fast path (SQL, grouped pick-tuples)");
    println!("{:>8} {:>18} {:>18} {:>9}", "rows", "fast path ms", "d-tree ms", "speedup");
    use maybms_bench::workloads::repair_input;
    use maybms_core::MayBms;
    for rows in [1_000usize, 10_000] {
        let input = repair_input(23, rows / 4, 4); // (k, alt, w) rows
        let run_once = |fast: bool| -> f64 {
            let mut db = MayBms::new();
            db.conf_context_mut().sprout_fast_path = fast;
            db.register("t", input.clone()).unwrap();
            db.run(
                "create table picked as
                 select * from (pick tuples from t with probability 0.5) x",
            )
            .unwrap();
            let t0 = Instant::now();
            let out = db
                .query("select k, conf() as p from picked group by k")
                .unwrap();
            std::hint::black_box(out.len());
            t0.elapsed().as_secs_f64() * 1e3
        };
        let fast = median((0..5).map(|_| run_once(true)).collect());
        let slow = median((0..5).map(|_| run_once(false)).collect());
        println!("{:>8} {:>18.3} {:>18.3} {:>8.2}x", rows, fast, slow, slow / fast);
    }

    // E7d — sub-DNF memoization on recurrent structures: a grid-shaped DNF
    // whose Shannon branches keep reconstructing the same subproblems.
    println!("\nE7d — sub-DNF memoization (recurrent grid DNFs, no decomposition)");
    println!(
        "{:>7} {:>14} {:>14} {:>12} {:>12}",
        "vars", "plain ms", "memoized ms", "nodes", "cache hits"
    );
    for vars in [10usize, 14, 18] {
        // Chain DNF: clauses (x_i = 1 ∧ x_{i+1} = 1) — heavy subproblem reuse.
        let mut wt = maybms_urel::WorldTable::new();
        let xs: Vec<_> = (0..vars).map(|_| wt.new_var(&[0.5, 0.5]).unwrap()).collect();
        let clauses: Vec<_> = xs
            .windows(2)
            .map(|w| {
                maybms_urel::Wsd::from_assignments(vec![
                    maybms_urel::Assignment::new(w[0], 1),
                    maybms_urel::Assignment::new(w[1], 1),
                ])
                .expect("consistent")
            })
            .collect();
        let dnf = maybms_conf::Dnf::new(clauses);
        let plain = ExactOptions { decompose: false, ..ExactOptions::standard() };
        let memo = ExactOptions { memoize: true, ..plain };
        let mut t_plain = Vec::new();
        let mut t_memo = Vec::new();
        let mut stats_plain = Default::default();
        let mut stats_memo = Default::default();
        for _ in 0..5 {
            let t0 = Instant::now();
            let (p1, s) = probability_with(&dnf, &wt, &plain).unwrap();
            t_plain.push(t0.elapsed().as_secs_f64() * 1e3);
            stats_plain = s;
            let t0 = Instant::now();
            let (p2, s) = probability_with(&dnf, &wt, &memo).unwrap();
            t_memo.push(t0.elapsed().as_secs_f64() * 1e3);
            stats_memo = s;
            assert!((p1 - p2).abs() < 1e-9);
        }
        println!(
            "{:>7} {:>14.3} {:>14.3} {:>12} {:>12}",
            vars,
            median(t_plain),
            median(t_memo),
            stats_plain.eliminations,
            stats_memo.cache_hits
        );
    }
}
