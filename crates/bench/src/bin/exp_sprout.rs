//! E4 harness: SPROUT lazy vs eager plans vs the general exact d-tree on
//! tuple-independent TPC-H-style queries (ICDE'09).

use std::time::Instant;

use maybms_bench::workloads::tpch_ti;
use maybms_conf::exact;
use maybms_conf::sprout::{
    eval_eager, eval_lazy, lineage_dnf, safe_plan, Cq, SproutDb, Subgoal, Term,
};

fn v(name: &str) -> Term {
    Term::Var(name.into())
}

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(f64::total_cmp);
    xs[xs.len() / 2]
}

fn time<R>(mut f: impl FnMut() -> R) -> (f64, R) {
    let t0 = Instant::now();
    let r = f();
    (t0.elapsed().as_secs_f64() * 1e3, r)
}

fn main() {
    println!("E4 — SPROUT lazy vs eager vs d-tree (tuple-independent TPC-H shape)");
    println!(
        "{:>10} {:>9} {:>12} {:>12} {:>12} {:>8}",
        "customers", "query", "eager ms", "lazy ms", "dtree ms", "groups"
    );
    for customers in [100usize, 1_000, 10_000] {
        let (wt, tables) = tpch_ti(13, customers, 3, 3);
        let db = SproutDb { tables: &tables, wt: &wt };
        let queries = [
            (
                "grouped",
                Cq {
                    head: vec!["segment".into()],
                    subgoals: vec![
                        Subgoal {
                            table: "customer".into(),
                            terms: vec![v("ck"), v("segment"), v("pc")],
                        },
                        Subgoal {
                            table: "orders".into(),
                            terms: vec![v("ok"), v("ck"), v("po")],
                        },
                    ],
                },
            ),
            (
                "boolean",
                Cq {
                    head: vec![],
                    subgoals: vec![
                        Subgoal {
                            table: "orders".into(),
                            terms: vec![v("ok"), v("ck"), v("po")],
                        },
                        Subgoal {
                            table: "lineitem".into(),
                            terms: vec![v("ok"), v("qty"), v("pl")],
                        },
                    ],
                },
            ),
            (
                // One output group per customer: stresses the group machinery.
                "percust",
                Cq {
                    head: vec!["ck".into()],
                    subgoals: vec![
                        Subgoal {
                            table: "orders".into(),
                            terms: vec![v("ok"), v("ck"), v("po")],
                        },
                        Subgoal {
                            table: "lineitem".into(),
                            terms: vec![v("ok"), v("qty"), v("pl")],
                        },
                    ],
                },
            ),
        ];
        for (name, q) in queries {
            let plan = safe_plan(&q).expect("hierarchical");
            let mut eager_t = Vec::new();
            let mut lazy_t = Vec::new();
            let mut dtree_t = Vec::new();
            let mut groups = 0usize;
            for _ in 0..3 {
                let (t, rows) = time(|| eval_eager(&db, &plan).unwrap());
                eager_t.push(t);
                groups = rows.len();
                let (t, lazy_rows) = time(|| eval_lazy(&db, &plan).unwrap());
                lazy_t.push(t);
                assert_eq!(lazy_rows.len(), groups);
                let (t, _) = time(|| {
                    let lineages = lineage_dnf(&db, &plan, &q.head).unwrap();
                    lineages
                        .values()
                        .map(|d| exact::probability(d, &wt).unwrap())
                        .sum::<f64>()
                });
                dtree_t.push(t);
            }
            println!(
                "{:>10} {:>9} {:>12.3} {:>12.3} {:>12.3} {:>8}",
                customers,
                name,
                median(eager_t),
                median(lazy_t),
                median(dtree_t),
                groups
            );
        }
    }
}
