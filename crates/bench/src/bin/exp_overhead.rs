//! E5 harness: relational processing on U-relations vs certain twins
//! (ICDE'08 "Fast and Simple Relational Processing of Uncertain Data") —
//! overhead of the WSD bookkeeping, with the represented world count shown
//! to emphasise that time tracks representation size, not worlds.

use std::time::Instant;

use maybms_bench::workloads::overhead_pair;
use maybms_engine::{ops, BinaryOp, Expr};
use maybms_urel::algebra;

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(f64::total_cmp);
    xs[xs.len() / 2]
}

fn main() {
    println!("E5 — σ + self-⋈ on certain vs U-relational twins");
    println!(
        "{:>8} {:>14} {:>14} {:>10} {:>14}",
        "rows", "certain ms", "urel ms", "overhead", "worlds"
    );
    for rows in [1_000usize, 5_000, 10_000, 50_000] {
        let (certain, _wt, uncertain) = overhead_pair(21, rows, (rows / 10) as i64);
        let pred = Expr::col("v").binary(BinaryOp::Lt, Expr::lit(500i64));
        let mut ct = Vec::new();
        let mut ut = Vec::new();
        for _ in 0..5 {
            let t0 = Instant::now();
            let f = ops::filter(&certain, &pred).unwrap();
            let j = ops::hash_join(&f, &certain, &[0], &[0]).unwrap();
            std::hint::black_box(j.len());
            ct.push(t0.elapsed().as_secs_f64() * 1e3);

            let t0 = Instant::now();
            let f = algebra::select(&uncertain, &pred).unwrap();
            let j = algebra::hash_join(&f, &uncertain, &[0], &[0]).unwrap();
            std::hint::black_box(j.len());
            ut.push(t0.elapsed().as_secs_f64() * 1e3);
        }
        let (c, u) = (median(ct), median(ut));
        println!("{:>8} {:>14.3} {:>14.3} {:>9.2}x {:>13}", rows, c, u, u / c, format!("2^{rows}"));
    }
}
