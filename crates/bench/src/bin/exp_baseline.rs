//! `exp_baseline` — the zero-clone execution-core scorecard.
//!
//! Runs the join / filter / distinct / sort / repair-key workloads twice —
//! once through the seed-faithful naive operators
//! ([`maybms_bench::naive`]: deep clones, `Vec<Value>` join keys, per-row
//! WSD heap allocation) and once through the optimized operators
//! (selection vectors, hashed join keys, batched row buffers, inline
//! WSDs) — interleaved in one process so machine drift cancels out, and
//! writes `BENCH_baseline.json` with both numbers per workload. Later PRs
//! re-run this to extend the measured trajectory.
//!
//! Usage: `exp_baseline [--quick] [--trace] [--assert-overhead PCT] [output.json]`
//!   --quick               small sizes / few reps (CI smoke; result file
//!                         still valid)
//!   --trace               run with the tracing span subsystem enabled
//!                         (ring sink attached, no file export) — CI runs
//!                         the overhead gate once plain and once with
//!                         this flag, so span emission stays inside the
//!                         same near-zero-cost envelope
//!   --assert-overhead PCT re-run the filter_project_chain pipeline with
//!                         the stats collector detached vs attached and
//!                         fail if the attached median exceeds PCT
//!                         percent overhead (the near-zero-cost gate)
//!
//! Every per-variant latency is reported as `*_ms` (the p50 of the
//! interleaved samples — same statistic the file has always recorded)
//! plus `*_p99_ms` (nearest-rank p99; with default reps this is the
//! worst observed sample, bounding tail noise rather than estimating a
//! population quantile). The run object also records the process's
//! sliding statement-latency windows (`statement_windows`) for every
//! statement kind the run exercised.
//!
//! Each workload row also carries a `stats` object — process-wide
//! `maybms-obs` metric deltas (morsels driven, scalar kernel fallbacks,
//! Monte Carlo samples drawn) accumulated across every rep of every
//! variant in that workload section — so the baseline trajectory records
//! *how* the engine ran, not just how fast.
//!
//! The `*_par4` workloads measure the `maybms-par` parallel operator and
//! confidence paths on an explicit 4-thread pool against the same naive
//! (or sequential, for conf) baseline. The JSON meta records how many
//! cores the machine actually has: on a single-core container the par
//! numbers bound scheduling overhead rather than demonstrating multicore
//! scaling, while the columnar-key and zero-clone gains still apply.
//!
//! The `filter_project_chain` and `join_pipelined` workloads are
//! **three-way**: seed-naive vs materialising optimized operators vs the
//! `maybms-pipe` morsel-driven streaming executor; their JSON rows carry
//! an extra `pipelined_ms` plus `pipelined_speedup` (materialized ÷
//! pipelined — the fusion win, net of everything else).

use std::fmt::Write as _;
use std::time::Instant;

use maybms_bench::{naive, workloads};
use maybms_conf::exact::{self, ExactOptions};
use maybms_conf::karp_luby::KarpLuby;
use maybms_core::agg as coreagg;
use maybms_core::translate::AggSpec;
use maybms_engine::{ops, BinaryOp, Catalog, DataType, Expr, Field, PhysicalPlan};
use maybms_pipe::UStream;
use maybms_urel::pick::PickTuplesOptions;
use maybms_urel::repair::RepairKeyOptions;
use maybms_urel::{algebra, URelation, WorldTable};
use rand::rngs::StdRng;
use rand::SeedableRng;

struct Outcome {
    name: &'static str,
    rows_in: usize,
    rows_out: usize,
    naive: Lat,
    optimized: Lat,
    /// Set only for the three-way streaming workloads.
    pipelined: Option<Lat>,
    /// Metric deltas accumulated over this workload's section.
    stats: StatDelta,
}

/// p50/p99 of one variant's interleaved samples (milliseconds).
#[derive(Clone, Copy)]
struct Lat {
    p50: f64,
    p99: f64,
}

/// Nearest-rank quantile over sorted samples.
fn quantile_sorted(xs: &[f64], q: f64) -> f64 {
    let rank = (q * xs.len() as f64).ceil() as usize;
    xs[rank.clamp(1, xs.len()) - 1]
}

fn lat(mut xs: Vec<f64>) -> Lat {
    xs.sort_by(f64::total_cmp);
    Lat { p50: xs[xs.len() / 2], p99: quantile_sorted(&xs, 0.99) }
}

/// Process-wide `maybms-obs` metric deltas attributed to one workload
/// section: everything counted between two consecutive [`take_delta`]
/// calls (all reps, all variants — naive included, though only the
/// instrumented engine paths actually bump these counters).
struct StatDelta {
    morsels: u64,
    scalar_fallbacks: u64,
    samples_drawn: u64,
    /// Row-major→column-major pivots (`ColumnBatch::pivot` calls). A
    /// workload reading columnar-at-rest tables should keep this at 0.
    pivots: u64,
}

fn metric_mark() -> [u64; 4] {
    let m = maybms_obs::metrics();
    [m.morsels.get(), m.scalar_fallbacks.get(), m.mc_samples.get(), m.pivots.get()]
}

/// Names and values of the query-governor and store-retry counters. The
/// baseline asserts their whole-run deltas are zero: with no limits
/// armed the governor must never abort, degrade, or retry anything, so
/// a nonzero delta means the measured reps were perturbed and the
/// numbers are invalid (e.g. the run was launched with a statement
/// timeout or `MAYBMS_STORE_FAULT_EVERY` exported).
const GOV_COUNTERS: [&str; 6] =
    ["cancelled", "deadline", "mem_rejected", "degraded_conf", "panics", "store_retries"];

fn gov_metric_mark() -> [u64; 6] {
    let m = maybms_obs::metrics();
    [
        m.gov_cancelled.get(),
        m.gov_deadline.get(),
        m.gov_mem_rejected.get(),
        m.gov_degraded_conf.get(),
        m.gov_panics.get(),
        m.store_retries.get(),
    ]
}

fn take_delta(mark: &mut [u64; 4]) -> StatDelta {
    let now = metric_mark();
    let d = StatDelta {
        morsels: now[0] - mark[0],
        scalar_fallbacks: now[1] - mark[1],
        samples_drawn: now[2] - mark[2],
        pivots: now[3] - mark[3],
    };
    *mark = now;
    d
}

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(f64::total_cmp);
    xs[xs.len() / 2]
}

/// Interleave naive/optimized samples so slow drift hits both equally.
fn compare<N, O>(reps: usize, mut naive_run: N, mut opt_run: O) -> (Lat, Lat, usize)
where
    N: FnMut() -> usize,
    O: FnMut() -> usize,
{
    let mut n_samples = Vec::with_capacity(reps);
    let mut o_samples = Vec::with_capacity(reps);
    let mut rows_out = 0;
    for _ in 0..reps {
        let t0 = Instant::now();
        rows_out = std::hint::black_box(naive_run());
        n_samples.push(t0.elapsed().as_secs_f64() * 1e3);
        let t0 = Instant::now();
        let o_rows = std::hint::black_box(opt_run());
        o_samples.push(t0.elapsed().as_secs_f64() * 1e3);
        assert_eq!(rows_out, o_rows, "naive and optimized disagree on cardinality");
    }
    (lat(n_samples), lat(o_samples), rows_out)
}

/// Three-way interleaved comparison: naive, materialized, pipelined.
fn compare3<N, O, P>(
    reps: usize,
    mut naive_run: N,
    mut opt_run: O,
    mut pipe_run: P,
) -> (Lat, Lat, Lat, usize)
where
    N: FnMut() -> usize,
    O: FnMut() -> usize,
    P: FnMut() -> usize,
{
    let mut n_samples = Vec::with_capacity(reps);
    let mut o_samples = Vec::with_capacity(reps);
    let mut p_samples = Vec::with_capacity(reps);
    let mut rows_out = 0;
    for _ in 0..reps {
        let t0 = Instant::now();
        rows_out = std::hint::black_box(naive_run());
        n_samples.push(t0.elapsed().as_secs_f64() * 1e3);
        let t0 = Instant::now();
        let o_rows = std::hint::black_box(opt_run());
        o_samples.push(t0.elapsed().as_secs_f64() * 1e3);
        let t0 = Instant::now();
        let p_rows = std::hint::black_box(pipe_run());
        p_samples.push(t0.elapsed().as_secs_f64() * 1e3);
        assert_eq!(rows_out, o_rows, "naive and materialized disagree on cardinality");
        assert_eq!(rows_out, p_rows, "materialized and pipelined disagree on cardinality");
    }
    (lat(n_samples), lat(o_samples), lat(p_samples), rows_out)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    maybms_obs::trace::init_from_env();
    let trace_on = args.iter().any(|a| a == "--trace");
    if trace_on {
        // Ring sink attached (spans recorded and evicted in-memory), no
        // file export — the tracing-attached leg of the overhead gate.
        maybms_obs::trace::set_enabled(true);
    }
    let overhead_flag = args.iter().position(|a| a == "--assert-overhead");
    let assert_overhead: Option<f64> = overhead_flag.map(|i| {
        args.get(i + 1).and_then(|v| v.parse().ok()).unwrap_or_else(|| {
            eprintln!("error: --assert-overhead needs a percentage, e.g. --assert-overhead 5");
            std::process::exit(1);
        })
    });
    let overhead_val = overhead_flag.map(|i| i + 1);
    let out_path = args
        .iter()
        .enumerate()
        .find(|(i, a)| !a.starts_with("--") && Some(*i) != overhead_val)
        .map(|(_, a)| a.clone())
        .unwrap_or_else(|| "BENCH_baseline.json".to_string());

    let (scale, reps) = if quick { (10_000usize, 3usize) } else { (100_000, 11) };
    let mut outcomes: Vec<Outcome> = Vec::new();
    let gov_mark = gov_metric_mark();
    let mut mark = metric_mark();

    // -- σ over a wide certain relation --------------------------------
    let (certain, _wt, uncertain) =
        workloads::overhead_pair(21, scale, (scale / 10) as i64);
    let pred = Expr::col("v").binary(BinaryOp::Lt, Expr::lit(500i64));
    let (n, o, out) = compare(
        reps,
        || naive::filter(&certain, &pred).unwrap().len(),
        || ops::filter(&certain, &pred).unwrap().len(),
    );
    outcomes.push(Outcome {
        name: "filter_certain",
        rows_in: certain.len(),
        rows_out: out,
        naive: n,
        optimized: o,
        pipelined: None,
        stats: take_delta(&mut mark),
    });

    // -- σ over the U-relational twin (WSDs ride along) ----------------
    let (n, o, out) = compare(
        reps,
        || naive::select_u(&uncertain, &pred).unwrap().len(),
        || algebra::select(&uncertain, &pred).unwrap().len(),
    );
    outcomes.push(Outcome {
        name: "select_urel",
        rows_in: uncertain.len(),
        rows_out: out,
        naive: n,
        optimized: o,
        pipelined: None,
        stats: take_delta(&mut mark),
    });

    // -- E5 wide self-join: output ≈ 5× input, copy-bound --------------
    let wide_rows = scale / 5;
    let (cw, _wtw, uw) = workloads::overhead_pair(22, wide_rows, (wide_rows / 10) as i64);
    let cwf = ops::filter(&cw, &pred).unwrap();
    let uwf = algebra::select(&uw, &pred).unwrap();
    // (Joins put the smaller input on the right: the stack's hash joins
    // build the right side by convention.)
    let (n, o, out) = compare(
        reps,
        || naive::hash_join(&cw, &cwf, &[0], &[0]).unwrap().len(),
        || ops::hash_join(&cw, &cwf, &[0], &[0]).unwrap().len(),
    );
    outcomes.push(Outcome {
        name: "join_wide_certain",
        rows_in: cw.len(),
        rows_out: out,
        naive: n,
        optimized: o,
        pipelined: None,
        stats: take_delta(&mut mark),
    });
    // naive::hash_join_u always builds its LEFT argument, the optimized
    // join its RIGHT; each gets the small (filtered) side as its build
    // side so the baseline stays the seed algorithm at its best.
    let (n, o, out) = compare(
        reps,
        || naive::hash_join_u(&uwf, &uw, &[0], &[0]).unwrap().len(),
        || algebra::hash_join(&uw, &uwf, &[0], &[0]).unwrap().len(),
    );
    outcomes.push(Outcome {
        name: "join_wide_urel",
        rows_in: uw.len(),
        rows_out: out,
        naive: n,
        optimized: o,
        pipelined: None,
        stats: take_delta(&mut mark),
    });

    // -- Selective FK join: huge probe side, small output — the
    //    join-heavy case where per-row key/WSD allocations dominated ----
    let (big, _w2, ubig) = workloads::overhead_pair(33, scale * 2, 1_000_000);
    let (small, _w3, usmall) = workloads::overhead_pair(34, scale / 50, 1_000_000);
    let (n, o, out) = compare(
        reps,
        || naive::hash_join(&big, &small, &[0], &[0]).unwrap().len(),
        || ops::hash_join(&big, &small, &[0], &[0]).unwrap().len(),
    );
    outcomes.push(Outcome {
        name: "join_selective_certain",
        rows_in: big.len(),
        rows_out: out,
        naive: n,
        optimized: o,
        pipelined: None,
        stats: take_delta(&mut mark),
    });
    // As above: small build side for both (naive builds left, optimized
    // builds right).
    let (n, o, out) = compare(
        reps,
        || naive::hash_join_u(&usmall, &ubig, &[0], &[0]).unwrap().len(),
        || algebra::hash_join(&ubig, &usmall, &[0], &[0]).unwrap().len(),
    );
    outcomes.push(Outcome {
        name: "join_selective_urel",
        rows_in: ubig.len(),
        rows_out: out,
        naive: n,
        optimized: o,
        pipelined: None,
        stats: take_delta(&mut mark),
    });

    // -- Duplicate elimination under heavy duplication -----------------
    let dup = {
        let base = workloads::repair_input(55, scale / 100, 4);
        let mut all = base.clone();
        for _ in 0..24 {
            all = ops::union_all(&[&all, &base]).unwrap();
        }
        all
    };
    let (n, o, out) = compare(
        reps,
        || naive::distinct(&dup).len(),
        || ops::distinct(&dup).len(),
    );
    outcomes.push(Outcome {
        name: "distinct_certain",
        rows_in: dup.len(),
        rows_out: out,
        naive: n,
        optimized: o,
        pipelined: None,
        stats: take_delta(&mut mark),
    });

    // -- DISTINCT over dictionary-encoded strings ----------------------
    // Three-way: seed dedup / zero-clone dedup (both hash every string,
    // row image) vs the same operator over the columnar-at-rest relation,
    // where the single text column is dictionary-encoded and dedup runs
    // over u32 codes with a dense seen-bitmap — no per-row string hash,
    // and (stats.pivots) no pivot: the dictionary is read at rest.
    let strings = workloads::string_keyed(77, scale, (scale / 50).max(4));
    let s_only = ops::project(&strings, &[ops::ProjectItem::col("s")]).unwrap();
    let s_dict = s_only.compact();
    assert!(s_dict.is_columnar());
    // Setup pivoted once (the compact); re-mark so the recorded delta
    // covers only the measured reps — which must stay pivot-free.
    mark = metric_mark();
    let (n, o, p, out) = compare3(
        reps,
        || naive::distinct(&s_only).len(),
        || ops::distinct(&s_only).len(),
        || ops::distinct(&s_dict).len(),
    );
    outcomes.push(Outcome {
        name: "distinct_dict",
        rows_in: s_only.len(),
        rows_out: out,
        naive: n,
        optimized: o,
        pipelined: Some(p),
        stats: take_delta(&mut mark),
    });

    // -- GROUP BY a dictionary-encoded string key ----------------------
    // Three-way: seed two-pass grouping (owned Vec<Value> keys) vs the
    // materialising single-pass AggState fold (hashes the string key per
    // row) vs the streaming grouped breaker over the columnar-at-rest
    // table, which maps dictionary codes to groups through a dense
    // per-morsel table — one string materialisation per *group*, not
    // per row, and zero pivots end-to-end.
    let dict_keys = [Expr::col("s")];
    let dict_names = ["s".to_string()];
    let dict_aggs = [
        ops::AggCall::new(ops::AggFunc::Count, None, "n"),
        ops::AggCall::new(ops::AggFunc::Sum, Some(Expr::col("v")), "sv"),
        ops::AggCall::new(ops::AggFunc::Max, Some(Expr::col("v")), "hi"),
    ];
    let mut dict_catalog = Catalog::new();
    dict_catalog.create("strs", strings.clone()).expect("fresh catalog");
    // Force the at-rest representation regardless of the env gate, so
    // the measured leg is always the dictionary-code path.
    *dict_catalog.get_mut("strs").expect("just created") = strings.compact();
    let dict_plan = PhysicalPlan::Aggregate {
        input: Box::new(PhysicalPlan::Scan { table: "strs".into(), alias: None }),
        group_exprs: dict_keys.to_vec(),
        group_names: dict_names.to_vec(),
        aggs: dict_aggs.to_vec(),
    };
    mark = metric_mark();
    let (n, o, p, out) = compare3(
        reps,
        || naive::aggregate(&strings, &dict_keys, &dict_names, &dict_aggs).unwrap().len(),
        || ops::aggregate(&strings, &dict_keys, &dict_names, &dict_aggs).unwrap().len(),
        || maybms_pipe::execute(&dict_plan, &dict_catalog).unwrap().len(),
    );
    outcomes.push(Outcome {
        name: "group_by_string_dict",
        rows_in: strings.len(),
        rows_out: out,
        naive: n,
        optimized: o,
        pipelined: Some(p),
        stats: take_delta(&mut mark),
    });

    // -- ORDER BY (selection-vector sort vs clone-per-row) -------------
    let keys = [ops::SortKey::desc(Expr::col("v")), ops::SortKey::asc(Expr::col("k"))];
    let (n, o, out) = compare(
        reps,
        || naive::sort(&certain, &keys).unwrap().len(),
        || ops::sort(&certain, &keys).unwrap().len(),
    );
    outcomes.push(Outcome {
        name: "sort_certain",
        rows_in: certain.len(),
        rows_out: out,
        naive: n,
        optimized: o,
        pipelined: None,
        stats: take_delta(&mut mark),
    });

    // -- repair key: hypothesis-space construction ---------------------
    let repair_in = workloads::repair_input(31, scale / 10, 8);
    let repair_opts = RepairKeyOptions { weight: Some(Expr::col("w")) };
    let (n, o, out) = compare(
        reps,
        || {
            let mut wt = WorldTable::new();
            naive::repair_key(&repair_in, &[Expr::col("k")], &repair_opts, &mut wt)
                .unwrap()
                .len()
        },
        || {
            let mut wt = WorldTable::new();
            maybms_urel::repair::repair_key(
                &repair_in,
                &[Expr::col("k")],
                &repair_opts,
                &mut wt,
            )
            .unwrap()
            .len()
        },
    );
    outcomes.push(Outcome {
        name: "repair_key",
        rows_in: repair_in.len(),
        rows_out: out,
        naive: n,
        optimized: o,
        pipelined: None,
        stats: take_delta(&mut mark),
    });

    // -- pick tuples ---------------------------------------------------
    let pick_in = workloads::repair_input(35, scale, 1);
    let pick_opts = PickTuplesOptions { probability: Some(Expr::col("w").binary(
        BinaryOp::Div,
        Expr::lit(maybms_engine::Value::Float(10.0)),
    )) };
    let (n, o, out) = compare(
        reps,
        || {
            let mut wt = WorldTable::new();
            naive::pick_tuples(&pick_in, &pick_opts, &mut wt).unwrap().len()
        },
        || {
            let mut wt = WorldTable::new();
            maybms_urel::pick::pick_tuples(&pick_in, &pick_opts, &mut wt).unwrap().len()
        },
    );
    outcomes.push(Outcome {
        name: "pick_tuples",
        rows_in: pick_in.len(),
        rows_out: out,
        naive: n,
        optimized: o,
        pipelined: None,
        stats: take_delta(&mut mark),
    });

    // -- Parallel variants on an explicit 4-thread pool ----------------
    let pool4 = maybms_par::ThreadPool::new(4);

    // Selective FK join again, parallel: partitioned build + chunked
    // probe + columnar single-column keys vs the naive join.
    let (n, o, out) = compare(
        reps,
        || naive::hash_join(&big, &small, &[0], &[0]).unwrap().len(),
        || ops::hash_join_with(&big, &small, &[0], &[0], &pool4, 4096).unwrap().len(),
    );
    outcomes.push(Outcome {
        name: "join_selective_par4",
        rows_in: big.len(),
        rows_out: out,
        naive: n,
        optimized: o,
        pipelined: None,
        stats: take_delta(&mut mark),
    });

    // Wide (output-copy-bound) join, parallel vs naive.
    let (n, o, out) = compare(
        reps,
        || naive::hash_join(&cw, &cwf, &[0], &[0]).unwrap().len(),
        || ops::hash_join_with(&cw, &cwf, &[0], &[0], &pool4, 4096).unwrap().len(),
    );
    outcomes.push(Outcome {
        name: "join_wide_par4",
        rows_in: cw.len(),
        rows_out: out,
        naive: n,
        optimized: o,
        pipelined: None,
        stats: take_delta(&mut mark),
    });

    // Exact confidence over a block DNF (many independent components):
    // sequential d-tree vs parallel independent-partition fan-out. Both
    // are the optimized algorithm; the delta isolates the scheduler.
    let blocks = if quick { 60 } else { 300 };
    let (cwt, cdnf) = workloads::block_dnf(77, blocks, 4, 3, 2);
    let (n, o, out) = compare(
        reps,
        || {
            exact::probability_with(&cdnf, &cwt, &ExactOptions::standard()).unwrap();
            blocks
        },
        || {
            exact::probability_par(&cdnf, &cwt, &ExactOptions::standard(), &pool4, 1)
                .unwrap();
            blocks
        },
    );
    outcomes.push(Outcome {
        name: "conf_dtree_par4",
        rows_in: cdnf.len(),
        rows_out: out,
        naive: n,
        optimized: o,
        pipelined: None,
        stats: take_delta(&mut mark),
    });

    // Karp–Luby sampling at a fixed sample count: the sequential
    // single-stream estimator vs the seeded batch-parallel one.
    let (kwt, kdnf) = workloads::random_dnf(
        91,
        workloads::DnfParams { clauses: 40, vars: 20, clause_len: 3, domain: 2 },
    );
    let kl = KarpLuby::new(&kdnf, &kwt).unwrap();
    let samples = if quick { 20_000 } else { 200_000 };
    let (n, o, out) = compare(
        reps,
        || {
            let mut rng = StdRng::seed_from_u64(1);
            std::hint::black_box(kl.estimate(&kwt, samples, &mut rng));
            samples
        },
        || {
            std::hint::black_box(kl.estimate_seeded(&kwt, samples, 1, &pool4));
            samples
        },
    );
    outcomes.push(Outcome {
        name: "karp_luby_par4",
        rows_in: kdnf.len(),
        rows_out: out,
        naive: n,
        optimized: o,
        pipelined: None,
        stats: take_delta(&mut mark),
    });

    // -- Streaming (maybms-pipe) three-way workloads -------------------
    // A σ→π→σ→π chain: the materialising path builds three intermediate
    // relations; the pipelined path fuses all four stages into one
    // morsel-driven pass.
    let mut chain_catalog = Catalog::new();
    chain_catalog.create("wide", certain.clone()).expect("fresh catalog");
    let pred1 = Expr::col("v").binary(BinaryOp::Lt, Expr::lit(500i64));
    let proj1 = [
        ops::ProjectItem::col("k"),
        ops::ProjectItem::new(
            Expr::col("v").binary(BinaryOp::Add, Expr::col("k")),
            "t",
        ),
    ];
    let pred2 = Expr::col("t").binary(BinaryOp::Mod, Expr::lit(2i64)).eq(Expr::lit(0i64));
    let proj2 = [
        ops::ProjectItem::new(
            Expr::col("t").binary(BinaryOp::Mul, Expr::lit(3i64)),
            "t3",
        ),
        ops::ProjectItem::col("k"),
    ];
    let chain_plan = PhysicalPlan::Project {
        input: Box::new(PhysicalPlan::Filter {
            input: Box::new(PhysicalPlan::Project {
                input: Box::new(PhysicalPlan::Filter {
                    input: Box::new(PhysicalPlan::Scan { table: "wide".into(), alias: None }),
                    predicate: pred1.clone(),
                }),
                items: proj1.to_vec(),
            }),
            predicate: pred2.clone(),
        }),
        items: proj2.to_vec(),
    };
    let (n, o, p, out) = compare3(
        reps,
        || {
            let a = naive::filter(&certain, &pred1).unwrap();
            let b = naive::project(&a, &proj1).unwrap();
            let c = naive::filter(&b, &pred2).unwrap();
            naive::project(&c, &proj2).unwrap().len()
        },
        || chain_plan.execute(&chain_catalog).unwrap().len(),
        || maybms_pipe::execute(&chain_plan, &chain_catalog).unwrap().len(),
    );
    outcomes.push(Outcome {
        name: "filter_project_chain",
        rows_in: certain.len(),
        rows_out: out,
        naive: n,
        optimized: o,
        pipelined: Some(p),
        stats: take_delta(&mut mark),
    });

    // A selective σ → hash-probe → π pipeline: the filtered probe stream
    // flows straight into the join probe and output projection without
    // materialising the filtered input or the raw join output.
    let mut join_catalog = Catalog::new();
    join_catalog.create("big", big.clone()).expect("fresh catalog");
    join_catalog.create("small", small.clone()).expect("fresh catalog");
    let join_pred = Expr::col("v").binary(BinaryOp::Lt, Expr::lit(500i64));
    let join_proj = [
        ops::ProjectItem::new(Expr::ColumnIdx(0), "k"),
        ops::ProjectItem::new(Expr::ColumnIdx(4), "v2"),
    ];
    let join_plan = PhysicalPlan::Project {
        input: Box::new(PhysicalPlan::HashJoin {
            left: Box::new(PhysicalPlan::Filter {
                input: Box::new(PhysicalPlan::Scan { table: "big".into(), alias: None }),
                predicate: join_pred.clone(),
            }),
            right: Box::new(PhysicalPlan::Scan { table: "small".into(), alias: None }),
            left_keys: vec![0],
            right_keys: vec![0],
        }),
        items: join_proj.to_vec(),
    };
    let (n, o, p, out) = compare3(
        reps,
        || {
            let f = naive::filter(&big, &join_pred).unwrap();
            let j = naive::hash_join(&f, &small, &[0], &[0]).unwrap();
            naive::project(&j, &join_proj).unwrap().len()
        },
        || join_plan.execute(&join_catalog).unwrap().len(),
        || maybms_pipe::execute(&join_plan, &join_catalog).unwrap().len(),
    );
    outcomes.push(Outcome {
        name: "join_pipelined",
        rows_in: big.len(),
        rows_out: out,
        naive: n,
        optimized: o,
        pipelined: Some(p),
        stats: take_delta(&mut mark),
    });

    // -- Grouped aggregation, certain: σ → π → GROUP BY k three-way ----
    // The projection makes the breaker's input a *constructed* relation:
    // naive = seed operators + two-pass grouping (owned Vec<Value> keys,
    // per-group index-list rescans); materialized = selection-vector σ,
    // batched π, then a single-pass AggState fold over the materialised
    // intermediate; streaming = the grouped-aggregation breaker (σ and π
    // fused into the morsel-local group fold — no intermediate relation
    // exists at all).
    let group_pred = Expr::col("v").binary(BinaryOp::Lt, Expr::lit(500i64));
    let group_proj = [
        ops::ProjectItem::col("k"),
        ops::ProjectItem::new(
            Expr::col("v").binary(BinaryOp::Add, Expr::col("k")),
            "t",
        ),
    ];
    let group_keys = [Expr::col("k")];
    let group_names = ["k".to_string()];
    let group_aggs = [
        ops::AggCall::new(ops::AggFunc::Count, None, "n"),
        ops::AggCall::new(ops::AggFunc::Sum, Some(Expr::col("t")), "s"),
        ops::AggCall::new(ops::AggFunc::Avg, Some(Expr::col("t")), "m"),
    ];
    let mut group_catalog = Catalog::new();
    group_catalog.create("wide", certain.clone()).expect("fresh catalog");
    let group_plan = PhysicalPlan::Aggregate {
        input: Box::new(PhysicalPlan::Project {
            input: Box::new(PhysicalPlan::Filter {
                input: Box::new(PhysicalPlan::Scan { table: "wide".into(), alias: None }),
                predicate: group_pred.clone(),
            }),
            items: group_proj.to_vec(),
        }),
        group_exprs: group_keys.to_vec(),
        group_names: group_names.to_vec(),
        aggs: group_aggs.to_vec(),
    };
    let (n, o, p, out) = compare3(
        reps,
        || {
            let f = naive::filter(&certain, &group_pred).unwrap();
            let pr = naive::project(&f, &group_proj).unwrap();
            naive::aggregate(&pr, &group_keys, &group_names, &group_aggs).unwrap().len()
        },
        || group_plan.execute(&group_catalog).unwrap().len(),
        || maybms_pipe::execute(&group_plan, &group_catalog).unwrap().len(),
    );
    outcomes.push(Outcome {
        name: "group_by_certain",
        rows_in: certain.len(),
        rows_out: out,
        naive: n,
        optimized: o,
        pipelined: Some(p),
        stats: take_delta(&mut mark),
    });

    // -- Grouped aggregation, uncertain: σ → π → GROUP BY k + conf() ---
    // The MayBMS workhorse (§2.2: uncertain → t-certain). All three run
    // the same per-group confidence evaluation (SPROUT fast path over
    // tuple-independent lineage), so the delta isolates grouping and
    // materialisation: naive = deep-clone σ/π + owned-key grouping over
    // the materialised chain; materialized = the PR 3 path (fused σ→π,
    // collect, two-pass group + aggregate); streaming = the grouped
    // breaker folding member WSDs and running esum/ecount partial sums
    // morsel-locally — the projected U-relation never exists.
    let conf_ctx = maybms_core::ConfContext::default();
    // Projected shape: (k, t = v + k); group by k, conf/ecount/esum(t).
    let conf_key = [Expr::ColumnIdx(0)];
    let conf_key_fields = vec![Field::new("k", DataType::Int)];
    let conf_aggs = [
        (AggSpec::Conf, "p".to_string()),
        (AggSpec::ECount(None), "ec".to_string()),
        (AggSpec::ESum(Expr::ColumnIdx(1)), "es".to_string()),
    ];
    let (n, o, p, out) = compare3(
        reps,
        || {
            let f = naive::select_u(&uncertain, &group_pred).unwrap();
            let pr = naive::project_u(&f, &group_proj).unwrap();
            let (keys, members) = naive::group_u(&pr, &conf_key).unwrap();
            let groups = coreagg::Groups { keys, members };
            coreagg::aggregate_groups(
                &pr,
                &groups,
                conf_key_fields.clone(),
                &conf_aggs,
                &_wt,
                &conf_ctx,
            )
            .unwrap()
            .len()
        },
        || {
            let pr = UStream::new(uncertain.clone())
                .filter(&group_pred)
                .unwrap()
                .project(&group_proj)
                .unwrap()
                .collect()
                .unwrap();
            let groups = coreagg::group(&pr, &conf_key).unwrap();
            coreagg::aggregate_groups(
                &pr,
                &groups,
                conf_key_fields.clone(),
                &conf_aggs,
                &_wt,
                &conf_ctx,
            )
            .unwrap()
            .len()
        },
        || {
            let stream = UStream::new(uncertain.clone())
                .filter(&group_pred)
                .unwrap()
                .project(&group_proj)
                .unwrap();
            coreagg::aggregate_stream(
                stream,
                &conf_key,
                1,
                conf_key_fields.clone(),
                &conf_aggs,
                &_wt,
                &conf_ctx,
                None,
            )
            .unwrap()
            .len()
        },
    );
    outcomes.push(Outcome {
        name: "group_by_conf",
        rows_in: uncertain.len(),
        rows_out: out,
        naive: n,
        optimized: o,
        pipelined: Some(p),
        stats: take_delta(&mut mark),
    });

    // -- Expression-heavy chain: wide predicate + arithmetic projection
    //    σ→π→σ→π, every stage kernel-eligible. Three-way: naive seed
    //    operators vs the row-morsel streaming executor vs the columnar
    //    (vectorised) streaming executor — for this workload the
    //    `pipelined_*` columns are the row path and `columnar_*` the
    //    vectorised one, so pipelined_speedup isolates the kernel win.
    let expr_rel = workloads::expr_table(63, scale);
    let epred1 = Expr::col("a")
        .binary(BinaryOp::Mul, Expr::lit(3i64))
        .binary(BinaryOp::Add, Expr::col("b"))
        .binary(BinaryOp::Gt, Expr::col("c").binary(BinaryOp::Mul, Expr::lit(2i64)))
        .and(Expr::col("d").binary(BinaryOp::Lt, Expr::lit(800i64)));
    let eproj1 = [
        ops::ProjectItem::new(Expr::col("a").binary(BinaryOp::Add, Expr::col("b")), "ab"),
        ops::ProjectItem::new(Expr::col("c").binary(BinaryOp::Mul, Expr::col("d")), "cd"),
        ops::ProjectItem::col("x"),
        ops::ProjectItem::col("a"),
    ];
    let epred2 = Expr::col("ab")
        .binary(BinaryOp::Add, Expr::col("cd"))
        .binary(BinaryOp::Mod, Expr::lit(10i64))
        .binary(BinaryOp::Lt, Expr::lit(6i64));
    let eproj2 = [
        ops::ProjectItem::new(
            Expr::col("ab")
                .binary(BinaryOp::Mul, Expr::lit(2i64))
                .binary(BinaryOp::Add, Expr::col("cd")),
            "v1",
        ),
        ops::ProjectItem::new(
            Expr::col("x").binary(BinaryOp::Mul, Expr::lit(maybms_engine::Value::Float(0.25))),
            "v2",
        ),
        ops::ProjectItem::col("a"),
    ];
    let mut expr_catalog = Catalog::new();
    expr_catalog.create("e", expr_rel.clone()).expect("fresh catalog");
    let expr_plan = PhysicalPlan::Project {
        input: Box::new(PhysicalPlan::Filter {
            input: Box::new(PhysicalPlan::Project {
                input: Box::new(PhysicalPlan::Filter {
                    input: Box::new(PhysicalPlan::Scan { table: "e".into(), alias: None }),
                    predicate: epred1.clone(),
                }),
                items: eproj1.to_vec(),
            }),
            predicate: epred2.clone(),
        }),
        items: eproj2.to_vec(),
    };
    let expr_pool = maybms_par::pool();
    let (n, o, p, out) = compare3(
        reps,
        || {
            let a = naive::filter(&expr_rel, &epred1).unwrap();
            let b = naive::project(&a, &eproj1).unwrap();
            let c = naive::filter(&b, &epred2).unwrap();
            naive::project(&c, &eproj2).unwrap().len()
        },
        || {
            maybms_pipe::execute_opts(
                &expr_plan,
                &expr_catalog,
                &expr_pool,
                ops::PAR_MIN_CHUNK,
                false,
            )
            .unwrap()
            .len()
        },
        || {
            maybms_pipe::execute_opts(
                &expr_plan,
                &expr_catalog,
                &expr_pool,
                ops::PAR_MIN_CHUNK,
                true,
            )
            .unwrap()
            .len()
        },
    );
    outcomes.push(Outcome {
        name: "expr_heavy_columnar",
        rows_in: expr_rel.len(),
        rows_out: out,
        naive: n,
        optimized: o,
        pipelined: Some(p),
        stats: take_delta(&mut mark),
    });

    // -- Cold start: re-ingest vs WAL replay vs snapshot load ----------
    // Three ways to bring the same catalog back after a restart: re-run
    // the SQL from scratch (parse + plan + execute, the only option
    // before the store existed), replay the physical WAL, or load one
    // checkpoint snapshot. Same final state by construction; compare3's
    // cardinality assert doubles as a recovery-equivalence check.
    let demo_sql = {
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../scripts/nba_demo.sql");
        match std::fs::read_to_string(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("error: cannot read {path}: {e}");
                std::process::exit(1);
            }
        }
    };
    let extra_inserts = if quick { 30 } else { 300 };
    let mut cold_script = demo_sql.clone();
    for i in 0..extra_inserts {
        let _ = write!(
            cold_script,
            "insert into ft values ('Player{i}', 'F', 'SL', 0.5);"
        );
    }
    let total_rows = |db: &maybms_core::MayBms| -> usize {
        db.table_names()
            .iter()
            .map(|n| db.table(n).map(|t| t.len()).unwrap_or(0))
            .sum()
    };
    let cold_root =
        std::env::temp_dir().join(format!("maybms_cold_start_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&cold_root);
    let wal_dir = cold_root.join("wal_replay");
    let snap_dir = cold_root.join("snapshot_load");
    let cold_setup = || -> maybms_core::Result<()> {
        let mut db = maybms_core::MayBms::open(&wal_dir)?;
        db.run_script(&cold_script)?;
        let mut db = maybms_core::MayBms::open(&snap_dir)?;
        db.run_script(&cold_script)?;
        db.checkpoint()?;
        Ok(())
    };
    if let Err(e) = cold_setup() {
        eprintln!("error: cold-start setup failed under {}: {e}", cold_root.display());
        std::process::exit(1);
    }
    let (n, o, p, out) = compare3(
        reps,
        || {
            let mut db = maybms_core::MayBms::new();
            db.run_script(&cold_script).expect("demo script is valid");
            total_rows(&db)
        },
        || {
            let db = maybms_core::MayBms::open(&wal_dir).expect("WAL replay");
            total_rows(&db)
        },
        || {
            let db = maybms_core::MayBms::open(&snap_dir).expect("snapshot load");
            total_rows(&db)
        },
    );
    outcomes.push(Outcome {
        name: "cold_start",
        rows_in: extra_inserts + 19, // demo rows + amplified insert statements
        rows_out: out,
        naive: n,
        optimized: o,
        pipelined: Some(p),
        stats: take_delta(&mut mark),
    });
    let _ = std::fs::remove_dir_all(&cold_root);

    // -- Instrumentation-overhead gate (--assert-overhead PCT) ---------
    // Re-runs the filter_project_chain pipeline through the streaming
    // executor twice per rep, interleaved — stats collector detached vs
    // attached — and fails if the attached median exceeds the requested
    // percentage overhead. A small absolute slack keeps sub-millisecond
    // medians (where one timer tick is several percent) from flaking.
    if let Some(pct) = assert_overhead {
        let pool = maybms_par::pool();
        let u_chain = URelation::from_certain(&certain);
        let chain_stream = |u: &URelation| {
            UStream::new(u.clone())
                .filter(&pred1)
                .unwrap()
                .project(&proj1)
                .unwrap()
                .filter(&pred2)
                .unwrap()
                .project(&proj2)
                .unwrap()
        };
        let o_reps = reps.max(7);
        let mut bare = Vec::with_capacity(o_reps);
        let mut inst = Vec::with_capacity(o_reps);
        for _ in 0..o_reps {
            let s = chain_stream(&u_chain);
            let t0 = Instant::now();
            let n_bare = std::hint::black_box(
                s.collect_stats(&pool, ops::PAR_MIN_CHUNK, maybms_pipe::columnar_default(), None)
                    .unwrap()
                    .len(),
            );
            bare.push(t0.elapsed().as_secs_f64() * 1e3);

            let s = chain_stream(&u_chain);
            let ps = s.stats_skeleton("overhead probe");
            let t0 = Instant::now();
            let n_inst = std::hint::black_box(
                s.collect_stats(
                    &pool,
                    ops::PAR_MIN_CHUNK,
                    maybms_pipe::columnar_default(),
                    Some(&ps),
                )
                .unwrap()
                .len(),
            );
            inst.push(t0.elapsed().as_secs_f64() * 1e3);
            assert_eq!(n_bare, n_inst, "instrumentation changed the result cardinality");
        }
        let (b, i) = (median(bare), median(inst));
        let allowed = b * (1.0 + pct / 100.0) + 0.05;
        println!(
            "instrumentation overhead: detached {b:.3} ms, attached {i:.3} ms \
             (gate: {pct}% + 0.05 ms slack)"
        );
        assert!(
            i <= allowed,
            "instrumented filter_project_chain median {i:.3} ms exceeds the \
             {pct}% overhead gate over detached {b:.3} ms"
        );
    }

    // -- Governor-neutrality gate --------------------------------------
    // The whole run executed with no statement limits armed, so every
    // governor counter delta must be zero — otherwise something aborted,
    // degraded, or retried inside the measured reps and the latency
    // numbers above are contaminated.
    let gov_now = gov_metric_mark();
    let gov_delta: Vec<u64> =
        gov_now.iter().zip(gov_mark).map(|(now, then)| now - then).collect();
    for (name, d) in GOV_COUNTERS.iter().zip(&gov_delta) {
        assert_eq!(
            *d, 0,
            "governor counter `{name}` moved by {d} during the baseline run; \
             the measured reps were perturbed (statement limits or store \
             fault injection armed?) and the results are invalid"
        );
    }

    // -- Report --------------------------------------------------------
    println!(
        "{:<24} {:>10} {:>10} {:>12} {:>12} {:>12} {:>9}",
        "workload", "rows_in", "rows_out", "naive ms", "opt ms", "pipe ms", "speedup"
    );
    let mut json = String::new();
    json.push_str("{\n");
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let _ = writeln!(
        json,
        "  \"meta\": {{ \"scale\": {scale}, \"reps\": {reps}, \"quick\": {quick}, \
         \"cores\": {cores}, \"trace\": {trace_on}, \
         \"note\": \"naive = seed algorithms (deep clones, Vec<Value> join keys, \
         per-row WSD heap allocation); optimized = zero-clone core (selection \
         vectors, hashed keys, batched rows, inline WSDs); *_par4 workloads run \
         the optimized operators on an explicit 4-thread maybms-par pool \
         (conf_dtree_par4 and karp_luby_par4 baselines are the *sequential \
         optimized* algorithms, isolating the scheduler; with cores=1 the par \
         columns bound threading overhead, not multicore scaling); workloads \
         with pipelined_ms additionally run the maybms-pipe morsel-driven \
         streaming executor over the same plan, columnar path at its \
         default, on (pipelined_speedup = \
         optimized_ms / pipelined_ms, the fusion win over full \
         materialisation); group_by_* are three-way grouped-aggregation \
         workloads: seed two-pass grouping vs single-pass AggState fold \
         over a materialised input vs the streaming grouped-aggregation \
         breaker (morsel-local group fold, input never materialised); \
         expr_heavy_columnar is naive vs the ROW-morsel streaming \
         executor (optimized_ms) vs the COLUMNAR vectorised one \
         (pipelined_ms) — its pipelined_speedup isolates the typed \
         kernel win over per-cell Value dispatch; \
         cold_start is a three-way restart workload on a real data \
         directory: fresh SQL re-ingest of the amplified nba demo \
         (naive_ms) vs maybms-store WAL replay (optimized_ms) vs \
         checkpoint snapshot load (pipelined_ms); \
         each workload row's stats object holds process-wide maybms-obs \
         metric deltas (morsels driven, scalar kernel fallbacks, Monte \
         Carlo samples drawn, row-to-column pivots) accumulated across \
         all reps and variants of that section; distinct_dict and \
         group_by_string_dict are three-way string-keyed workloads over \
         the columnar-at-rest store: naive_ms = seed operators on the \
         row image, optimized_ms = zero-clone operators hashing each \
         string per row, pipelined_ms = the dictionary-code path \
         (DISTINCT dedups u32 codes through a dense bitmap; GROUP BY \
         maps codes to groups with a dense per-morsel table) — their \
         stats.pivots stays 0 because the dictionary column is read \
         at rest; \
         interleaved medians, same process\" }},"
    );
    json.push_str("  \"workloads\": [\n");
    for (i, w) in outcomes.iter().enumerate() {
        let speedup = w.naive.p50 / w.optimized.p50;
        let pipe_col = match w.pipelined {
            Some(p) => format!("{:>12.3}", p.p50),
            None => format!("{:>12}", "-"),
        };
        println!(
            "{:<24} {:>10} {:>10} {:>12.3} {:>12.3} {} {:>8.2}x",
            w.name, w.rows_in, w.rows_out, w.naive.p50, w.optimized.p50, pipe_col, speedup
        );
        let _ = write!(
            json,
            "    {{ \"name\": \"{}\", \"rows_in\": {}, \"rows_out\": {}, \
             \"naive_ms\": {:.3}, \"naive_p99_ms\": {:.3}, \
             \"optimized_ms\": {:.3}, \"optimized_p99_ms\": {:.3}, \"speedup\": {:.2}",
            w.name,
            w.rows_in,
            w.rows_out,
            w.naive.p50,
            w.naive.p99,
            w.optimized.p50,
            w.optimized.p99,
            speedup
        );
        if let Some(p) = w.pipelined {
            let _ = write!(
                json,
                ", \"pipelined_ms\": {:.3}, \"pipelined_p99_ms\": {:.3}, \
                 \"pipelined_speedup\": {:.2}",
                p.p50,
                p.p99,
                w.optimized.p50 / p.p50
            );
        }
        let _ = write!(
            json,
            ", \"stats\": {{ \"morsels\": {}, \"scalar_fallbacks\": {}, \
             \"samples_drawn\": {}, \"pivots\": {} }}",
            w.stats.morsels, w.stats.scalar_fallbacks, w.stats.samples_drawn, w.stats.pivots
        );
        json.push_str(" }");
        json.push_str(if i + 1 < outcomes.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ],\n");
    // The cold_start section runs SQL through `MayBms::run_script`, so
    // the process's sliding statement-latency windows have content:
    // record their per-kind quantiles alongside the workload rows.
    json.push_str("  \"statement_windows\": {");
    for (i, kind) in maybms_obs::window::StatementKind::ALL.iter().enumerate() {
        let snap = maybms_obs::window::window_for(*kind).snapshot();
        let q = |q: f64| match snap.quantile(q) {
            Some(seconds) => format!("{:.3}", seconds * 1e3),
            None => "null".to_string(),
        };
        let _ = write!(
            json,
            "{}\"{}\": {{ \"count\": {}, \"p50_ms\": {}, \"p95_ms\": {}, \"p99_ms\": {} }}",
            if i == 0 { " " } else { ", " },
            kind.label(),
            snap.count,
            q(0.50),
            q(0.95),
            q(0.99)
        );
    }
    json.push_str(" },\n");
    // Governor counter deltas over the whole run — asserted zero above,
    // recorded so the trajectory file itself proves each measured run
    // was unperturbed by aborts, degradation, or storage retries.
    json.push_str("  \"governor\": {");
    for (i, (name, d)) in GOV_COUNTERS.iter().zip(&gov_delta).enumerate() {
        let _ = write!(json, "{}\"{name}\": {d}", if i == 0 { " " } else { ", " });
    }
    json.push_str(" }\n}");

    // The baseline file is a *trajectory*: each full-scale run appends
    // (per ROADMAP, so the measured history survives across PRs). A
    // legacy single-run file wraps into the runs array on first append.
    let full = match std::fs::read_to_string(&out_path) {
        // A runs file this binary wrote: splice before the closing `]}`.
        // A hand-edited tail that no longer matches falls through to the
        // wrap branch — never panic away a finished run's measurements.
        Ok(old)
            if old.trim_start().starts_with("{\n\"runs\"")
                && old.trim_end().ends_with("\n]\n}") =>
        {
            let trimmed = old.trim_end();
            let body = &trimmed[..trimmed.len() - "\n]\n}".len()];
            format!("{body},\n{json}\n]\n}}\n")
        }
        Ok(old) if !old.trim().is_empty() => {
            format!("{{\n\"runs\": [\n{},\n{json}\n]\n}}\n", old.trim_end())
        }
        _ => format!("{{\n\"runs\": [\n{json}\n]\n}}\n"),
    };
    // An unwritable results file must not panic away the run: the
    // measurements are all in `full`, so print them instead.
    match std::fs::write(&out_path, &full) {
        Ok(()) => println!("\nwrote {out_path}"),
        Err(e) => {
            eprintln!("error: cannot write {out_path}: {e}; printing results instead");
            println!("{full}");
            std::process::exit(1);
        }
    }
}
