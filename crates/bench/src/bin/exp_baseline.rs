//! `exp_baseline` — the zero-clone execution-core scorecard.
//!
//! Runs the join / filter / distinct / sort / repair-key workloads twice —
//! once through the seed-faithful naive operators
//! ([`maybms_bench::naive`]: deep clones, `Vec<Value>` join keys, per-row
//! WSD heap allocation) and once through the optimized operators
//! (selection vectors, hashed join keys, batched row buffers, inline
//! WSDs) — interleaved in one process so machine drift cancels out, and
//! writes `BENCH_baseline.json` with both numbers per workload. Later PRs
//! re-run this to extend the measured trajectory.
//!
//! Usage: `exp_baseline [--quick] [output.json]`
//!   --quick   small sizes / few reps (CI smoke; result file still valid)
//!
//! The `*_par4` workloads measure the `maybms-par` parallel operator and
//! confidence paths on an explicit 4-thread pool against the same naive
//! (or sequential, for conf) baseline. The JSON meta records how many
//! cores the machine actually has: on a single-core container the par
//! numbers bound scheduling overhead rather than demonstrating multicore
//! scaling, while the columnar-key and zero-clone gains still apply.

use std::fmt::Write as _;
use std::time::Instant;

use maybms_bench::{naive, workloads};
use maybms_conf::exact::{self, ExactOptions};
use maybms_conf::karp_luby::KarpLuby;
use maybms_engine::{ops, BinaryOp, Expr};
use maybms_urel::pick::PickTuplesOptions;
use maybms_urel::repair::RepairKeyOptions;
use maybms_urel::{algebra, WorldTable};
use rand::rngs::StdRng;
use rand::SeedableRng;

struct Outcome {
    name: &'static str,
    rows_in: usize,
    rows_out: usize,
    naive_ms: f64,
    optimized_ms: f64,
}

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(f64::total_cmp);
    xs[xs.len() / 2]
}

/// Interleave naive/optimized samples so slow drift hits both equally.
fn compare<N, O>(reps: usize, mut naive_run: N, mut opt_run: O) -> (f64, f64, usize)
where
    N: FnMut() -> usize,
    O: FnMut() -> usize,
{
    let mut n_samples = Vec::with_capacity(reps);
    let mut o_samples = Vec::with_capacity(reps);
    let mut rows_out = 0;
    for _ in 0..reps {
        let t0 = Instant::now();
        rows_out = std::hint::black_box(naive_run());
        n_samples.push(t0.elapsed().as_secs_f64() * 1e3);
        let t0 = Instant::now();
        let o_rows = std::hint::black_box(opt_run());
        o_samples.push(t0.elapsed().as_secs_f64() * 1e3);
        assert_eq!(rows_out, o_rows, "naive and optimized disagree on cardinality");
    }
    (median(n_samples), median(o_samples), rows_out)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| "BENCH_baseline.json".to_string());

    let (scale, reps) = if quick { (10_000usize, 3usize) } else { (100_000, 11) };
    let mut outcomes: Vec<Outcome> = Vec::new();

    // -- σ over a wide certain relation --------------------------------
    let (certain, _wt, uncertain) =
        workloads::overhead_pair(21, scale, (scale / 10) as i64);
    let pred = Expr::col("v").binary(BinaryOp::Lt, Expr::lit(500i64));
    let (n, o, out) = compare(
        reps,
        || naive::filter(&certain, &pred).unwrap().len(),
        || ops::filter(&certain, &pred).unwrap().len(),
    );
    outcomes.push(Outcome {
        name: "filter_certain",
        rows_in: certain.len(),
        rows_out: out,
        naive_ms: n,
        optimized_ms: o,
    });

    // -- σ over the U-relational twin (WSDs ride along) ----------------
    let (n, o, out) = compare(
        reps,
        || naive::select_u(&uncertain, &pred).unwrap().len(),
        || algebra::select(&uncertain, &pred).unwrap().len(),
    );
    outcomes.push(Outcome {
        name: "select_urel",
        rows_in: uncertain.len(),
        rows_out: out,
        naive_ms: n,
        optimized_ms: o,
    });

    // -- E5 wide self-join: output ≈ 5× input, copy-bound --------------
    let wide_rows = scale / 5;
    let (cw, _wtw, uw) = workloads::overhead_pair(22, wide_rows, (wide_rows / 10) as i64);
    let cwf = ops::filter(&cw, &pred).unwrap();
    let uwf = algebra::select(&uw, &pred).unwrap();
    let (n, o, out) = compare(
        reps,
        || naive::hash_join(&cwf, &cw, &[0], &[0]).unwrap().len(),
        || ops::hash_join(&cwf, &cw, &[0], &[0]).unwrap().len(),
    );
    outcomes.push(Outcome {
        name: "join_wide_certain",
        rows_in: cw.len(),
        rows_out: out,
        naive_ms: n,
        optimized_ms: o,
    });
    let (n, o, out) = compare(
        reps,
        || naive::hash_join_u(&uwf, &uw, &[0], &[0]).unwrap().len(),
        || algebra::hash_join(&uwf, &uw, &[0], &[0]).unwrap().len(),
    );
    outcomes.push(Outcome {
        name: "join_wide_urel",
        rows_in: uw.len(),
        rows_out: out,
        naive_ms: n,
        optimized_ms: o,
    });

    // -- Selective FK join: huge probe side, small output — the
    //    join-heavy case where per-row key/WSD allocations dominated ----
    let (big, _w2, ubig) = workloads::overhead_pair(33, scale * 2, 1_000_000);
    let (small, _w3, usmall) = workloads::overhead_pair(34, scale / 50, 1_000_000);
    let (n, o, out) = compare(
        reps,
        || naive::hash_join(&small, &big, &[0], &[0]).unwrap().len(),
        || ops::hash_join(&small, &big, &[0], &[0]).unwrap().len(),
    );
    outcomes.push(Outcome {
        name: "join_selective_certain",
        rows_in: big.len(),
        rows_out: out,
        naive_ms: n,
        optimized_ms: o,
    });
    let (n, o, out) = compare(
        reps,
        || naive::hash_join_u(&usmall, &ubig, &[0], &[0]).unwrap().len(),
        || algebra::hash_join(&usmall, &ubig, &[0], &[0]).unwrap().len(),
    );
    outcomes.push(Outcome {
        name: "join_selective_urel",
        rows_in: ubig.len(),
        rows_out: out,
        naive_ms: n,
        optimized_ms: o,
    });

    // -- Duplicate elimination under heavy duplication -----------------
    let dup = {
        let base = workloads::repair_input(55, scale / 100, 4);
        let mut all = base.clone();
        for _ in 0..24 {
            all = ops::union_all(&[&all, &base]).unwrap();
        }
        all
    };
    let (n, o, out) = compare(
        reps,
        || naive::distinct(&dup).len(),
        || ops::distinct(&dup).len(),
    );
    outcomes.push(Outcome {
        name: "distinct_certain",
        rows_in: dup.len(),
        rows_out: out,
        naive_ms: n,
        optimized_ms: o,
    });

    // -- ORDER BY (selection-vector sort vs clone-per-row) -------------
    let keys = [ops::SortKey::desc(Expr::col("v")), ops::SortKey::asc(Expr::col("k"))];
    let (n, o, out) = compare(
        reps,
        || naive::sort(&certain, &keys).unwrap().len(),
        || ops::sort(&certain, &keys).unwrap().len(),
    );
    outcomes.push(Outcome {
        name: "sort_certain",
        rows_in: certain.len(),
        rows_out: out,
        naive_ms: n,
        optimized_ms: o,
    });

    // -- repair key: hypothesis-space construction ---------------------
    let repair_in = workloads::repair_input(31, scale / 10, 8);
    let repair_opts = RepairKeyOptions { weight: Some(Expr::col("w")) };
    let (n, o, out) = compare(
        reps,
        || {
            let mut wt = WorldTable::new();
            naive::repair_key(&repair_in, &[Expr::col("k")], &repair_opts, &mut wt)
                .unwrap()
                .len()
        },
        || {
            let mut wt = WorldTable::new();
            maybms_urel::repair::repair_key(
                &repair_in,
                &[Expr::col("k")],
                &repair_opts,
                &mut wt,
            )
            .unwrap()
            .len()
        },
    );
    outcomes.push(Outcome {
        name: "repair_key",
        rows_in: repair_in.len(),
        rows_out: out,
        naive_ms: n,
        optimized_ms: o,
    });

    // -- pick tuples ---------------------------------------------------
    let pick_in = workloads::repair_input(35, scale, 1);
    let pick_opts = PickTuplesOptions { probability: Some(Expr::col("w").binary(
        BinaryOp::Div,
        Expr::lit(maybms_engine::Value::Float(10.0)),
    )) };
    let (n, o, out) = compare(
        reps,
        || {
            let mut wt = WorldTable::new();
            naive::pick_tuples(&pick_in, &pick_opts, &mut wt).unwrap().len()
        },
        || {
            let mut wt = WorldTable::new();
            maybms_urel::pick::pick_tuples(&pick_in, &pick_opts, &mut wt).unwrap().len()
        },
    );
    outcomes.push(Outcome {
        name: "pick_tuples",
        rows_in: pick_in.len(),
        rows_out: out,
        naive_ms: n,
        optimized_ms: o,
    });

    // -- Parallel variants on an explicit 4-thread pool ----------------
    let pool4 = maybms_par::ThreadPool::new(4);

    // Selective FK join again, parallel: partitioned build + chunked
    // probe + columnar single-column keys vs the naive join.
    let (n, o, out) = compare(
        reps,
        || naive::hash_join(&small, &big, &[0], &[0]).unwrap().len(),
        || ops::hash_join_with(&small, &big, &[0], &[0], &pool4, 4096).unwrap().len(),
    );
    outcomes.push(Outcome {
        name: "join_selective_par4",
        rows_in: big.len(),
        rows_out: out,
        naive_ms: n,
        optimized_ms: o,
    });

    // Wide (output-copy-bound) join, parallel vs naive.
    let (n, o, out) = compare(
        reps,
        || naive::hash_join(&cwf, &cw, &[0], &[0]).unwrap().len(),
        || ops::hash_join_with(&cwf, &cw, &[0], &[0], &pool4, 4096).unwrap().len(),
    );
    outcomes.push(Outcome {
        name: "join_wide_par4",
        rows_in: cw.len(),
        rows_out: out,
        naive_ms: n,
        optimized_ms: o,
    });

    // Exact confidence over a block DNF (many independent components):
    // sequential d-tree vs parallel independent-partition fan-out. Both
    // are the optimized algorithm; the delta isolates the scheduler.
    let blocks = if quick { 60 } else { 300 };
    let (cwt, cdnf) = workloads::block_dnf(77, blocks, 4, 3, 2);
    let (n, o, out) = compare(
        reps,
        || {
            exact::probability_with(&cdnf, &cwt, &ExactOptions::standard()).unwrap();
            blocks
        },
        || {
            exact::probability_par(&cdnf, &cwt, &ExactOptions::standard(), &pool4, 1)
                .unwrap();
            blocks
        },
    );
    outcomes.push(Outcome {
        name: "conf_dtree_par4",
        rows_in: cdnf.len(),
        rows_out: out,
        naive_ms: n,
        optimized_ms: o,
    });

    // Karp–Luby sampling at a fixed sample count: the sequential
    // single-stream estimator vs the seeded batch-parallel one.
    let (kwt, kdnf) = workloads::random_dnf(
        91,
        workloads::DnfParams { clauses: 40, vars: 20, clause_len: 3, domain: 2 },
    );
    let kl = KarpLuby::new(&kdnf, &kwt).unwrap();
    let samples = if quick { 20_000 } else { 200_000 };
    let (n, o, out) = compare(
        reps,
        || {
            let mut rng = StdRng::seed_from_u64(1);
            std::hint::black_box(kl.estimate(&kwt, samples, &mut rng));
            samples
        },
        || {
            std::hint::black_box(kl.estimate_seeded(&kwt, samples, 1, &pool4));
            samples
        },
    );
    outcomes.push(Outcome {
        name: "karp_luby_par4",
        rows_in: kdnf.len(),
        rows_out: out,
        naive_ms: n,
        optimized_ms: o,
    });

    // -- Report --------------------------------------------------------
    println!(
        "{:<24} {:>10} {:>10} {:>12} {:>12} {:>9}",
        "workload", "rows_in", "rows_out", "naive ms", "opt ms", "speedup"
    );
    let mut json = String::new();
    json.push_str("{\n");
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let _ = writeln!(
        json,
        "  \"meta\": {{ \"scale\": {scale}, \"reps\": {reps}, \"quick\": {quick}, \
         \"cores\": {cores}, \
         \"note\": \"naive = seed algorithms (deep clones, Vec<Value> join keys, \
         per-row WSD heap allocation); optimized = zero-clone core (selection \
         vectors, hashed keys, batched rows, inline WSDs); *_par4 workloads run \
         the optimized operators on an explicit 4-thread maybms-par pool \
         (conf_dtree_par4 and karp_luby_par4 baselines are the *sequential \
         optimized* algorithms, isolating the scheduler; with cores=1 the par \
         columns bound threading overhead, not multicore scaling); interleaved \
         medians, same process\" }},"
    );
    json.push_str("  \"workloads\": [\n");
    for (i, w) in outcomes.iter().enumerate() {
        let speedup = w.naive_ms / w.optimized_ms;
        println!(
            "{:<24} {:>10} {:>10} {:>12.3} {:>12.3} {:>8.2}x",
            w.name, w.rows_in, w.rows_out, w.naive_ms, w.optimized_ms, speedup
        );
        let _ = write!(
            json,
            "    {{ \"name\": \"{}\", \"rows_in\": {}, \"rows_out\": {}, \
             \"naive_ms\": {:.3}, \"optimized_ms\": {:.3}, \"speedup\": {:.2} }}",
            w.name, w.rows_in, w.rows_out, w.naive_ms, w.optimized_ms, speedup
        );
        json.push_str(if i + 1 < outcomes.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out_path, json).expect("write baseline json");
    println!("\nwrote {out_path}");
}
