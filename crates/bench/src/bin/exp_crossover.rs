//! E2 harness: exact vs approximate confidence across the
//! variable-to-clause ratio (§2.3 / Koch–Olteanu VLDB'08).
//!
//! The claim to reproduce: the exact algorithm wins except in a narrow
//! band of ratios where the DNF is both large and densely connected.

use std::time::Instant;

use maybms_bench::workloads::{random_dnf, DnfParams};
use maybms_conf::dklr::{approximate, DklrOptions};
use maybms_conf::exact;
use maybms_conf::karp_luby::KarpLuby;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(f64::total_cmp);
    xs[xs.len() / 2]
}

fn main() {
    const CLAUSES: usize = 48;
    println!("E2 — exact d-tree vs aconf(0.1, 0.1), {CLAUSES} clauses, 3 literals, domain 2");
    println!(
        "{:>7} {:>6} {:>14} {:>14} {:>10} {:>10}",
        "ratio", "vars", "exact ms", "aconf ms", "p_exact", "rel.err"
    );
    for ratio in [0.125, 0.25, 0.5, 1.0, 2.0, 4.0, 8.0] {
        let vars = ((CLAUSES as f64 * ratio).round() as usize).max(3);
        let (wt, dnf) =
            random_dnf(7, DnfParams { clauses: CLAUSES, vars, clause_len: 3, domain: 2 });

        let mut exact_times = Vec::new();
        let mut p_exact = 0.0;
        for _ in 0..5 {
            let t0 = Instant::now();
            p_exact = exact::probability(&dnf, &wt).unwrap();
            exact_times.push(t0.elapsed().as_secs_f64() * 1e3);
        }

        let kl = KarpLuby::new(&dnf, &wt).unwrap();
        let mut rng = StdRng::seed_from_u64(99);
        let mut approx_times = Vec::new();
        let mut p_approx = 0.0;
        for _ in 0..5 {
            let t0 = Instant::now();
            p_approx = approximate(&kl, &wt, &DklrOptions::new(0.1, 0.1), &mut rng)
                .unwrap()
                .estimate;
            approx_times.push(t0.elapsed().as_secs_f64() * 1e3);
        }
        println!(
            "{:>7} {:>6} {:>14.3} {:>14.3} {:>10.5} {:>10.4}",
            ratio,
            vars,
            median(exact_times),
            median(approx_times),
            p_exact,
            ((p_approx - p_exact) / p_exact).abs()
        );
    }
}
