//! Seed-faithful "naive" operator implementations, kept as the measured
//! *before* of the zero-clone execution core (`exp_baseline`) and as the
//! oracle for the operator-equivalence property tests.
//!
//! Each function reproduces the pre-refactor algorithm exactly as the seed
//! engine ran it:
//!
//! * tuples are **deep-copied** at every operator boundary (the seed's
//!   `Box<[Value]>`-backed rows made every clone an allocation plus a
//!   value-by-value copy);
//! * `distinct` clones every surviving tuple twice (once into the seen-set
//!   and once into the output);
//! * hash joins key their build table with an owned `Vec<Value>` cloned
//!   from the key columns of every build *and* probe row.
//!
//! They are correct, just allocation-heavy — exactly what `exp_baseline`
//! measures the optimized operators against.

use std::collections::{HashMap, HashSet};

use maybms_engine::{ops, EngineError, Expr, Relation, Tuple, Value};
use maybms_urel::{URelation, UTuple};

/// Deep copy of a row: allocates and copies every value (the seed's clone
/// semantics, bypassing today's `Arc` sharing).
pub fn deep_clone(t: &Tuple) -> Tuple {
    Tuple::new(t.values().to_vec())
}

/// Deep copy of an uncertain row (data values and WSD assignment list).
pub fn deep_clone_u(t: &UTuple) -> UTuple {
    let wsd = maybms_urel::Wsd::from_assignments(t.wsd.assignments().to_vec())
        .expect("existing WSD is satisfiable");
    UTuple::new(deep_clone(&t.data), wsd)
}

/// Seed `filter`: clone every surviving tuple.
pub fn filter(input: &Relation, predicate: &Expr) -> Result<Relation, EngineError> {
    let bound = predicate.bind(input.schema())?;
    let mut out = Vec::new();
    for t in input.tuples() {
        if bound.eval_predicate(t)? {
            out.push(deep_clone(t));
        }
    }
    Ok(Relation::new_unchecked(input.schema().clone(), out))
}

/// Seed π: evaluate the items per row into a fresh per-row allocation
/// (one `Vec` + one buffer per output row — the seed's cost model,
/// bypassing today's batched shared buffers).
pub fn project(
    input: &Relation,
    items: &[ops::ProjectItem],
) -> Result<Relation, EngineError> {
    let in_schema = input.schema();
    let bound: Vec<(Expr, maybms_engine::Field)> = items
        .iter()
        .map(|item| {
            let e = item.expr.bind(in_schema)?;
            let dtype = e.data_type(in_schema);
            Ok((e, maybms_engine::Field::new(item.name.clone(), dtype)))
        })
        .collect::<Result<_, EngineError>>()?;
    let schema = std::sync::Arc::new(maybms_engine::Schema::new(
        bound.iter().map(|(_, f)| f.clone()).collect(),
    ));
    let mut out = Vec::with_capacity(input.len());
    for t in input.tuples() {
        let vals: Vec<Value> = bound
            .iter()
            .map(|(e, _)| e.eval(t))
            .collect::<Result<_, EngineError>>()?;
        out.push(Tuple::new(vals));
    }
    Ok(Relation::new_unchecked(schema, out))
}

/// Seed `distinct`: the double clone (seen-set + output).
pub fn distinct(input: &Relation) -> Relation {
    let mut seen = HashSet::with_capacity(input.len());
    let mut out = Vec::new();
    for t in input.tuples() {
        if seen.insert(deep_clone(t)) {
            out.push(deep_clone(t));
        }
    }
    Relation::new_unchecked(input.schema().clone(), out)
}

/// Seed `sort`: decorate, sort, clone each tuple into place.
pub fn sort(input: &Relation, keys: &[ops::SortKey]) -> Result<Relation, EngineError> {
    let bound: Vec<(Expr, bool)> = keys
        .iter()
        .map(|k| Ok((k.expr.bind(input.schema())?, k.ascending)))
        .collect::<Result<_, EngineError>>()?;
    let mut decorated: Vec<(Vec<Value>, usize)> = Vec::with_capacity(input.len());
    for (i, t) in input.tuples().iter().enumerate() {
        let kv: Vec<Value> = bound
            .iter()
            .map(|(e, _)| e.eval(t))
            .collect::<Result<_, EngineError>>()?;
        decorated.push((kv, i));
    }
    decorated.sort_by(|(ka, ia), (kb, ib)| {
        for ((a, b), (_, asc)) in ka.iter().zip(kb).zip(&bound) {
            let ord = a.cmp(b);
            let ord = if *asc { ord } else { ord.reverse() };
            if ord != std::cmp::Ordering::Equal {
                return ord;
            }
        }
        ia.cmp(ib)
    });
    let tuples = decorated
        .into_iter()
        .map(|(_, i)| deep_clone(&input.tuples()[i]))
        .collect();
    Ok(Relation::new_unchecked(input.schema().clone(), tuples))
}

/// The seed's key extractor: an owned `Vec<Value>` per row, `None` on any
/// NULL key.
fn key_of(values: &[Value], keys: &[usize]) -> Option<Vec<Value>> {
    let mut k = Vec::with_capacity(keys.len());
    for &i in keys {
        let v = &values[i];
        if v.is_null() {
            return None;
        }
        k.push(v.clone());
    }
    Some(k)
}

/// Seed `hash_join` over certain relations: `Vec<Value>`-keyed build
/// table, build on the smaller side.
pub fn hash_join(
    left: &Relation,
    right: &Relation,
    left_keys: &[usize],
    right_keys: &[usize],
) -> Result<Relation, EngineError> {
    let schema = std::sync::Arc::new(left.schema().join(right.schema()));
    let (build, probe, build_keys, probe_keys, build_is_left) = if left.len() <= right.len() {
        (left, right, left_keys, right_keys, true)
    } else {
        (right, left, right_keys, left_keys, false)
    };
    let mut table: HashMap<Vec<Value>, Vec<&Tuple>> = HashMap::with_capacity(build.len());
    for t in build.tuples() {
        if let Some(k) = key_of(t.values(), build_keys) {
            table.entry(k).or_default().push(t);
        }
    }
    let mut out = Vec::new();
    for p in probe.tuples() {
        let Some(k) = key_of(p.values(), probe_keys) else { continue };
        if let Some(matches) = table.get(&k) {
            for b in matches {
                out.push(if build_is_left { b.concat(p) } else { p.concat(b) });
            }
        }
    }
    Ok(Relation::new_unchecked(schema, out))
}

/// Seed U-relational σ: clone every surviving `UTuple` (data + WSD).
pub fn select_u(input: &URelation, predicate: &Expr) -> maybms_urel::Result<URelation> {
    let bound = predicate.bind(input.schema())?;
    let mut out = Vec::new();
    for t in input.tuples() {
        if bound.eval_predicate(&t.data)? {
            out.push(deep_clone_u(t));
        }
    }
    Ok(URelation::new(input.schema().clone(), out))
}

/// Seed U-relational π: one fresh `Vec` per output row plus a deep WSD
/// clone (the seed's cost model).
pub fn project_u(
    input: &URelation,
    items: &[ops::ProjectItem],
) -> maybms_urel::Result<URelation> {
    let in_schema = input.schema();
    let bound: Vec<(Expr, maybms_engine::Field)> = items
        .iter()
        .map(|item| {
            let e = item.expr.bind(in_schema)?;
            let dtype = e.data_type(in_schema);
            Ok((e, maybms_engine::Field::new(item.name.clone(), dtype)))
        })
        .collect::<Result<_, EngineError>>()?;
    let schema = std::sync::Arc::new(maybms_engine::Schema::new(
        bound.iter().map(|(_, f)| f.clone()).collect(),
    ));
    let mut out = Vec::with_capacity(input.len());
    for t in input.tuples() {
        let vals: Vec<Value> = bound
            .iter()
            .map(|(e, _)| e.eval(&t.data))
            .collect::<Result<_, EngineError>>()?;
        let wsd = maybms_urel::Wsd::from_assignments(t.wsd.assignments().to_vec())
            .expect("existing WSD is satisfiable");
        out.push(UTuple::new(Tuple::new(vals), wsd));
    }
    Ok(URelation::new(schema, out))
}

/// Seed U-relational hash ⋈: `Vec<Value>` keys, WSD conjunction per
/// surviving pair.
pub fn hash_join_u(
    left: &URelation,
    right: &URelation,
    left_keys: &[usize],
    right_keys: &[usize],
) -> maybms_urel::Result<URelation> {
    let schema = std::sync::Arc::new(left.schema().join(right.schema()));
    let mut table: HashMap<Vec<Value>, Vec<&UTuple>> = HashMap::with_capacity(left.len());
    for t in left.tuples() {
        if let Some(k) = key_of(t.data.values(), left_keys) {
            table.entry(k).or_default().push(t);
        }
    }
    let mut out = Vec::new();
    for r in right.tuples() {
        let Some(k) = key_of(r.data.values(), right_keys) else { continue };
        if let Some(matches) = table.get(&k) {
            for l in matches {
                if let Some(wsd) = l.wsd.conjoin(&r.wsd) {
                    // The seed conjoin heap-allocated a fresh
                    // `Vec<Assignment>` per output row; reconstruct the
                    // WSD through the Vec path to reproduce that cost.
                    let wsd = maybms_urel::Wsd::from_assignments(
                        wsd.assignments().to_vec(),
                    )
                    .expect("conjoined WSD is satisfiable");
                    out.push(UTuple::new(l.data.concat(&r.data), wsd));
                }
            }
        }
    }
    Ok(URelation::new(schema, out))
}

/// Seed nested-loop ⋈ over U-relations (predicate oracle for the property
/// tests: every hashed equi-join must agree with it as a bag).
pub fn nested_loop_join_u(
    left: &URelation,
    right: &URelation,
    predicate: Option<&Expr>,
) -> maybms_urel::Result<URelation> {
    let schema = std::sync::Arc::new(left.schema().join(right.schema()));
    let bound = predicate.map(|p| p.bind(&schema)).transpose()?;
    let mut out = Vec::new();
    for l in left.tuples() {
        for r in right.tuples() {
            let Some(wsd) = l.wsd.conjoin(&r.wsd) else { continue };
            let data = l.data.concat(&r.data);
            if let Some(p) = &bound {
                if !p.eval_predicate(&data)? {
                    continue;
                }
            }
            out.push(UTuple::new(data, wsd));
        }
    }
    Ok(URelation::new(schema, out))
}

/// Seed grouped aggregation: SipHash `Vec<Value>`-keyed grouping with one
/// owned key per row, then a **second pass** per (group, aggregate) that
/// re-scans the group's index list and collects the argument values into
/// a fresh `Vec` before reducing — the pre-AggState shape whose
/// full-input materialisation and per-group rescans `exp_baseline`
/// measures the streaming breaker against.
pub fn aggregate(
    input: &Relation,
    group_exprs: &[Expr],
    group_names: &[String],
    aggs: &[ops::AggCall],
) -> Result<Relation, EngineError> {
    let in_schema = input.schema();
    let bound_keys: Vec<Expr> = group_exprs
        .iter()
        .map(|e| e.bind(in_schema))
        .collect::<Result<_, EngineError>>()?;
    let bound_aggs: Vec<(ops::AggFunc, Option<Expr>)> = aggs
        .iter()
        .map(|a| Ok((a.func, a.arg.as_ref().map(|e| e.bind(in_schema)).transpose()?)))
        .collect::<Result<_, EngineError>>()?;
    let schema = ops::aggregate_schema(in_schema, group_exprs, group_names, aggs)?;

    // Pass 1: group by owned keys.
    let mut index: HashMap<Vec<Value>, usize> = HashMap::new();
    let mut groups: Vec<(Vec<Value>, Vec<usize>)> = Vec::new();
    if bound_keys.is_empty() {
        groups.push((Vec::new(), (0..input.len()).collect()));
    } else {
        for (i, t) in input.tuples().iter().enumerate() {
            let key: Vec<Value> = bound_keys
                .iter()
                .map(|e| e.eval(t))
                .collect::<Result<_, EngineError>>()?;
            match index.get(&key) {
                Some(&g) => groups[g].1.push(i),
                None => {
                    index.insert(key.clone(), groups.len());
                    groups.push((key, vec![i]));
                }
            }
        }
    }

    // Pass 2: per (group, aggregate), re-scan the index list.
    let mut out = Vec::with_capacity(groups.len());
    for (key, indices) in groups {
        let mut row = key;
        for (func, arg) in &bound_aggs {
            let values = |a: &Expr| -> Result<Vec<Value>, EngineError> {
                let mut vs = Vec::with_capacity(indices.len());
                for &i in &indices {
                    let v = a.eval(&input.tuples()[i])?;
                    if !v.is_null() {
                        vs.push(v);
                    }
                }
                Ok(vs)
            };
            let v = match (func, arg) {
                (ops::AggFunc::Count, None) => Value::Int(indices.len() as i64),
                (ops::AggFunc::Count, Some(a)) => Value::Int(values(a)?.len() as i64),
                (f, Some(a)) => {
                    let vs = values(a)?;
                    match f {
                        ops::AggFunc::Sum | ops::AggFunc::Avg => {
                            if vs.is_empty() {
                                Value::Null
                            } else {
                                let mut fsum = 0.0f64;
                                let mut isum = 0i64;
                                let mut all_int = true;
                                for v in &vs {
                                    match v {
                                        Value::Int(i) => {
                                            isum = isum.wrapping_add(*i);
                                            fsum += *i as f64;
                                        }
                                        Value::Float(x) => {
                                            all_int = false;
                                            fsum += x;
                                        }
                                        other => {
                                            return Err(EngineError::TypeMismatch {
                                                message: format!(
                                                    "{}() applied to {}",
                                                    f.name(),
                                                    other.data_type()
                                                ),
                                            })
                                        }
                                    }
                                }
                                match f {
                                    ops::AggFunc::Sum if all_int => Value::Int(isum),
                                    ops::AggFunc::Sum => Value::Float(fsum),
                                    _ => Value::Float(fsum / vs.len() as f64),
                                }
                            }
                        }
                        ops::AggFunc::Min => vs.into_iter().min().unwrap_or(Value::Null),
                        ops::AggFunc::Max => vs.into_iter().max().unwrap_or(Value::Null),
                        ops::AggFunc::Count => unreachable!(),
                    }
                }
                (f, None) => {
                    return Err(EngineError::InvalidOperator {
                        message: format!("{}() requires an argument", f.name()),
                    })
                }
            };
            row.push(v);
        }
        out.push(Tuple::new(row));
    }
    Ok(Relation::new_unchecked(schema, out))
}

/// Seed U-relational grouping: one owned `Vec<Value>` key per row into a
/// SipHash map (`exp_baseline`'s *before* for the grouped-`conf()`
/// workload; aggregate evaluation is shared so the delta isolates
/// grouping + materialisation).
#[allow(clippy::type_complexity)]
pub fn group_u(
    u: &URelation,
    key_exprs: &[Expr],
) -> maybms_urel::Result<(Vec<Vec<Value>>, Vec<Vec<usize>>)> {
    if key_exprs.is_empty() {
        return Ok((vec![Vec::new()], vec![(0..u.len()).collect()]));
    }
    let mut index: HashMap<Vec<Value>, usize> = HashMap::new();
    let mut keys: Vec<Vec<Value>> = Vec::new();
    let mut members: Vec<Vec<usize>> = Vec::new();
    for (i, t) in u.tuples().iter().enumerate() {
        let key: Vec<Value> = key_exprs
            .iter()
            .map(|e| e.eval(&t.data))
            .collect::<Result<_, EngineError>>()?;
        match index.get(&key) {
            Some(&g) => members[g].push(i),
            None => {
                index.insert(key.clone(), keys.len());
                keys.push(key);
                members.push(vec![i]);
            }
        }
    }
    Ok((keys, members))
}

/// Seed `repair key`: SipHash `Vec<Value>`-keyed grouping, deep-cloned
/// output rows, and per-row heap-allocated WSD construction.
pub fn repair_key(
    input: &Relation,
    key_exprs: &[Expr],
    options: &maybms_urel::repair::RepairKeyOptions,
    wt: &mut maybms_urel::WorldTable,
) -> maybms_urel::Result<URelation> {
    use maybms_urel::{Assignment, UrelError, Wsd};
    let weights: Vec<f64> = match &options.weight {
        None => vec![1.0; input.len()],
        Some(w) => {
            let bound = w.bind(input.schema())?;
            let mut ws = Vec::with_capacity(input.len());
            for t in input.tuples() {
                let v = bound.eval(t)?;
                let x = v.as_f64().ok_or_else(|| UrelError::BadWeight {
                    message: format!("weight expression produced non-numeric value {v}"),
                })?;
                if !x.is_finite() || x < 0.0 {
                    return Err(UrelError::BadWeight {
                        message: format!("weight {x} is negative or not finite"),
                    });
                }
                ws.push(x);
            }
            ws
        }
    };
    // Seed grouping: one owned Vec<Value> key per row into a SipHash map.
    let bound: Vec<Expr> = key_exprs
        .iter()
        .map(|e| e.bind(input.schema()))
        .collect::<Result<_, EngineError>>()?;
    let mut index: HashMap<Vec<Value>, usize> = HashMap::new();
    let mut groups: Vec<Vec<usize>> = Vec::new();
    for (i, t) in input.tuples().iter().enumerate() {
        let key: Vec<Value> = bound
            .iter()
            .map(|e| e.eval(t))
            .collect::<Result<_, EngineError>>()?;
        match index.get(&key) {
            Some(&g) => groups[g].push(i),
            None => {
                index.insert(key, groups.len());
                groups.push(vec![i]);
            }
        }
    }
    let mut out = Vec::with_capacity(input.len());
    for indices in groups {
        let alive: Vec<usize> =
            indices.iter().copied().filter(|&i| weights[i] > 0.0).collect();
        if alive.is_empty() {
            return Err(UrelError::BadWeight {
                message: "all weights in a repair-key group are zero".into(),
            });
        }
        if alive.len() == 1 {
            out.push(UTuple::certain(deep_clone(&input.tuples()[alive[0]])));
            continue;
        }
        let total: f64 = alive.iter().map(|&i| weights[i]).sum();
        let probs: Vec<f64> = alive.iter().map(|&i| weights[i] / total).collect();
        let var = wt.new_var(&probs)?;
        for (alt, &i) in alive.iter().enumerate() {
            let wsd = Wsd::from_assignments(vec![Assignment::new(var, alt as u16)])
                .expect("single assignment is satisfiable");
            out.push(UTuple::new(deep_clone(&input.tuples()[i]), wsd));
        }
    }
    Ok(URelation::new(input.schema().clone(), out))
}

/// Seed `pick tuples`: deep-cloned rows and heap-built single-assignment
/// WSDs.
pub fn pick_tuples(
    input: &Relation,
    options: &maybms_urel::pick::PickTuplesOptions,
    wt: &mut maybms_urel::WorldTable,
) -> maybms_urel::Result<URelation> {
    use maybms_urel::{Assignment, UrelError, Wsd};
    let bound =
        options.probability.as_ref().map(|e| e.bind(input.schema())).transpose()?;
    let mut out = Vec::with_capacity(input.len());
    for t in input.tuples() {
        let p = match &bound {
            None => 0.5,
            Some(e) => {
                let v = e.eval(t)?;
                v.as_f64().ok_or_else(|| UrelError::BadProbability {
                    message: format!("probability expression produced non-numeric value {v}"),
                })?
            }
        };
        if !p.is_finite() || !(0.0..=1.0).contains(&p) {
            return Err(UrelError::BadProbability {
                message: format!("tuple probability {p} outside [0, 1]"),
            });
        }
        if p == 0.0 {
            continue;
        }
        if p == 1.0 {
            out.push(UTuple::certain(deep_clone(t)));
            continue;
        }
        let var = wt.new_var(&[1.0 - p, p])?;
        let wsd = Wsd::from_assignments(vec![Assignment::new(var, 1)])
            .expect("single assignment is satisfiable");
        out.push(UTuple::new(deep_clone(t), wsd));
    }
    Ok(URelation::new(input.schema().clone(), out))
}

#[cfg(test)]
mod tests {
    use super::*;
    use maybms_engine::{rel, BinaryOp, DataType};

    #[test]
    fn naive_ops_agree_with_engine_ops() {
        let r = rel(
            &[("k", DataType::Int), ("v", DataType::Int)],
            vec![
                vec![1.into(), 10.into()],
                vec![2.into(), 20.into()],
                vec![1.into(), 10.into()],
                vec![Value::Null, 5.into()],
            ],
        );
        let pred = Expr::col("v").binary(BinaryOp::Gt, Expr::lit(5i64));
        assert_eq!(
            filter(&r, &pred).unwrap().tuples(),
            ops::filter(&r, &pred).unwrap().tuples()
        );
        assert_eq!(distinct(&r).tuples(), ops::distinct(&r).tuples());
        let mut a = hash_join(&r, &r, &[0], &[0]).unwrap().into_tuples();
        let mut b = ops::hash_join(&r, &r, &[0], &[0]).unwrap().into_tuples();
        a.sort();
        b.sort();
        assert_eq!(a, b);
    }
}
