//! # maybms-bench — workload generators and experiment harnesses
//!
//! Reproduces the MayBMS evaluation artifacts (DESIGN.md §3): seeded
//! generators for the NBA what-if scenario (Figure 1), random DNF
//! families, TPC-H-style tuple-independent databases for SPROUT, and the
//! U-relation-overhead workloads. Criterion benches live in `benches/`;
//! printable experiment harnesses in `src/bin/exp_*.rs`.

pub mod naive;
pub mod workloads;
