//! Seeded workload generators for the experiment suite (DESIGN.md §3).
//!
//! Every generator is deterministic in its seed so experiment tables are
//! reproducible run-to-run.

use std::collections::HashMap;
use std::sync::Arc;

use maybms_conf::Dnf;
use maybms_engine::{DataType, Expr, Field, Relation, Schema, Tuple, Value};
use maybms_urel::pick::{pick_tuples, PickTuplesOptions};
use maybms_urel::{Assignment, URelation, Var, WorldTable, Wsd};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Fitness states of the NBA scenario.
pub const STATES: [&str; 3] = ["F", "SE", "SL"];

/// Generate the NBA what-if scenario (§3 / Figure 1): `players` random
/// per-player stochastic matrices as the `FT` relation plus an initial
/// `States` table.
pub fn nba(seed: u64, players: usize) -> (Relation, Relation) {
    let mut rng = StdRng::seed_from_u64(seed);
    let ft_schema = Arc::new(Schema::new(vec![
        Field::new("player", DataType::Text),
        Field::new("init", DataType::Text),
        Field::new("final", DataType::Text),
        Field::new("p", DataType::Float),
    ]));
    let states_schema = Arc::new(Schema::new(vec![
        Field::new("player", DataType::Text),
        Field::new("state", DataType::Text),
    ]));
    let mut ft = Vec::new();
    let mut states = Vec::new();
    for pid in 0..players {
        let name = format!("player{pid:04}");
        for from in STATES {
            // A random distribution over the three target states.
            let a: f64 = rng.gen_range(0.05..1.0);
            let b: f64 = rng.gen_range(0.05..1.0);
            let c: f64 = rng.gen_range(0.05..1.0);
            let total = a + b + c;
            for (to, w) in STATES.iter().zip([a / total, b / total, c / total]) {
                ft.push(Tuple::new(vec![
                    Value::str(&name),
                    Value::str(from),
                    Value::str(*to),
                    Value::Float(w),
                ]));
            }
        }
        let init = STATES[rng.gen_range(0..STATES.len())];
        states.push(Tuple::new(vec![Value::str(&name), Value::str(init)]));
    }
    (
        Relation::new_unchecked(ft_schema, ft),
        Relation::new_unchecked(states_schema, states),
    )
}

/// Parameters of a random DNF family (experiment E2/E7).
#[derive(Debug, Clone, Copy)]
pub struct DnfParams {
    /// Number of clauses.
    pub clauses: usize,
    /// Number of distinct variables.
    pub vars: usize,
    /// Literals per clause.
    pub clause_len: usize,
    /// Domain size of every variable.
    pub domain: u16,
}

/// Generate a random monotone DNF over fresh variables.
pub fn random_dnf(seed: u64, p: DnfParams) -> (WorldTable, Dnf) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut wt = WorldTable::new();
    let vars: Vec<Var> = (0..p.vars.max(1))
        .map(|_| {
            let mut dist = vec![0.0; p.domain as usize];
            let mut total = 0.0;
            for d in dist.iter_mut() {
                *d = rng.gen_range(0.05..1.0);
                total += *d;
            }
            for d in dist.iter_mut() {
                *d /= total;
            }
            wt.new_var(&dist).expect("valid distribution")
        })
        .collect();
    let mut clauses = Vec::with_capacity(p.clauses);
    while clauses.len() < p.clauses {
        let len = p.clause_len.max(1).min(vars.len());
        let mut assignments = Vec::with_capacity(len);
        let mut used = std::collections::HashSet::new();
        while assignments.len() < len {
            let v = vars[rng.gen_range(0..vars.len())];
            if used.insert(v) {
                assignments.push(Assignment::new(v, rng.gen_range(0..p.domain)));
            }
        }
        if let Some(w) = Wsd::from_assignments(assignments) {
            clauses.push(w);
        }
    }
    (wt, Dnf::new(clauses))
}

/// A block-structured DNF: `blocks` independent groups of `per_block`
/// clauses over `vars_per_block` shared variables — the family where
/// independence decomposition shines (E7).
pub fn block_dnf(
    seed: u64,
    blocks: usize,
    per_block: usize,
    vars_per_block: usize,
    domain: u16,
) -> (WorldTable, Dnf) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut wt = WorldTable::new();
    let mut clauses = Vec::new();
    for _ in 0..blocks {
        let vars: Vec<Var> = (0..vars_per_block)
            .map(|_| {
                let p = 1.0 / f64::from(domain);
                let mut dist = vec![p; domain as usize];
                dist[0] = 1.0 - p * f64::from(domain - 1);
                wt.new_var(&dist).expect("valid distribution")
            })
            .collect();
        for _ in 0..per_block {
            let len = rng.gen_range(1..=vars.len());
            let mut assignments = Vec::new();
            let mut used = std::collections::HashSet::new();
            while assignments.len() < len {
                let v = vars[rng.gen_range(0..vars.len())];
                if used.insert(v) {
                    assignments.push(Assignment::new(v, rng.gen_range(0..domain)));
                }
            }
            if let Some(w) = Wsd::from_assignments(assignments) {
                clauses.push(w);
            }
        }
    }
    (wt, Dnf::new(clauses))
}

/// A TPC-H-shaped tuple-independent probabilistic database (E4):
/// `customer(ck, segment)`, `orders(ok, ck)`, `lineitem(ok, qty)` with a
/// per-tuple probability column. Stands in for the probabilistic TPC-H
/// instances of the SPROUT evaluation (see DESIGN.md §1).
pub fn tpch_ti(
    seed: u64,
    customers: usize,
    orders_per_customer: usize,
    lineitems_per_order: usize,
) -> (WorldTable, HashMap<String, URelation>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut wt = WorldTable::new();
    let mut tables = HashMap::new();

    let segments = ["BUILDING", "AUTOMOBILE", "MACHINERY"];
    let mut cust_rows = Vec::new();
    for ck in 0..customers {
        cust_rows.push(vec![
            Value::Int(ck as i64),
            Value::str(segments[rng.gen_range(0..segments.len())]),
            Value::Float(rng.gen_range(0.05..1.0)),
        ]);
    }
    let customer = maybms_engine::rel(
        &[("ck", DataType::Int), ("segment", DataType::Text), ("prob", DataType::Float)],
        cust_rows,
    );

    let mut order_rows = Vec::new();
    let mut ok = 0i64;
    for ck in 0..customers {
        for _ in 0..orders_per_customer {
            order_rows.push(vec![
                Value::Int(ok),
                Value::Int(ck as i64),
                Value::Float(rng.gen_range(0.05..1.0)),
            ]);
            ok += 1;
        }
    }
    let orders = maybms_engine::rel(
        &[("ok", DataType::Int), ("ck", DataType::Int), ("prob", DataType::Float)],
        order_rows,
    );

    let mut li_rows = Vec::new();
    for o in 0..ok {
        for _ in 0..lineitems_per_order {
            li_rows.push(vec![
                Value::Int(o),
                Value::Int(rng.gen_range(1..50)),
                Value::Float(rng.gen_range(0.05..1.0)),
            ]);
        }
    }
    let lineitem = maybms_engine::rel(
        &[("ok", DataType::Int), ("qty", DataType::Int), ("prob", DataType::Float)],
        li_rows,
    );

    let opts = PickTuplesOptions { probability: Some(Expr::col("prob")) };
    tables.insert(
        "customer".to_string(),
        pick_tuples(&customer, &opts, &mut wt).expect("valid probabilities"),
    );
    tables.insert(
        "orders".to_string(),
        pick_tuples(&orders, &opts, &mut wt).expect("valid probabilities"),
    );
    tables.insert(
        "lineitem".to_string(),
        pick_tuples(&lineitem, &opts, &mut wt).expect("valid probabilities"),
    );
    (wt, tables)
}

/// E5 workload: a pair of relations (certain twin + uncertain twin over a
/// fresh world table). The uncertain twin conditions every row on a fresh
/// Boolean variable, so it represents 2^rows worlds while storing the same
/// number of tuples.
pub fn overhead_pair(seed: u64, rows: usize, keys: i64) -> (Relation, WorldTable, URelation) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut data = Vec::with_capacity(rows);
    for _ in 0..rows {
        data.push(vec![
            Value::Int(rng.gen_range(0..keys)),
            Value::Int(rng.gen_range(0..1000)),
            Value::Float(rng.gen_range(0.05..1.0)),
        ]);
    }
    let certain = maybms_engine::rel(
        &[("k", DataType::Int), ("v", DataType::Int), ("prob", DataType::Float)],
        data,
    );
    let mut wt = WorldTable::new();
    let uncertain = pick_tuples(
        &certain,
        &PickTuplesOptions { probability: Some(Expr::col("prob")) },
        &mut wt,
    )
    .expect("valid probabilities");
    (certain, wt, uncertain)
}

/// Expression-heavy workload table: four integer columns plus a float —
/// the shape where per-cell `Value` dispatch dominates a fused σ/π
/// chain and the columnar kernels have the most to win. Ranges keep all
/// generated arithmetic overflow-free.
pub fn expr_table(seed: u64, rows: usize) -> Relation {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut data = Vec::with_capacity(rows);
    for _ in 0..rows {
        data.push(vec![
            Value::Int(rng.gen_range(0..1000)),
            Value::Int(rng.gen_range(0..1000)),
            Value::Int(rng.gen_range(0..1000)),
            Value::Int(rng.gen_range(0..1000)),
            Value::Float(rng.gen_range(0.0..1.0)),
        ]);
    }
    maybms_engine::rel(
        &[
            ("a", DataType::Int),
            ("b", DataType::Int),
            ("c", DataType::Int),
            ("d", DataType::Int),
            ("x", DataType::Float),
        ],
        data,
    )
}

/// String-keyed workload table: `(s Text, v Int)` with `keys` distinct
/// key strings (realistic identifier-ish lengths, so string hashing and
/// equality have real work to do), heavy duplication, and ~1% NULL keys
/// — the shape where the columnar store's dictionary encoding pays:
/// DISTINCT and GROUP BY on `s` can run over u32 codes instead of
/// hashing each string per row.
pub fn string_keyed(seed: u64, rows: usize, keys: usize) -> Relation {
    let mut rng = StdRng::seed_from_u64(seed);
    let pool: Vec<String> =
        (0..keys.max(1)).map(|k| format!("customer-{k:06}-{:08x}", k * 2_654_435_761)).collect();
    let mut data = Vec::with_capacity(rows);
    for _ in 0..rows {
        let s = if rng.gen_range(0..100) == 0 {
            Value::Null
        } else {
            Value::str(pool[rng.gen_range(0..pool.len())].as_str())
        };
        data.push(vec![s, Value::Int(rng.gen_range(0..1000))]);
    }
    maybms_engine::rel(&[("s", DataType::Text), ("v", DataType::Int)], data)
}

/// E6 workload: a key-violating relation with `groups` keys ×
/// `alternatives` rows per key and random positive weights.
pub fn repair_input(seed: u64, groups: usize, alternatives: usize) -> Relation {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut rows = Vec::with_capacity(groups * alternatives);
    for g in 0..groups {
        for a in 0..alternatives {
            rows.push(vec![
                Value::Int(g as i64),
                Value::Int(a as i64),
                Value::Float(rng.gen_range(0.1..10.0)),
            ]);
        }
    }
    maybms_engine::rel(
        &[("k", DataType::Int), ("alt", DataType::Int), ("w", DataType::Float)],
        rows,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nba_shapes() {
        let (ft, states) = nba(7, 5);
        assert_eq!(ft.len(), 5 * 9);
        assert_eq!(states.len(), 5);
        // Rows of each player's matrix sum to 1.
        let p0: f64 = ft
            .tuples()
            .iter()
            .filter(|t| {
                t.value(0).as_str() == Some("player0000") && t.value(1).as_str() == Some("F")
            })
            .map(|t| t.value(3).as_f64().unwrap())
            .sum();
        assert!((p0 - 1.0).abs() < 1e-9);
    }

    #[test]
    fn nba_deterministic_in_seed() {
        let (a, _) = nba(42, 3);
        let (b, _) = nba(42, 3);
        assert_eq!(a.tuples(), b.tuples());
    }

    #[test]
    fn random_dnf_shape() {
        let (wt, d) =
            random_dnf(1, DnfParams { clauses: 10, vars: 6, clause_len: 3, domain: 2 });
        assert_eq!(d.len(), 10);
        assert_eq!(wt.num_vars(), 6);
        for c in d.clauses() {
            assert!(c.len() <= 3);
        }
    }

    #[test]
    fn block_dnf_decomposes() {
        let (wt, d) = block_dnf(1, 4, 3, 2, 2);
        assert_eq!(wt.num_vars(), 8);
        assert!(d.len() <= 12);
        // Exact must agree with naive.
        let e = maybms_conf::exact::probability(&d, &wt).unwrap();
        let n = maybms_conf::naive::probability(&d, &wt, 1 << 20).unwrap();
        assert!((e - n).abs() < 1e-9);
    }

    #[test]
    fn tpch_tables_are_tuple_independent() {
        let (_wt, tables) = tpch_ti(3, 10, 2, 3);
        assert_eq!(tables["customer"].len(), 10);
        assert_eq!(tables["orders"].len(), 20);
        assert_eq!(tables["lineitem"].len(), 60);
        for t in tables.values() {
            assert!(maybms_conf::sprout::is_tuple_independent(t));
        }
    }

    #[test]
    fn overhead_pair_matches() {
        let (certain, wt, uncertain) = overhead_pair(5, 100, 10);
        assert_eq!(certain.len(), 100);
        assert_eq!(uncertain.len(), 100);
        assert_eq!(wt.num_vars(), 100); // 2^100 worlds represented
    }

    #[test]
    fn repair_input_shape() {
        let r = repair_input(9, 10, 4);
        assert_eq!(r.len(), 40);
    }
}
