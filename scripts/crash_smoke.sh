#!/usr/bin/env bash
# Crash-recovery smoke test for the maybms-shell --data-dir path: populate
# a durable database, kill the process without warning (SIGKILL, so no
# graceful shutdown runs), restart on the same directory, and verify a
# query sees the recovered catalog. Exercises the real StdVfs — fsyncs,
# atomic rename, directory fsync — end to end, complementing the
# in-memory fault-injection matrix.
#
# Usage: scripts/crash_smoke.sh [path-to-maybms-shell]
set -u

SHELL_BIN="${1:-target/release/maybms-shell}"
DATA_DIR="$(mktemp -d)"
trap 'rm -rf "$DATA_DIR"' EXIT

fail() {
    echo "crash_smoke: FAIL — $1" >&2
    exit 1
}

[ -x "$SHELL_BIN" ] || fail "shell binary not found at $SHELL_BIN (build with: cargo build --release)"

# --- Phase 1: populate, checkpoint mid-script, then die hard. ---------
# The shell reads statements from stdin; feed it the demo workload plus a
# checkpoint, then SIGKILL it while it waits for more input — the WAL
# tail after the checkpoint must survive without any shutdown path.
mkfifo "$DATA_DIR/stdin"
"$SHELL_BIN" --data-dir "$DATA_DIR/db" < "$DATA_DIR/stdin" > "$DATA_DIR/phase1.out" 2>&1 &
SHELL_PID=$!
{
    cat scripts/nba_demo.sql
    echo "\\checkpoint"
    echo "insert into ft values ('PostCrash', 'F', 'F', 0.5);"
    # Keep stdin open so the shell stays alive until the SIGKILL.
    sleep 60
} > "$DATA_DIR/stdin" &
FEED_PID=$!

# Wait for the post-checkpoint insert to be acknowledged in the output.
for _ in $(seq 1 100); do
    grep -q "INSERT 1" "$DATA_DIR/phase1.out" 2>/dev/null && break
    kill -0 "$SHELL_PID" 2>/dev/null || fail "shell died early: $(cat "$DATA_DIR/phase1.out")"
    sleep 0.1
done
grep -q "INSERT 1" "$DATA_DIR/phase1.out" || fail "post-checkpoint insert never acknowledged: $(cat "$DATA_DIR/phase1.out")"

kill -9 "$SHELL_PID" 2>/dev/null
kill "$FEED_PID" 2>/dev/null
wait "$SHELL_PID" 2>/dev/null
wait "$FEED_PID" 2>/dev/null

[ -f "$DATA_DIR/db/wal" ] || fail "no WAL in data dir after kill"
[ -f "$DATA_DIR/db/snapshot" ] || fail "no snapshot in data dir after kill (\\checkpoint ran)"

# --- Phase 2: restart on the same directory and query. ----------------
RESTART_OUT="$DATA_DIR/phase2.out"
printf "select player, init from ft where player = 'PostCrash';\nselect count(*) as n from ft;\n" \
    | "$SHELL_BIN" --data-dir "$DATA_DIR/db" > "$RESTART_OUT" 2>&1 \
    || fail "restart failed: $(cat "$RESTART_OUT")"

grep -q "Recovered" "$RESTART_OUT" || fail "banner did not report recovery: $(cat "$RESTART_OUT")"
grep -q "PostCrash" "$RESTART_OUT" || fail "WAL-tail row lost across the crash: $(cat "$RESTART_OUT")"

echo "crash_smoke: OK (kill -9 survived: snapshot + WAL tail recovered, query verified)"
