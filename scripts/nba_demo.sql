-- Figure 1 (SIGMOD'09 demo): fitness prediction as a random walk on a
-- per-player stochastic matrix. `repair key` turns the transition matrix
-- into one independent variable per (player, init) group; conf() folds
-- the walk back into a t-certain distribution.

create table ft (player text, init text, final text, p double precision);

create table states (player text, state text);

insert into ft values
    ('Bryant', 'F',  'F',  0.8),
    ('Bryant', 'F',  'SE', 0.05),
    ('Bryant', 'F',  'SL', 0.15),
    ('Bryant', 'SE', 'F',  0.1),
    ('Bryant', 'SE', 'SE', 0.6),
    ('Bryant', 'SE', 'SL', 0.3),
    ('Bryant', 'SL', 'F',  0.8),
    ('Bryant', 'SL', 'SL', 0.2),
    ('Duncan', 'F',  'F',  0.6),
    ('Duncan', 'F',  'SE', 0.2),
    ('Duncan', 'F',  'SL', 0.2),
    ('Duncan', 'SE', 'F',  0.3),
    ('Duncan', 'SE', 'SE', 0.5),
    ('Duncan', 'SE', 'SL', 0.2),
    ('Duncan', 'SL', 'F',  0.5),
    ('Duncan', 'SL', 'SE', 0.1),
    ('Duncan', 'SL', 'SL', 0.4);

insert into states values ('Bryant', 'F'), ('Duncan', 'SE');

create table walk as
select s.player, r1.final as state, conf() as p
from (repair key player, init in ft weight by p) r1, states s
where r1.player = s.player and r1.init = s.state
group by s.player, r1.final;

select player, state, p from walk order by player, p desc;
