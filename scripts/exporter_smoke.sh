#!/usr/bin/env bash
# Prometheus-exporter smoke test for maybms-shell --metrics-addr: start a
# shell serving /metrics, run a couple of statements so the registry and
# the sliding latency windows have content, then scrape the endpoint
# with a real HTTP client and check the exposition. Exercises the
# std-only TcpListener exporter end to end — request parsing, the
# Content-Type header, and the new latency-window families.
#
# Usage: scripts/exporter_smoke.sh [path-to-maybms-shell]
set -u

SHELL_BIN="${1:-target/release/maybms-shell}"
WORK_DIR="$(mktemp -d)"
PORT="${MAYBMS_SMOKE_PORT:-9187}"
ADDR="127.0.0.1:$PORT"
trap 'rm -rf "$WORK_DIR"; kill "$SHELL_PID" 2>/dev/null' EXIT

fail() {
    echo "exporter_smoke: FAIL — $1" >&2
    exit 1
}

fetch() {
    # curl when available, else a bash /dev/tcp fallback (headers + body).
    if command -v curl >/dev/null 2>&1; then
        curl -fsS --max-time 5 -D - "http://$ADDR$1" 2>/dev/null
    else
        exec 3<>"/dev/tcp/127.0.0.1/$PORT" || return 1
        printf 'GET %s HTTP/1.1\r\nHost: %s\r\nConnection: close\r\n\r\n' "$1" "$ADDR" >&3
        cat <&3
        exec 3<&- 3>&-
    fi
}

[ -x "$SHELL_BIN" ] || fail "shell binary not found at $SHELL_BIN (build with: cargo build --release)"

# Start a shell with the exporter on, run statements, then idle on an
# open stdin so the process (and its metrics thread) stays alive.
mkfifo "$WORK_DIR/stdin"
"$SHELL_BIN" --metrics-addr "$ADDR" < "$WORK_DIR/stdin" > "$WORK_DIR/shell.out" 2>&1 &
SHELL_PID=$!
{
    echo "create table smoke (a bigint, w double precision);"
    echo "insert into smoke values (1, 1.0), (2, 3.0);"
    echo "select a, conf() as p from (repair key a in smoke weight by w) s group by a;"
    sleep 30
} > "$WORK_DIR/stdin" &

# Wait until the exporter answers.
up=""
for _ in $(seq 1 100); do
    if body="$(fetch /healthz)" && printf '%s' "$body" | grep -q "ok"; then
        up=1
        break
    fi
    kill -0 "$SHELL_PID" 2>/dev/null || fail "shell died: $(cat "$WORK_DIR/shell.out")"
    sleep 0.1
done
[ -n "$up" ] || fail "exporter on $ADDR never became healthy: $(cat "$WORK_DIR/shell.out")"

METRICS="$(fetch /metrics)" || fail "GET /metrics failed"
printf '%s\n' "$METRICS" | grep -q "Content-Type: text/plain; version=0.0.4" \
    || fail "missing Prometheus Content-Type header"
for family in \
    maybms_query_total \
    maybms_query_seconds_bucket \
    maybms_latency_window_seconds \
    maybms_latency_window_count; do
    printf '%s\n' "$METRICS" | grep -q "$family" \
        || fail "family $family missing from /metrics"
done
# The conf() statement must have landed in the conf latency window.
printf '%s\n' "$METRICS" \
    | grep 'maybms_latency_window_count{kind="conf"}' | grep -qv ' 0$' \
    || fail "conf statement not recorded in the latency window"

echo "exporter_smoke: PASS — $ADDR served /healthz and a well-formed /metrics"
