//! Integration tests for the §3 application scenarios: team management
//! (skill availability), performance prediction (expected weighted
//! points), and a data-cleaning workload — each checked against
//! independently computed ground truth.

use maybms::MayBms;
use maybms_engine::{rel, DataType, Value};

/// §3 "Team management": "we compute for each skill … the probability that
/// someone with that skill will be playing in the team given the current
/// status of the players".
#[test]
fn team_management_skill_availability() {
    let mut db = MayBms::new();
    // Player availability: probability the player is fit to play.
    db.register(
        "roster",
        rel(
            &[("player", DataType::Text), ("avail", DataType::Float)],
            vec![
                vec!["Bryant".into(), Value::Float(0.9)],
                vec!["Gasol".into(), Value::Float(0.6)],
                vec!["Fisher".into(), Value::Float(0.8)],
            ],
        ),
    )
    .unwrap();
    db.register(
        "skills",
        rel(
            &[("player", DataType::Text), ("skill", DataType::Text)],
            vec![
                vec!["Bryant".into(), "shooting".into()],
                vec!["Bryant".into(), "passing".into()],
                vec!["Gasol".into(), "defense".into()],
                vec!["Gasol".into(), "passing".into()],
                vec!["Fisher".into(), "shooting".into()],
            ],
        ),
    )
    .unwrap();
    // Playing squad = random subset weighted by availability.
    let r = db
        .query(
            "select s.skill, conf() as p from
             (pick tuples from roster independently with probability avail) a,
             skills s
             where a.player = s.player
             group by s.skill
             order by s.skill",
        )
        .unwrap();
    // shooting: Bryant 0.9 or Fisher 0.8 -> 1 - 0.1*0.2 = 0.98
    // passing:  Bryant 0.9 or Gasol 0.6  -> 1 - 0.1*0.4 = 0.96
    // defense:  Gasol 0.6
    let expected = [("defense", 0.6), ("passing", 0.96), ("shooting", 0.98)];
    assert_eq!(r.len(), 3);
    for (t, (skill, p)) in r.tuples().iter().zip(expected) {
        assert_eq!(t.value(0), &Value::str(skill));
        assert!((t.value(1).as_f64().unwrap() - p).abs() < 1e-9, "{skill}");
    }
}

/// §3 "Performance prediction": "if we associate higher weights to the more
/// recent performance of the players, their predicted performance can be
/// expressed in terms of the weighted points" — an `esum` over a
/// hypothesis space of games.
#[test]
fn performance_prediction_expected_weighted_points() {
    let mut db = MayBms::new();
    db.register(
        "recent_games",
        rel(
            &[
                ("player", DataType::Text),
                ("game", DataType::Int),
                ("pts", DataType::Int),
                ("w", DataType::Float),
            ],
            vec![
                // weights sum to 1 per player: most recent game weighs most
                vec!["Bryant".into(), 1.into(), 40.into(), Value::Float(0.5)],
                vec!["Bryant".into(), 2.into(), 30.into(), Value::Float(0.3)],
                vec!["Bryant".into(), 3.into(), 20.into(), Value::Float(0.2)],
                vec!["Duncan".into(), 1.into(), 20.into(), Value::Float(0.6)],
                vec!["Duncan".into(), 2.into(), 10.into(), Value::Float(0.4)],
            ],
        ),
    )
    .unwrap();
    // Interpret the weights as a distribution over "which form the player
    // shows up in" and take the expected points.
    let r = db
        .query(
            "select R.player, esum(R.pts) as predicted from
             (repair key player in recent_games weight by w) R
             group by R.player
             order by R.player",
        )
        .unwrap();
    // Bryant: 40·0.5 + 30·0.3 + 20·0.2 = 33; Duncan: 20·0.6 + 10·0.4 = 16.
    assert_eq!(r.len(), 2);
    assert!((r.tuples()[0].value(1).as_f64().unwrap() - 33.0).abs() < 1e-9);
    assert!((r.tuples()[1].value(1).as_f64().unwrap() - 16.0).abs() < 1e-9);
}

/// §1: "Data cleaning can be fruitfully approached as a problem of taming
/// uncertainty in the data" — duplicate customer records repaired by key,
/// then queried for the most likely golden record.
#[test]
fn data_cleaning_key_repair() {
    let mut db = MayBms::new();
    db.register(
        "dirty",
        rel(
            &[
                ("cust_id", DataType::Int),
                ("city", DataType::Text),
                ("quality", DataType::Float),
            ],
            vec![
                vec![1.into(), "Oxford".into(), Value::Float(3.0)],
                vec![1.into(), "Ithaca".into(), Value::Float(1.0)],
                vec![2.into(), "Providence".into(), Value::Float(1.0)],
            ],
        ),
    )
    .unwrap();
    // Repair the key: each customer keeps exactly one record per world.
    let r = db
        .query(
            "select R.cust_id, R.city, conf() as p from
             (repair key cust_id in dirty weight by quality) R
             group by R.cust_id, R.city
             order by R.cust_id, p desc",
        )
        .unwrap();
    assert_eq!(r.len(), 3);
    // Customer 1: Oxford with 0.75, Ithaca 0.25; customer 2 certain.
    assert_eq!(r.tuples()[0].value(1), &Value::str("Oxford"));
    assert!((r.tuples()[0].value(2).as_f64().unwrap() - 0.75).abs() < 1e-9);
    assert!((r.tuples()[1].value(2).as_f64().unwrap() - 0.25).abs() < 1e-9);
    assert!((r.tuples()[2].value(2).as_f64().unwrap() - 1.0).abs() < 1e-9);

    // `select possible` lists the possible worlds' tuples without
    // probabilities (§2.2).
    let poss = db
        .query_uncertain("select * from (repair key cust_id in dirty weight by quality) R")
        .map(|_| ())
        .and_then(|_| {
            db.query(
                "select possible R.city from
                 (repair key cust_id in dirty weight by quality) R
                 order by R.city",
            )
        })
        .unwrap();
    let cities: Vec<&str> =
        poss.tuples().iter().map(|t| t.value(0).as_str().unwrap()).collect();
    assert_eq!(cities, vec!["Ithaca", "Oxford", "Providence"]);
}

/// ecount over a picked subset = expected cardinality; checked against the
/// brute-force possible-world expectation.
#[test]
fn expected_count_matches_brute_force() {
    let mut db = MayBms::new();
    db.register(
        "sensors",
        rel(
            &[("id", DataType::Int), ("works", DataType::Float)],
            vec![
                vec![1.into(), Value::Float(0.9)],
                vec![2.into(), Value::Float(0.5)],
                vec![3.into(), Value::Float(0.1)],
            ],
        ),
    )
    .unwrap();
    let r = db
        .query(
            "select ecount() as live from
             (pick tuples from sensors independently with probability works) s",
        )
        .unwrap();
    assert!((r.tuples()[0].value(0).as_f64().unwrap() - 1.5).abs() < 1e-9);
}

/// tconf() on a join exposes per-tuple marginals of the representation.
#[test]
fn tconf_on_join() {
    let mut db = MayBms::new();
    db.register(
        "r",
        rel(
            &[("k", DataType::Int), ("p", DataType::Float)],
            vec![
                vec![1.into(), Value::Float(0.5)],
                vec![2.into(), Value::Float(0.25)],
            ],
        ),
    )
    .unwrap();
    let r = db
        .query(
            "select a.k, tconf() as p from
             (pick tuples from r independently with probability p) a,
             (pick tuples from r independently with probability p) b
             where a.k = b.k",
        )
        .unwrap();
    // Joined tuple (k=1): 0.5 * 0.5 = 0.25; (k=2): 0.0625.
    assert_eq!(r.len(), 2);
    assert!((r.tuples()[0].value(1).as_f64().unwrap() - 0.25).abs() < 1e-9);
    assert!((r.tuples()[1].value(1).as_f64().unwrap() - 0.0625).abs() < 1e-9);
}

/// Uncertain query + conf() cross-checked against brute-force possible
/// worlds enumeration, end to end through SQL.
#[test]
fn conf_matches_possible_worlds_enumeration() {
    let mut db = MayBms::new();
    db.register(
        "t",
        rel(
            &[("g", DataType::Text), ("v", DataType::Int), ("p", DataType::Float)],
            vec![
                vec!["a".into(), 1.into(), Value::Float(0.3)],
                vec!["a".into(), 2.into(), Value::Float(0.7)],
                vec!["b".into(), 3.into(), Value::Float(0.5)],
                vec!["b".into(), 4.into(), Value::Float(0.5)],
            ],
        ),
    )
    .unwrap();
    db.run(
        "create table picked as
         select * from (pick tuples from t independently with probability p) x",
    )
    .unwrap();
    let r = db
        .query("select g, conf() as c from picked group by g order by g")
        .unwrap();
    // Brute force over the stored uncertain table.
    let u = db.table("picked").unwrap().clone();
    let wt = db.world_table();
    let mut truth = std::collections::BTreeMap::new();
    for (world, wp) in wt.enumerate_worlds(1 << 10).unwrap() {
        let inst = u.instantiate(&world);
        let mut groups = std::collections::HashSet::new();
        for t in inst.tuples() {
            groups.insert(t.value(0).as_str().unwrap().to_string());
        }
        for g in groups {
            *truth.entry(g).or_insert(0.0) += wp;
        }
    }
    for t in r.tuples() {
        let g = t.value(0).as_str().unwrap();
        let p = t.value(1).as_f64().unwrap();
        assert!((p - truth[g]).abs() < 1e-9, "{g}: {p} vs {}", truth[g]);
    }
}

/// Risk management (§3): lay off players while keeping skill availability
/// above thresholds — a what-if query per candidate.
#[test]
fn risk_management_layoff_whatif() {
    let mut db = MayBms::new();
    db.register(
        "roster",
        rel(
            &[
                ("player", DataType::Text),
                ("salary", DataType::Int),
                ("avail", DataType::Float),
            ],
            vec![
                vec!["Bryant".into(), 25.into(), Value::Float(0.9)],
                vec!["Gasol".into(), 18.into(), Value::Float(0.85)],
                vec!["Fisher".into(), 5.into(), Value::Float(0.8)],
            ],
        ),
    )
    .unwrap();
    db.register(
        "skills",
        rel(
            &[("player", DataType::Text), ("skill", DataType::Text)],
            vec![
                vec!["Bryant".into(), "shooting".into()],
                vec!["Gasol".into(), "shooting".into()],
                vec!["Gasol".into(), "passing".into()],
                vec!["Fisher".into(), "passing".into()],
            ],
        ),
    )
    .unwrap();
    // What if Gasol is laid off? Check shooting availability ≥ 0.9 and
    // passing ≥ 0.75 from the remaining roster.
    let r = db
        .query(
            "select s.skill, conf() as p from
             (pick tuples from (select player, avail from roster where player <> 'Gasol')
              independently with probability avail) a,
             skills s
             where a.player = s.player
             group by s.skill
             order by s.skill",
        )
        .unwrap();
    // passing: only Fisher -> 0.8; shooting: only Bryant -> 0.9.
    assert_eq!(r.len(), 2);
    let passing = r.tuples()[0].value(1).as_f64().unwrap();
    let shooting = r.tuples()[1].value(1).as_f64().unwrap();
    assert!((passing - 0.8).abs() < 1e-9);
    assert!((shooting - 0.9).abs() < 1e-9);
    // The decision: shooting stays ≥ 0.9 but passing drops below 0.95 — the
    // manager learns the layoff compromises passing.
    assert!(shooting >= 0.9);
    assert!(passing < 0.95);
}
