//! §2.1: "Attribute-level uncertainty is achieved through vertical
//! decompositions, and an additional (system) column is used for storing
//! tuple ids and undoing the vertical decomposition on demand."
//!
//! End-to-end: decompose a relation, make two attributes independently
//! uncertain, recompose, register the result with the database, and query
//! it with the confidence constructs.

use std::sync::Arc;

use maybms::MayBms;
use maybms_engine::{rel, DataType, Tuple, Value};
use maybms_urel::vertical::{decompose, recompose};
use maybms_urel::{URelation, UTuple, WorldTable, Wsd};

/// Build a relation where one tuple's `city` and `age` attributes each
/// have two independent alternatives.
fn build() -> (WorldTable, URelation) {
    let base = URelation::from_certain(&rel(
        &[("name", DataType::Text), ("city", DataType::Text), ("age", DataType::Int)],
        vec![
            vec!["Smith".into(), "Oxford".into(), 35.into()],
            vec!["Jones".into(), "Ithaca".into(), 40.into()],
        ],
    ));
    let mut wt = WorldTable::new();
    let city_var = wt.new_var(&[0.7, 0.3]).unwrap();
    let age_var = wt.new_var(&[0.6, 0.4]).unwrap();

    let mut pieces = decompose(&base, &[vec![0], vec![1], vec![2]]).unwrap();
    // Smith's city: Oxford (0.7) vs Cambridge (0.3).
    pieces[1].tuples_mut()[0].wsd = Wsd::of(city_var, 0);
    let alt_city = UTuple::new(
        Tuple::new(vec![Value::Int(0), "Cambridge".into()]),
        Wsd::of(city_var, 1),
    );
    pieces[1].tuples_mut().push(alt_city);
    // Smith's age: 35 (0.6) vs 36 (0.4).
    pieces[2].tuples_mut()[0].wsd = Wsd::of(age_var, 0);
    let alt_age = UTuple::new(
        Tuple::new(vec![Value::Int(0), Value::Int(36)]),
        Wsd::of(age_var, 1),
    );
    pieces[2].tuples_mut().push(alt_age);

    (wt, recompose(&pieces).unwrap())
}

#[test]
fn recomposition_exposes_all_attribute_combinations() {
    let (wt, u) = build();
    // Smith: 2 cities × 2 ages = 4 variants; Jones: 1.
    assert_eq!(u.len(), 5);
    let smith_mass: f64 = u
        .tuples()
        .iter()
        .filter(|t| t.data.value(0) == &Value::str("Smith"))
        .map(|t| t.wsd.prob(&wt).unwrap())
        .sum();
    assert!((smith_mass - 1.0).abs() < 1e-12);
    // The independence is real: P(Cambridge ∧ 36) = 0.3 · 0.4.
    let p_cam36 = u
        .tuples()
        .iter()
        .find(|t| {
            t.data.value(1) == &Value::str("Cambridge") && t.data.value(2) == &Value::Int(36)
        })
        .map(|t| t.wsd.prob(&wt).unwrap())
        .unwrap();
    assert!((p_cam36 - 0.12).abs() < 1e-12);
}

#[test]
fn marginals_per_attribute_via_brute_force() {
    let (wt, u) = build();
    // Brute force: marginal of Smith living in Cambridge regardless of age.
    let mut p = 0.0;
    for (world, wp) in wt.enumerate_worlds(100).unwrap() {
        let inst = u.instantiate(&world);
        if inst.tuples().iter().any(|t| {
            t.value(0) == &Value::str("Smith") && t.value(1) == &Value::str("Cambridge")
        }) {
            p += wp;
        }
    }
    assert!((p - 0.3).abs() < 1e-12);
    // Every world has exactly one variant of each person.
    for (world, _) in wt.enumerate_worlds(100).unwrap() {
        let inst = u.instantiate(&world);
        assert_eq!(inst.len(), 2);
    }
}

#[test]
fn recomposed_table_queryable_through_sql() {
    let (wt, u) = build();
    // Move the constructed world table + table into a database by
    // re-simulating through pick/repair is unnecessary: register_u keeps
    // the URelation, but MayBms owns a fresh world table. Instead verify
    // the query path at the algebra level and the facade path for the
    // certain projection.
    let mut db = MayBms::new();
    // The *possible* tuples (certain view) are queryable after dropping
    // conditions through `instantiate` on each world — here we register
    // the most-likely world's instance.
    let mut best = None;
    let mut best_p = -1.0;
    for (world, wp) in wt.enumerate_worlds(100).unwrap() {
        if wp > best_p {
            best_p = wp;
            best = Some(u.instantiate(&world));
        }
    }
    db.register("people", best.unwrap()).unwrap();
    let r = db.query("select name, city, age from people order by name").unwrap();
    assert_eq!(r.len(), 2);
    // Most likely world: Oxford, 35.
    let smith = r
        .tuples()
        .iter()
        .find(|t| t.value(0) == &Value::str("Smith"))
        .unwrap();
    assert_eq!(smith.value(1), &Value::str("Oxford"));
    assert_eq!(smith.value(2), &Value::Int(35));
}

#[test]
fn sample_instance_respects_conditions() {
    let mut db = MayBms::new();
    db.run("create table t (v bigint, p double precision)").unwrap();
    db.run("insert into t values (1, 0.5), (2, 0.5)").unwrap();
    db.run(
        "create table picked as
         select * from (pick tuples from t with probability p) x",
    )
    .unwrap();
    // Sampled instances contain a subset of the representation tuples and
    // are stable per seed.
    let a = db.sample_instance(7);
    let b = db.sample_instance(7);
    let picked_a = a.iter().find(|(n, _)| n == "picked").map(|(_, r)| r).unwrap();
    let picked_b = b.iter().find(|(n, _)| n == "picked").map(|(_, r)| r).unwrap();
    assert_eq!(picked_a.tuples(), picked_b.tuples());
    assert!(picked_a.len() <= 2);
    // The certain table is always intact.
    let t = a.iter().find(|(n, _)| n == "t").map(|(_, r)| r).unwrap();
    assert_eq!(t.len(), 2);
    // Different seeds eventually produce different subsets.
    let mut sizes = std::collections::HashSet::new();
    for seed in 0..32 {
        let inst = db.sample_instance(seed);
        let picked =
            inst.iter().find(|(n, _)| n == "picked").map(|(_, r)| r).unwrap();
        sizes.insert(picked.len());
    }
    assert!(sizes.len() > 1, "sampling never varied: {sizes:?}");
}

#[test]
fn arc_schema_sharing_survives_decompose_recompose() {
    let (_, u) = build();
    // Round-trip sanity of schema shape.
    assert_eq!(u.schema().names(), vec!["name", "city", "age"]);
    let again = decompose(&u, &[vec![0, 1, 2]]).unwrap();
    let back = recompose(&again).unwrap();
    assert_eq!(back.schema().names(), vec!["name", "city", "age"]);
    assert_eq!(back.len(), u.len());
    let _: &Arc<_> = back.schema(); // schemas stay shared behind Arc
}
