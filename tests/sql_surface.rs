//! Breadth tests for the SQL surface: every language feature exercised end
//! to end through the facade, including combinations the other integration
//! tests don't touch.

use maybms::{MayBms, QueryOutput, StatementResult};
use maybms_engine::Value;

fn fresh() -> MayBms {
    let mut db = MayBms::new();
    db.run_script(
        "create table emp (name text, dept text, salary bigint, bonus double precision);
         insert into emp values
           ('ann', 'eng', 100, 0.1), ('bob', 'eng', 90, 0.2),
           ('cat', 'ops', 80, 0.3), ('dan', 'ops', 70, 0.15),
           ('eve', 'hr',  60, 0.05);",
    )
    .unwrap();
    db
}

#[test]
fn order_by_ordinal() {
    let mut db = fresh();
    let r = db.query("select name, salary from emp order by 2 desc limit 2").unwrap();
    assert_eq!(r.tuples()[0].value(0), &Value::str("ann"));
    assert_eq!(r.tuples()[1].value(0), &Value::str("bob"));
    assert!(db.query("select name from emp order by 9").is_err());
    assert!(db.query("select name from emp order by 0").is_err());
}

#[test]
fn case_expression_end_to_end() {
    let mut db = fresh();
    let r = db
        .query(
            "select name,
                    case when salary >= 90 then 'senior'
                         when salary >= 70 then 'mid'
                         else 'junior' end as level
             from emp order by name",
        )
        .unwrap();
    let levels: Vec<&str> =
        r.tuples().iter().map(|t| t.value(1).as_str().unwrap()).collect();
    assert_eq!(levels, vec!["senior", "senior", "mid", "mid", "junior"]);
}

#[test]
fn cast_end_to_end() {
    let mut db = fresh();
    let r = db
        .query("select cast(salary as double precision) / 7 as ratio from emp limit 1")
        .unwrap();
    let v = r.tuples()[0].value(0).as_f64().unwrap();
    assert!((v - 100.0 / 7.0).abs() < 1e-12);
    let r = db.query("select cast('42' as bigint) as n").unwrap();
    assert_eq!(r.tuples()[0].value(0), &Value::Int(42));
}

#[test]
fn string_concat_and_like_free_predicates() {
    let mut db = fresh();
    let r = db
        .query("select name || '@' || dept as email from emp where dept = 'hr'")
        .unwrap();
    assert_eq!(r.tuples()[0].value(0), &Value::str("eve@hr"));
}

#[test]
fn group_by_expression_with_having() {
    let mut db = fresh();
    let r = db
        .query(
            "select dept, count(*) as n, avg(salary) as mean
             from emp group by dept having n >= 2 order by dept",
        )
        .unwrap();
    assert_eq!(r.len(), 2); // eng, ops
    assert_eq!(r.tuples()[0].value(0), &Value::str("eng"));
    assert_eq!(r.tuples()[0].value(2), &Value::Float(95.0));
}

#[test]
fn union_certain_with_uncertain_is_multiset() {
    let mut db = fresh();
    let out = db
        .run(
            "select name from (pick tuples from emp with probability bonus) p
             union all
             select name from emp",
        )
        .unwrap();
    let StatementResult::Query(QueryOutput::Uncertain(u)) = out else {
        panic!("expected uncertain union result");
    };
    assert_eq!(u.len(), 10); // 5 conditioned + 5 certain rows
    // The certain half is unconditioned.
    let certain = u.tuples().iter().filter(|t| t.wsd.is_tautology()).count();
    assert_eq!(certain, 5);
}

#[test]
fn union_chain_is_left_associative() {
    let mut db = fresh();
    // (eng-names UNION eng-names) deduplicates; the UNION ALL tail keeps
    // its duplicates.
    let r = db
        .query(
            "select name from emp where dept = 'eng'
             union
             select name from emp where dept = 'eng'
             union all
             select name from emp where dept = 'hr'",
        )
        .unwrap();
    assert_eq!(r.len(), 3); // ann, bob (deduped) + eve
    // Flipped: UNION at the end dedups everything before it.
    let r = db
        .query(
            "select name from emp where dept = 'eng'
             union all
             select name from emp where dept = 'eng'
             union
             select name from emp where dept = 'hr'",
        )
        .unwrap();
    assert_eq!(r.len(), 3);
}

#[test]
fn subquery_in_from_with_alias_scoping() {
    let mut db = fresh();
    let r = db
        .query(
            "select hi.name from
               (select name, salary from emp where salary > 75) hi
             where hi.salary < 95",
        )
        .unwrap();
    assert_eq!(r.len(), 2); // bob (90), cat (80)
}

#[test]
fn join_sugar_mixed_with_comma_sources() {
    let mut db = fresh();
    db.run("create table dept_heads (dept text, head text)").unwrap();
    db.run("insert into dept_heads values ('eng', 'ann'), ('ops', 'cat')").unwrap();
    let r = db
        .query(
            "select e.name, h.head
             from emp e join dept_heads h on e.dept = h.dept
             where e.name <> h.head
             order by e.name",
        )
        .unwrap();
    assert_eq!(r.len(), 2); // bob under ann, dan under cat
}

#[test]
fn repair_key_inside_join_sugar() {
    let mut db = fresh();
    let r = db
        .query(
            "select R.name, conf() as p
             from (repair key dept in emp weight by bonus) R
                  join dept_heads_like d on R.dept = d.dept
             group by R.name",
        )
        .map(|_| ())
        .unwrap_err();
    // Table does not exist: error surfaces cleanly through the join path.
    assert!(r.to_string().contains("dept_heads_like"));
}

#[test]
fn tconf_with_wildcard() {
    let mut db = fresh();
    let r = db
        .query(
            "select *, tconf() from
             (pick tuples from emp with probability bonus) p",
        )
        .unwrap();
    assert_eq!(r.schema().len(), 5); // 4 data columns + tconf
    assert_eq!(r.len(), 5);
    let p_ann = r.tuples()[0].value(4).as_f64().unwrap();
    assert!((p_ann - 0.1).abs() < 1e-12);
}

#[test]
fn esum_with_computed_expression() {
    let mut db = fresh();
    let r = db
        .query(
            "select esum(salary * 2) as double_expected from
             (pick tuples from emp with probability bonus) p",
        )
        .unwrap();
    // 2 · Σ salaryᵢ · pᵢ = 2 · (10 + 18 + 24 + 10.5 + 3) = 131
    let v = r.tuples()[0].value(0).as_f64().unwrap();
    assert!((v - 131.0).abs() < 1e-9, "{v}");
}

#[test]
fn ecount_with_argument_skips_nulls() {
    let mut db = MayBms::new();
    db.run("create table t (v bigint, p double precision)").unwrap();
    db.run("insert into t values (1, 0.5), (null, 0.5)").unwrap();
    let r = db
        .query(
            "select ecount(v) as ev, ecount() as e from
             (pick tuples from t with probability p) x",
        )
        .unwrap();
    assert_eq!(r.tuples()[0].value(0), &Value::Float(0.5)); // NULL row skipped
    assert_eq!(r.tuples()[0].value(1), &Value::Float(1.0));
}

#[test]
fn insert_select_roundtrip_and_update_where() {
    let mut db = fresh();
    db.run("create table archive (name text, salary bigint)").unwrap();
    db.run("insert into archive select name, salary from emp where dept = 'eng'")
        .unwrap();
    assert_eq!(db.table("archive").unwrap().len(), 2);
    db.run("update archive set salary = salary + 5 where name = 'ann'").unwrap();
    let r = db.query("select salary from archive where name = 'ann'").unwrap();
    assert_eq!(r.tuples()[0].value(0), &Value::Int(105));
}

#[test]
fn quoted_identifiers_and_case_insensitivity() {
    let mut db = MayBms::new();
    db.run(r#"create table "Weird Table" (a bigint)"#).unwrap();
    db.run(r#"insert into "Weird Table" values (1)"#).unwrap();
    let r = db.query(r#"select a from "Weird Table""#).unwrap();
    assert_eq!(r.len(), 1);
    // Unquoted identifiers are case-insensitive.
    let mut db = fresh();
    let r = db.query("SELECT NAME FROM EMP WHERE DEPT = 'hr'").unwrap();
    assert_eq!(r.len(), 1);
}

#[test]
fn arithmetic_in_weight_expressions() {
    let mut db = fresh();
    let r = db
        .query(
            "select R.name, conf() as p
             from (repair key dept in emp weight by salary + bonus) R
             where R.dept = 'eng'
             group by R.name
             order by p desc",
        )
        .unwrap();
    assert_eq!(r.len(), 2);
    let p0 = r.tuples()[0].value(1).as_f64().unwrap();
    let expected = 100.1 / (100.1 + 90.2);
    assert!((p0 - expected).abs() < 1e-9);
}

#[test]
fn in_list_with_expressions_and_in_select_combined() {
    let mut db = fresh();
    let r = db
        .query(
            "select name from emp
             where salary in (70, 80, 90)
               and dept in (select dept from emp where name = 'cat')
             order by name",
        )
        .unwrap();
    let names: Vec<&str> =
        r.tuples().iter().map(|t| t.value(0).as_str().unwrap()).collect();
    assert_eq!(names, vec!["cat", "dan"]);
}

#[test]
fn drop_and_recreate() {
    let mut db = fresh();
    db.run("drop table emp").unwrap();
    db.run("create table emp (x bigint)").unwrap();
    db.run("insert into emp values (7)").unwrap();
    let r = db.query("select x from emp").unwrap();
    assert_eq!(r.tuples()[0].value(0), &Value::Int(7));
}

#[test]
fn comments_in_statements() {
    let mut db = fresh();
    let r = db
        .query(
            "select name -- trailing comment
             from emp /* block
             comment */ where dept = 'hr'",
        )
        .unwrap();
    assert_eq!(r.len(), 1);
}
