//! The §2.2 typing rules: "Some restrictions are in place to assure that
//! query evaluation is feasible." Every restriction must fail loudly, with
//! an error that names the rule.

use maybms::{CoreError, MayBms};
use maybms_engine::{rel, DataType, Value};

fn db_with_uncertain() -> MayBms {
    let mut db = MayBms::new();
    db.register(
        "t",
        rel(
            &[("k", DataType::Int), ("v", DataType::Int), ("p", DataType::Float)],
            vec![
                vec![1.into(), 10.into(), Value::Float(0.5)],
                vec![1.into(), 20.into(), Value::Float(0.5)],
                vec![2.into(), 30.into(), Value::Float(0.5)],
            ],
        ),
    )
    .unwrap();
    db.run("create table u as select * from (pick tuples from t) x").unwrap();
    db
}

#[test]
fn standard_aggregates_forbidden_on_uncertain() {
    // "we do not support the standard SQL aggregates such as sum or count
    // on uncertain relations (but we do support expectations of
    // aggregates)".
    let mut db = db_with_uncertain();
    for agg in ["sum(v)", "count(*)", "avg(v)", "min(v)", "max(v)"] {
        let err = db.run(&format!("select {agg} from u")).unwrap_err();
        assert!(
            matches!(err, CoreError::Typing { .. }),
            "{agg}: expected typing error, got {err:?}"
        );
    }
    // The expectations are supported instead.
    assert!(db.run("select esum(v), ecount() from u").is_ok());
}

#[test]
fn standard_aggregates_fine_on_certain() {
    let mut db = db_with_uncertain();
    assert!(db.run("select sum(v), count(*), avg(v) from t").is_ok());
}

#[test]
fn select_distinct_forbidden_on_uncertain() {
    // "By using aggregation syntax and not supporting select distinct on
    // uncertain relations, we avoid the need for conditions beyond the
    // special conjunctions…".
    let mut db = db_with_uncertain();
    let err = db.run("select distinct k from u").unwrap_err();
    assert!(matches!(err, CoreError::Typing { .. }), "{err:?}");
    // `possible` is the sanctioned alternative.
    assert!(db.run("select possible k from u").is_ok());
    // distinct on certain tables is plain SQL.
    assert!(db.run("select distinct k from t").is_ok());
}

#[test]
fn repair_key_requires_t_certain_input() {
    let mut db = db_with_uncertain();
    let err = db.run("select * from (repair key k in u weight by p) r").unwrap_err();
    assert!(err.to_string().contains("t-certain"), "{err}");
}

#[test]
fn pick_tuples_requires_t_certain_input() {
    let mut db = db_with_uncertain();
    let err = db.run("select * from (pick tuples from u) r").unwrap_err();
    assert!(err.to_string().contains("t-certain"), "{err}");
}

#[test]
fn limit_forbidden_on_uncertain_result() {
    let mut db = db_with_uncertain();
    let err = db.run("select * from u limit 1").unwrap_err();
    assert!(matches!(err, CoreError::Typing { .. }), "{err:?}");
    assert!(db.run("select k, conf() from u group by k limit 1").is_ok());
}

#[test]
fn argmax_requires_t_certain() {
    let mut db = db_with_uncertain();
    let err = db.run("select argmax(k, v) from u").unwrap_err();
    assert!(matches!(err, CoreError::Typing { .. }), "{err:?}");
    assert!(db.run("select argmax(k, v) from t").is_ok());
}

#[test]
fn argmax_cannot_mix_with_other_aggregates() {
    let mut db = db_with_uncertain();
    let err = db.run("select argmax(k, v), count(*) from t").unwrap_err();
    assert!(matches!(err, CoreError::Plan { .. }), "{err:?}");
}

#[test]
fn tconf_incompatible_with_group_by() {
    let mut db = db_with_uncertain();
    let err = db.run("select k, tconf() from u group by k").unwrap_err();
    assert!(matches!(err, CoreError::Plan { .. }), "{err:?}");
}

#[test]
fn not_in_subquery_rejected_at_parse_time() {
    // "uncertain subqueries in IN-conditions that occur positively" (§2.2).
    let mut db = db_with_uncertain();
    let err = db.run("select * from t where k not in (select k from u)").unwrap_err();
    assert!(matches!(err, CoreError::Parse(_)), "{err:?}");
}

#[test]
fn aggregates_in_scalar_position_rejected() {
    let mut db = db_with_uncertain();
    let err = db.run("select conf() + 1 from u").unwrap_err();
    assert!(matches!(err, CoreError::Plan { .. }), "{err:?}");
}

#[test]
fn conf_argument_validation() {
    let mut db = db_with_uncertain();
    assert!(db.run("select conf(1) from u").is_err());
    assert!(db.run("select aconf(2.0, 0.5) from u group by k").is_err()); // ε ≥ 1
    assert!(db.run("select aconf(0.1) from u").is_err());
}

#[test]
fn possible_with_aggregates_rejected() {
    let mut db = db_with_uncertain();
    let err = db.run("select possible conf() from u").unwrap_err();
    assert!(matches!(err, CoreError::Plan { .. }), "{err:?}");
}

#[test]
fn group_by_violations_detected() {
    let mut db = db_with_uncertain();
    let err = db.run("select v, conf() from u group by k").unwrap_err();
    assert!(matches!(err, CoreError::Plan { .. }), "{err:?}");
}

#[test]
fn weight_errors_surface() {
    let mut db = MayBms::new();
    db.register(
        "neg",
        rel(
            &[("k", DataType::Int), ("w", DataType::Float)],
            vec![vec![1.into(), Value::Float(-2.0)], vec![1.into(), Value::Float(1.0)]],
        ),
    )
    .unwrap();
    let err = db.run("select * from (repair key k in neg weight by w) r").unwrap_err();
    assert!(err.to_string().contains("weight"), "{err}");
}

#[test]
fn probability_range_errors_surface() {
    let mut db = MayBms::new();
    db.register(
        "bad",
        rel(&[("p", DataType::Float)], vec![vec![Value::Float(1.5)]]),
    )
    .unwrap();
    let err = db
        .run("select * from (pick tuples from bad with probability p) r")
        .unwrap_err();
    assert!(err.to_string().contains("probability"), "{err}");
}
