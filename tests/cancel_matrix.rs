//! Cancellation-point matrix (sibling of the store crash matrix): inject a
//! governor abort — cancel, deadline, or memory-budget — at every Nth
//! cooperative checkpoint of a statement, across statement classes
//! (SELECT with conf(), DML, CTAS) and thread counts, and prove that
//!
//! * the statement fails with exactly the injected [`GovError`],
//! * the catalog (in-memory *and* durable) is bit-identical to the
//!   pre-statement state, and
//! * the session stays healthy: the next statement succeeds.
//!
//! Plus the graceful-degradation contract for `aconf` (a deadline that
//! cuts the sample stream yields a deterministic partial estimate, the
//! same at any thread count) and the transient-storage-fault contract
//! (short fault → retried through, long outage → poisoned store that
//! `reopen` recovers once the outage ends).
//!
//! Governor state is process-global, so every test here serializes on
//! one mutex (they share a test binary, which shares the statics).

use std::sync::{Arc, Mutex, MutexGuard};

use maybms::store::{Catalog, FaultMode, FaultVfs, MemVfs};
use maybms::{store, MayBms};
use maybms_gov::{testing, AbortKind, GovError};

static LOCK: Mutex<()> = Mutex::new(());

fn lock() -> MutexGuard<'static, ()> {
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// Canonical byte fingerprint of a database's observable state (same
/// helper as the recovery tests).
fn fp(db: &MayBms) -> Vec<u8> {
    let tables: Catalog = db
        .table_names()
        .iter()
        .map(|n| (n.to_string(), db.table(n).expect("listed table exists").clone()))
        .collect();
    store::fingerprint(&tables, db.world_table())
}

const SEED_SQL: &[&str] = &[
    "create table games (player text, pts bigint, w double precision)",
    "insert into games values ('Bryant', 40, 0.6), ('Duncan', 25, 0.4), \
     ('Parker', 19, 0.7), ('Garnett', 22, 0.3)",
    "create table picks as \
     select * from (pick tuples from games with probability 0.5) x",
];

fn seed(mem: &MemVfs) -> MayBms {
    let mut db = MayBms::open_with_vfs(Arc::new(mem.clone())).unwrap();
    for sql in SEED_SQL {
        db.run(sql).unwrap();
    }
    db
}

/// Did the statement die with exactly the injected abort?
fn matches_kind(kind: AbortKind, e: &maybms::CoreError) -> bool {
    matches!(
        (kind, e.gov_abort()),
        (AbortKind::Cancel, Some(GovError::Cancelled))
            | (AbortKind::Deadline, Some(GovError::DeadlineExceeded { .. }))
            | (AbortKind::MemBudget, Some(GovError::MemBudgetExceeded { .. }))
    )
}

/// Upper bound on checkpoints per statement in this workload; the sweep
/// asserts each statement completes un-aborted well before this.
const MAX_SWEEP: u64 = 2000;

#[test]
fn abort_at_every_checkpoint_leaves_state_unchanged() {
    let _l = lock();
    let before_threads = maybms_par::current_threads();
    let statements: &[(&str, &str)] = &[
        ("select-conf", "select player, conf() as p from picks group by player"),
        ("insert", "insert into games values ('Ginobili', 17, 0.9)"),
        ("update", "update games set pts = pts + 1 where pts > 20"),
        ("delete", "delete from games where pts < 20"),
        (
            "ctas",
            "create table scratch as \
             select * from (pick tuples from games with probability 0.5) x",
        ),
    ];
    for threads in [1usize, 2, 8] {
        maybms_par::set_threads(threads);
        for (label, sql) in statements {
            for kind in [AbortKind::Cancel, AbortKind::Deadline, AbortKind::MemBudget] {
                // Fresh database per sweep: a sweep ends with the one run
                // that completes, which may legitimately mutate state.
                let mem = MemVfs::new();
                let mut db = seed(&mem);
                let baseline = fp(&db);
                let mut completed = false;
                for nth in 1..=MAX_SWEEP {
                    testing::abort_at_checkpoint(nth, kind);
                    let result = db.run(sql);
                    let fired = testing::remaining() == Some(0);
                    testing::clear();
                    match result {
                        Err(e) => {
                            assert!(
                                fired,
                                "{label}/{kind:?}/t{threads} nth={nth}: \
                                 error without the injection firing: {e}"
                            );
                            assert!(
                                matches_kind(kind, &e),
                                "{label}/{kind:?}/t{threads} nth={nth}: wrong error: {e}"
                            );
                            // The abort left the live catalog untouched…
                            assert_eq!(
                                fp(&db),
                                baseline,
                                "{label}/{kind:?}/t{threads} nth={nth}: abort mutated state"
                            );
                            // …and nothing leaked into the durable log.
                            let recovered =
                                MayBms::open_with_vfs(Arc::new(mem.clone())).unwrap();
                            assert_eq!(
                                fp(&recovered),
                                baseline,
                                "{label}/{kind:?}/t{threads} nth={nth}: abort reached the WAL"
                            );
                            // The session survives: next statement runs.
                            db.run("select player from games").unwrap_or_else(|e| {
                                panic!(
                                    "{label}/{kind:?}/t{threads} nth={nth}: \
                                     statement after abort failed: {e}"
                                )
                            });
                        }
                        Ok(_) => {
                            assert!(
                                !fired,
                                "{label}/{kind:?}/t{threads} nth={nth}: \
                                 injection fired but the statement succeeded"
                            );
                            completed = true;
                            break;
                        }
                    }
                }
                assert!(
                    completed,
                    "{label}/{kind:?}/t{threads}: no checkpoint-free completion \
                     within {MAX_SWEEP} checkpoints"
                );
            }
        }
    }
    maybms_par::set_threads(before_threads);
}

// ---------------------------------------------------------------------
// Graceful degradation: a deadline mid-`aconf` cuts the sample stream.
// ---------------------------------------------------------------------

/// Single-group uncertain table (one group keeps the per-group conf
/// evaluation off the parallel fan-out, so the governor's checkpoint
/// stream during sampling is sequential and the cut lands at a
/// deterministic batch).
fn aconf_db() -> MayBms {
    let mut db = MayBms::new();
    db.run("create table u (k bigint, v bigint, w double precision)").unwrap();
    let rows: Vec<String> = (1..=12).map(|v| format!("(1, {v}, 0.5)")).collect();
    db.run(&format!("insert into u values {}", rows.join(", "))).unwrap();
    db.run(
        "create table pu as \
         select * from (pick tuples from u with probability 0.5) x",
    )
    .unwrap();
    db
}

const ACONF_SQL: &str = "select k, aconf(0.05, 0.05) as p from pu group by k";

/// Run the aconf query with a deadline injected at checkpoint `nth`;
/// returns `Ok((bits, degraded))` on completion with the estimate's raw
/// f64 bits, `Err(())` when the statement was aborted outright.
fn run_aconf_cut(db: &mut MayBms, nth: u64) -> Result<(u64, bool), ()> {
    testing::abort_at_checkpoint(nth, AbortKind::Deadline);
    let result = db.query(ACONF_SQL);
    testing::clear();
    match result {
        Err(_) => Err(()),
        Ok(r) => {
            assert_eq!(r.len(), 1, "single group");
            let bits = r.tuples()[0].value(1).as_f64().unwrap().to_bits();
            let degraded = db
                .last_stats()
                .map(|s| s.degraded_conf.get() > 0)
                .unwrap_or(false);
            Ok((bits, degraded))
        }
    }
}

#[test]
fn degraded_aconf_estimate_is_deterministic_across_thread_counts() {
    let _l = lock();
    let before_threads = maybms_par::current_threads();
    maybms_par::set_threads(1);

    // Find the first checkpoint index where the deadline lands in the
    // sample stream: the query then *succeeds* with a degraded estimate
    // instead of erroring (every earlier index aborts it in the scan).
    let mut db = aconf_db();
    let mut cut = None;
    for nth in 1..=MAX_SWEEP {
        if let Ok((bits, degraded)) = run_aconf_cut(&mut db, nth) {
            assert!(
                degraded,
                "first surviving run (nth={nth}) must be the degraded one"
            );
            cut = Some((nth, bits));
            break;
        }
    }
    let (nth, bits_1thread) = cut.expect("no deadline landed in the sample stream");

    // The same cut point yields the bit-identical partial estimate at
    // any thread count — degradation, like everything else, is
    // deterministic.
    for threads in [1usize, 2, 8] {
        maybms_par::set_threads(threads);
        let mut db = aconf_db();
        let (bits, degraded) = run_aconf_cut(&mut db, nth)
            .unwrap_or_else(|_| panic!("cut at nth={nth} aborted at {threads} threads"));
        assert!(degraded, "cut at nth={nth} not degraded at {threads} threads");
        assert_eq!(
            bits, bits_1thread,
            "degraded estimate differs at {threads} threads (nth={nth})"
        );
        // And it is reproducible within one thread count, too.
        let (bits2, _) = run_aconf_cut(&mut db, nth).unwrap();
        assert_eq!(bits, bits2, "degraded estimate not reproducible");
    }
    maybms_par::set_threads(before_threads);
}

// ---------------------------------------------------------------------
// Transient-storage-fault contract.
// ---------------------------------------------------------------------

const INSERT_SQL: &str = "insert into games values ('Ginobili', 17, 0.9)";

#[test]
fn transient_wal_fault_is_retried_without_poisoning() {
    let _l = lock();
    let mem = MemVfs::new();
    drop(seed(&mem));
    // First mutating file op after reopen (the WAL append for the next
    // statement) fails once, transiently.
    let fault = FaultVfs::new(mem.clone(), 1, FaultMode::Transient { failures: 1 });
    let mut db = MayBms::open_with_vfs(Arc::new(fault.clone())).unwrap();
    let retries_before = maybms_obs::metrics().store_retries.get();
    db.run(INSERT_SQL).expect("one transient fault must be retried through");
    assert!(fault.triggered(), "fault window was never reached");
    assert!(
        maybms_obs::metrics().store_retries.get() > retries_before,
        "retry counter did not move"
    );
    // Not poisoned: further mutations and a restart both see the insert.
    db.run("update games set pts = pts + 1 where player = 'Ginobili'").unwrap();
    let live = fp(&db);
    drop(db);
    let recovered = MayBms::open_with_vfs(Arc::new(mem.clone())).unwrap();
    assert_eq!(fp(&recovered), live, "retried statements must be durable");
}

#[test]
fn persistent_fault_poisons_the_store_and_preserves_state() {
    let _l = lock();
    let mem = MemVfs::new();
    let baseline = {
        let db = seed(&mem);
        fp(&db)
    };
    let fault = FaultVfs::new(mem.clone(), 1, FaultMode::FailStop);
    let mut db = MayBms::open_with_vfs(Arc::new(fault.clone())).unwrap();
    let err = db.run(INSERT_SQL).expect_err("fail-stop fault must not be retried through");
    assert!(err.gov_abort().is_none(), "storage error misclassified as governor abort");
    // Poisoned: mutations keep failing; reads of the in-memory catalog work.
    assert!(db.run(INSERT_SQL).is_err(), "poisoned store accepted a mutation");
    db.run("select player from games").unwrap();
    assert_eq!(fp(&db), baseline, "failed statement mutated the catalog");
    // The durable image is exactly the pre-fault state.
    let recovered = MayBms::open_with_vfs(Arc::new(mem.clone())).unwrap();
    assert_eq!(fp(&recovered), baseline);
}

#[test]
fn long_transient_outage_poisons_and_reopen_recovers() {
    let _l = lock();
    let mem = MemVfs::new();
    drop(seed(&mem));
    // An outage longer than the retry budget: every attempt of the next
    // statement's WAL append (initial + all backoff retries) fails.
    let fault = FaultVfs::new(mem.clone(), 1, FaultMode::Transient { failures: 40 });
    let mut db = MayBms::open_with_vfs(Arc::new(fault.clone())).unwrap();
    let baseline = fp(&db);
    let err = db.run(INSERT_SQL).expect_err("outage must exhaust the retry budget");
    assert!(err.gov_abort().is_none());
    assert!(db.run(INSERT_SQL).is_err(), "store must be poisoned after the outage");
    assert_eq!(fp(&db), baseline, "poisoning statement mutated the catalog");
    // Recovery is read-only over a clean log, so `\reopen` works even
    // mid-outage; mutations come back once the fault window is spent.
    let mut healthy = false;
    for _ in 0..20 {
        db.reopen().expect("reopen must recover a poisoned store");
        if db.run(INSERT_SQL).is_ok() {
            healthy = true;
            break;
        }
    }
    assert!(healthy, "store never recovered after the outage window");
    // Exactly one insert landed (every failed attempt stayed off the WAL).
    let n = db
        .query("select player from games where player = 'Ginobili'")
        .unwrap()
        .len();
    assert_eq!(n, 1, "aborted attempts must not leave rows behind");
    let live = fp(&db);
    drop(db);
    let recovered = MayBms::open_with_vfs(Arc::new(mem.clone())).unwrap();
    assert_eq!(fp(&recovered), live, "post-recovery mutations must be durable");
}
