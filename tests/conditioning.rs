//! Conditioning at the database level (reference [3], "Conditioning
//! Probabilistic Databases"): extract lineage from queries with
//! `query_uncertain`, build constraint events, and compute posteriors —
//! the "data cleaning using constraints" demo scenario.

use maybms::conf::{condition, ConfMethod, Dnf};
use maybms::MayBms;
use maybms_engine::{rel, DataType, Value};

/// Roster with availability; constraint: "some shooter is available".
fn setup() -> MayBms {
    let mut db = MayBms::new();
    db.register(
        "roster",
        rel(
            &[("player", DataType::Text), ("avail", DataType::Float)],
            vec![
                vec!["Bryant".into(), Value::Float(0.5)],
                vec!["Fisher".into(), Value::Float(0.4)],
                vec!["Gasol".into(), Value::Float(0.8)],
            ],
        ),
    )
    .unwrap();
    db.register(
        "skills",
        rel(
            &[("player", DataType::Text), ("skill", DataType::Text)],
            vec![
                vec!["Bryant".into(), "shooting".into()],
                vec!["Fisher".into(), "shooting".into()],
                vec!["Gasol".into(), "defense".into()],
            ],
        ),
    )
    .unwrap();
    db.run(
        "create table squad as
         select * from (pick tuples from roster independently with probability avail) s",
    )
    .unwrap();
    db
}

#[test]
fn posterior_availability_given_shooting_covered() {
    let mut db = setup();
    // Event: Bryant plays. Constraint: some shooter plays.
    let bryant = db
        .query_uncertain("select player from squad where player = 'Bryant'")
        .unwrap();
    let shooters = db
        .query_uncertain(
            "select s.skill from squad a, skills s
             where a.player = s.player and s.skill = 'shooting'",
        )
        .unwrap();
    let event = Dnf::from_wsds(bryant.tuples().iter().map(|t| &t.wsd));
    let constraint = Dnf::from_wsds(shooters.tuples().iter().map(|t| &t.wsd));
    let wt = db.world_table();

    // P(some shooter) = 1 − 0.5·0.6 = 0.7; P(Bryant ∧ constraint) = 0.5.
    let p = condition::conditional_probability(&event, &constraint, wt, ConfMethod::Exact)
        .unwrap();
    assert!((p - 0.5 / 0.7).abs() < 1e-9, "{p}");
    // Conditioning raised Bryant's posterior above his prior (0.5): the
    // observation is evidence for his availability.
    assert!(p > 0.5);
}

#[test]
fn posterior_is_prior_for_independent_player() {
    let mut db = setup();
    // Gasol is no shooter: the shooting observation says nothing about him.
    let gasol = db
        .query_uncertain("select player from squad where player = 'Gasol'")
        .unwrap();
    let shooters = db
        .query_uncertain(
            "select s.skill from squad a, skills s
             where a.player = s.player and s.skill = 'shooting'",
        )
        .unwrap();
    let event = Dnf::from_wsds(gasol.tuples().iter().map(|t| &t.wsd));
    let constraint = Dnf::from_wsds(shooters.tuples().iter().map(|t| &t.wsd));
    let p = condition::conditional_probability(
        &event,
        &constraint,
        db.world_table(),
        ConfMethod::Exact,
    )
    .unwrap();
    assert!((p - 0.8).abs() < 1e-9, "{p}");
}

#[test]
fn constraint_excluding_all_worlds_errors() {
    let mut db = setup();
    let bryant = db
        .query_uncertain("select player from squad where player = 'Bryant'")
        .unwrap();
    let event = Dnf::from_wsds(bryant.tuples().iter().map(|t| &t.wsd));
    let err = condition::conditional_probability(
        &event,
        &Dnf::falsum(),
        db.world_table(),
        ConfMethod::Exact,
    );
    assert!(err.is_err());
}

#[test]
fn cleaning_with_constraints_posteriors_sum_to_one() {
    // Key-repair alternatives conditioned on an observation: the posterior
    // distribution over the surviving alternatives renormalises.
    let mut db = MayBms::new();
    db.register(
        "dirty",
        rel(
            &[("id", DataType::Int), ("city", DataType::Text), ("w", DataType::Float)],
            vec![
                vec![1.into(), "Oxford".into(), Value::Float(2.0)],
                vec![1.into(), "Ithaca".into(), Value::Float(1.0)],
                vec![1.into(), "Geneva".into(), Value::Float(1.0)],
            ],
        ),
    )
    .unwrap();
    db.run("create table fixed as select * from (repair key id in dirty weight by w) r")
        .unwrap();
    let u = db.table("fixed").unwrap().clone();
    let events: Vec<Dnf> = u
        .tuples()
        .iter()
        .map(|t| Dnf::new(vec![t.wsd.clone()]))
        .collect();
    // Observation: the city is in Europe (not Ithaca).
    let constraint = Dnf::new(
        u.tuples()
            .iter()
            .filter(|t| t.data.value(1).as_str() != Some("Ithaca"))
            .map(|t| t.wsd.clone())
            .collect(),
    );
    let post =
        condition::posteriors(&events, &constraint, db.world_table(), ConfMethod::Exact)
            .unwrap();
    // Oxford 2/3, Ithaca 0, Geneva 1/3 after renormalisation.
    assert!((post[0] - 2.0 / 3.0).abs() < 1e-9);
    assert!(post[1].abs() < 1e-9);
    assert!((post[2] - 1.0 / 3.0).abs() < 1e-9);
    let total: f64 = post.iter().sum();
    assert!((total - 1.0).abs() < 1e-9);
}
