//! End-to-end property tests: full SQL pipelines (parser → planner →
//! executor → confidence engines) against brute-force possible-worlds
//! enumeration on randomly generated databases.

use maybms::MayBms;
use maybms_engine::{rel, DataType, Value};
use proptest::prelude::*;

/// Rows for a `(g, v, p)` table with probabilities in {0.1, …, 0.9}.
fn arb_rows() -> impl Strategy<Value = Vec<(i64, i64, u32)>> {
    prop::collection::vec((0i64..3, 0i64..5, 1u32..10), 1..8)
}

fn load(rows: &[(i64, i64, u32)]) -> MayBms {
    let mut db = MayBms::new();
    db.register(
        "t",
        rel(
            &[("g", DataType::Int), ("v", DataType::Int), ("p", DataType::Float)],
            rows.iter()
                .map(|&(g, v, p)| {
                    vec![Value::Int(g), Value::Int(v), Value::Float(f64::from(p) / 10.0)]
                })
                .collect(),
        ),
    )
    .unwrap();
    db
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// conf() per group over a picked subset == brute-force world sums.
    #[test]
    fn sql_conf_equals_enumeration(rows in arb_rows()) {
        let mut db = load(&rows);
        db.run(
            "create table picked as
             select * from (pick tuples from t independently with probability p) x",
        ).unwrap();
        let out = db
            .query("select g, conf() as c from picked group by g")
            .unwrap();
        let u = db.table("picked").unwrap().clone();
        let wt = db.world_table();
        let mut truth: std::collections::HashMap<i64, f64> = Default::default();
        for (world, wp) in wt.enumerate_worlds(1 << 16).unwrap() {
            let inst = u.instantiate(&world);
            let mut seen = std::collections::HashSet::new();
            for t in inst.tuples() {
                if seen.insert(t.value(0).as_int().unwrap()) {
                    *truth.entry(t.value(0).as_int().unwrap()).or_insert(0.0) += wp;
                }
            }
        }
        prop_assert_eq!(out.len(), truth.len());
        for t in out.tuples() {
            let g = t.value(0).as_int().unwrap();
            let p = t.value(1).as_f64().unwrap();
            prop_assert!((p - truth[&g]).abs() < 1e-9, "g={} p={} truth={}", g, p, truth[&g]);
        }
    }

    /// esum()/ecount() == brute-force expectations.
    #[test]
    fn sql_expectations_equal_enumeration(rows in arb_rows()) {
        let mut db = load(&rows);
        db.run(
            "create table picked as
             select * from (pick tuples from t independently with probability p) x",
        ).unwrap();
        let out = db.query("select esum(v) as es, ecount() as ec from picked").unwrap();
        let es = out.tuples()[0].value(0).as_f64().unwrap();
        let ec = out.tuples()[0].value(1).as_f64().unwrap();
        let u = db.table("picked").unwrap().clone();
        let wt = db.world_table();
        let mut es_truth = 0.0;
        let mut ec_truth = 0.0;
        for (world, wp) in wt.enumerate_worlds(1 << 16).unwrap() {
            let inst = u.instantiate(&world);
            ec_truth += wp * inst.len() as f64;
            es_truth += wp
                * inst
                    .tuples()
                    .iter()
                    .map(|t| t.value(1).as_f64().unwrap())
                    .sum::<f64>();
        }
        prop_assert!((es - es_truth).abs() < 1e-9, "esum {} vs {}", es, es_truth);
        prop_assert!((ec - ec_truth).abs() < 1e-9, "ecount {} vs {}", ec, ec_truth);
    }

    /// repair-key marginals through full SQL == brute force.
    #[test]
    fn sql_repair_key_marginals(rows in arb_rows()) {
        let mut db = load(&rows);
        db.run(
            "create table repaired as
             select * from (repair key g in t weight by p) x",
        ).unwrap();
        let out = db
            .query("select g, v, conf() as c from repaired group by g, v")
            .unwrap();
        let u = db.table("repaired").unwrap().clone();
        let wt = db.world_table();
        let mut truth: std::collections::HashMap<(i64, i64), f64> = Default::default();
        for (world, wp) in wt.enumerate_worlds(1 << 16).unwrap() {
            let inst = u.instantiate(&world);
            let mut seen = std::collections::HashSet::new();
            for t in inst.tuples() {
                let key = (t.value(0).as_int().unwrap(), t.value(1).as_int().unwrap());
                if seen.insert(key) {
                    *truth.entry(key).or_insert(0.0) += wp;
                }
            }
        }
        for t in out.tuples() {
            let key = (t.value(0).as_int().unwrap(), t.value(1).as_int().unwrap());
            let p = t.value(2).as_f64().unwrap();
            prop_assert!((p - truth[&key]).abs() < 1e-9,
                "key={:?} p={} truth={}", key, p, truth[&key]);
        }
    }

    /// A join of two independent picked tables: conf() == enumeration.
    #[test]
    fn sql_join_conf_equals_enumeration(
        rows_a in prop::collection::vec((0i64..3, 1u32..10), 1..5),
        rows_b in prop::collection::vec((0i64..3, 1u32..10), 1..5),
    ) {
        let mut db = MayBms::new();
        let mk = |rows: &[(i64, u32)]| {
            rel(
                &[("k", DataType::Int), ("p", DataType::Float)],
                rows.iter()
                    .map(|&(k, p)| vec![Value::Int(k), Value::Float(f64::from(p) / 10.0)])
                    .collect(),
            )
        };
        db.register("a", mk(&rows_a)).unwrap();
        db.register("b", mk(&rows_b)).unwrap();
        db.run("create table pa as select * from (pick tuples from a independently with probability p) x").unwrap();
        db.run("create table pb as select * from (pick tuples from b independently with probability p) x").unwrap();
        let out = db
            .query(
                "select pa.k, conf() as c from pa, pb where pa.k = pb.k group by pa.k",
            )
            .unwrap();
        let ua = db.table("pa").unwrap().clone();
        let ub = db.table("pb").unwrap().clone();
        let wt = db.world_table();
        let mut truth: std::collections::HashMap<i64, f64> = Default::default();
        for (world, wp) in wt.enumerate_worlds(1 << 16).unwrap() {
            let ia = ua.instantiate(&world);
            let ib = ub.instantiate(&world);
            let keys_b: std::collections::HashSet<i64> =
                ib.tuples().iter().map(|t| t.value(0).as_int().unwrap()).collect();
            let mut seen = std::collections::HashSet::new();
            for t in ia.tuples() {
                let k = t.value(0).as_int().unwrap();
                if keys_b.contains(&k) && seen.insert(k) {
                    *truth.entry(k).or_insert(0.0) += wp;
                }
            }
        }
        prop_assert_eq!(out.len(), truth.len());
        for t in out.tuples() {
            let k = t.value(0).as_int().unwrap();
            let p = t.value(1).as_f64().unwrap();
            prop_assert!((p - truth[&k]).abs() < 1e-9, "k={} p={} truth={}", k, p, truth[&k]);
        }
    }

    /// `select possible` == set of tuples appearing in some world.
    #[test]
    fn sql_possible_equals_enumeration(rows in arb_rows()) {
        let mut db = load(&rows);
        db.run(
            "create table picked as
             select * from (pick tuples from t independently with probability p) x",
        ).unwrap();
        let out = db.query("select possible v from picked").unwrap();
        let u = db.table("picked").unwrap().clone();
        let wt = db.world_table();
        let mut truth = std::collections::HashSet::new();
        for (world, _wp) in wt.enumerate_worlds(1 << 16).unwrap() {
            for t in u.instantiate(&world).tuples() {
                truth.insert(t.value(1).as_int().unwrap());
            }
        }
        let got: std::collections::HashSet<i64> =
            out.tuples().iter().map(|t| t.value(0).as_int().unwrap()).collect();
        prop_assert_eq!(got.len(), out.len(), "possible must deduplicate");
        prop_assert_eq!(got, truth);
    }
}
