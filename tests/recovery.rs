//! SQL-level crash-recovery tests: whole-database durability driven
//! through [`MayBms::open_with_vfs`] with fault injection, compared
//! statement-by-statement against an in-memory oracle running the same
//! SQL fault-free.
//!
//! Covers the deterministic corner cases (fresh directory, snapshot-only
//! restart, torn final record, recovering twice) at 1/2/8 execution
//! threads — the determinism contract (bit-identical state at any thread
//! count) must survive a restart — plus a property test: random
//! DDL+mutation sequences crashed at *every* file-operation fault point.

use std::sync::Arc;

use maybms::store::{Catalog, FaultMode, FaultVfs, MemVfs, Vfs};
use maybms::{store, MayBms};
use proptest::prelude::*;

/// Canonical byte fingerprint of a database's observable state: every
/// stored table plus the distributions of the world-table variables the
/// stored WSDs reference.
fn fp(db: &MayBms) -> Vec<u8> {
    let tables: Catalog = db
        .table_names()
        .iter()
        .map(|n| (n.to_string(), db.table(n).expect("listed table exists").clone()))
        .collect();
    store::fingerprint(&tables, db.world_table())
}

/// One scripted action against a database.
#[derive(Debug, Clone)]
enum Stmt {
    Sql(String),
    Checkpoint,
}

/// Run statements in order, stopping at (and reporting) the first
/// failure. Scripts are valid by construction, so a failure can only be
/// an injected storage fault.
fn run_stmts(db: &mut MayBms, stmts: &[Stmt]) -> Option<usize> {
    for (k, s) in stmts.iter().enumerate() {
        let result = match s {
            Stmt::Sql(sql) => db.run(sql).map(|_| ()),
            Stmt::Checkpoint => db.checkpoint(),
        };
        if result.is_err() {
            return Some(k);
        }
    }
    None
}

/// Oracle fingerprints: `fps[k]` is the in-memory state after the first
/// `k` statements (checkpoints are durability-only: no state change).
fn oracle_fingerprints(stmts: &[Stmt]) -> Vec<Vec<u8>> {
    let mut db = MayBms::new();
    let mut fps = vec![fp(&db)];
    for s in stmts {
        if let Stmt::Sql(sql) = s {
            db.run(sql).expect("oracle script must be valid");
        }
        fps.push(fp(&db));
    }
    fps
}

fn sql(s: impl Into<String>) -> Stmt {
    Stmt::Sql(s.into())
}

/// A fixed workload exercising certain and uncertain tables, WAL records
/// with world-table extensions, and a mid-stream checkpoint.
fn fixed_workload() -> Vec<Stmt> {
    vec![
        sql("create table games (player text, pts bigint, w double precision)"),
        sql("insert into games values ('Bryant', 40, 0.6), ('Duncan', 25, 0.4)"),
        sql("create table picks as \
             select * from (pick tuples from games with probability 0.5) p"),
        Stmt::Checkpoint,
        sql("create table favourite as \
             select * from (repair key in games weight by w) r"),
        sql("update games set pts = pts + 1 where player = 'Bryant'"),
        sql("delete from games where pts < 30"),
    ]
}

#[test]
fn empty_wal_restart_is_empty() {
    let mem = MemVfs::new();
    {
        let db = MayBms::open_with_vfs(Arc::new(mem.clone())).unwrap();
        assert!(db.table_names().is_empty());
    }
    let db = MayBms::open_with_vfs(Arc::new(mem.clone())).unwrap();
    assert!(db.table_names().is_empty());
    let report = db.recovery_report().unwrap();
    assert_eq!(report.replayed, 0);
    assert!(!report.truncated_tail);
}

#[test]
fn wal_replay_restores_state_across_thread_counts() {
    let stmts = fixed_workload();
    let before = maybms_par::current_threads();
    let mut prints = Vec::new();
    for threads in [1usize, 2, 8] {
        maybms_par::set_threads(threads);
        let mem = MemVfs::new();
        let original = {
            let mut db = MayBms::open_with_vfs(Arc::new(mem.clone())).unwrap();
            assert_eq!(run_stmts(&mut db, &stmts), None);
            fp(&db)
        };
        let db = MayBms::open_with_vfs(Arc::new(mem.clone())).unwrap();
        assert_eq!(fp(&db), original, "restart changed state at {threads} threads");
        prints.push(original);
    }
    maybms_par::set_threads(before);
    // The determinism contract survives restart: the durable state is
    // bit-identical no matter how many threads produced it.
    assert_eq!(prints[0], prints[1]);
    assert_eq!(prints[0], prints[2]);
}

#[test]
fn snapshot_only_restart_replays_nothing() {
    let mem = MemVfs::new();
    let original = {
        let mut db = MayBms::open_with_vfs(Arc::new(mem.clone())).unwrap();
        assert_eq!(run_stmts(&mut db, &fixed_workload()), None);
        db.checkpoint().unwrap();
        fp(&db)
    };
    let db = MayBms::open_with_vfs(Arc::new(mem.clone())).unwrap();
    let report = db.recovery_report().unwrap();
    assert_eq!(report.replayed, 0, "checkpoint must leave nothing to replay");
    assert_eq!(fp(&db), original);
    // A conf() query over the recovered uncertain table still works.
    let mut db = db;
    let r = db
        .query("select player, conf() as p from picks group by player")
        .unwrap();
    assert!(r.len() <= 2);
}

#[test]
fn torn_final_record_loses_only_the_last_statement() {
    let stmts = fixed_workload();
    let fps = oracle_fingerprints(&stmts);
    let mem = MemVfs::new();
    {
        let mut db = MayBms::open_with_vfs(Arc::new(mem.clone())).unwrap();
        assert_eq!(run_stmts(&mut db, &stmts), None);
    }
    // Tear the last record: chop 3 bytes off the WAL tail.
    let wal = mem.read("wal").unwrap();
    mem.truncate("wal", wal.len() as u64 - 3).unwrap();
    let db = MayBms::open_with_vfs(Arc::new(mem.clone())).unwrap();
    let report = db.recovery_report().unwrap();
    assert!(report.truncated_tail);
    // Exactly the last statement is gone; everything earlier survived.
    assert_eq!(fp(&db), fps[stmts.len() - 1]);
}

#[test]
fn double_recovery_equals_single_recovery() {
    let stmts = fixed_workload();
    let mem = MemVfs::new();
    {
        let mut db = MayBms::open_with_vfs(Arc::new(mem.clone())).unwrap();
        assert_eq!(run_stmts(&mut db, &stmts), None);
    }
    let wal = mem.read("wal").unwrap();
    mem.truncate("wal", wal.len() as u64 - 1).unwrap();
    let first = {
        let db = MayBms::open_with_vfs(Arc::new(mem.clone())).unwrap();
        assert!(db.recovery_report().unwrap().truncated_tail);
        fp(&db)
    };
    let files_after_first: Vec<_> =
        ["wal", "snapshot"].iter().map(|f| mem.read(f).ok()).collect();
    let db = MayBms::open_with_vfs(Arc::new(mem.clone())).unwrap();
    assert!(!db.recovery_report().unwrap().truncated_tail, "log is clean now");
    assert_eq!(fp(&db), first);
    let files_after_second: Vec<_> =
        ["wal", "snapshot"].iter().map(|f| mem.read(f).ok()).collect();
    assert_eq!(files_after_first, files_after_second);
}

// ---------------------------------------------------------------------
// Property test: random scripts, crash at every fault point.
// ---------------------------------------------------------------------

/// Abstract script commands; `concretize` turns them into a valid SQL
/// script by tracking which tables exist and skipping inapplicable ones.
#[derive(Debug, Clone)]
enum Cmd {
    Create(u8),
    Insert(u8, Vec<i64>),
    Update(u8, i64),
    Delete(u8, i64),
    Drop(u8),
    Pick(u8, u8),
    Checkpoint,
}

fn arb_cmds() -> impl Strategy<Value = Vec<Cmd>> {
    let cmd = prop_oneof![
        (0u8..3).prop_map(Cmd::Create),
        (0u8..3, prop::collection::vec(-5i64..20, 1..4))
            .prop_map(|(i, v)| Cmd::Insert(i, v)),
        (0u8..3, -5i64..20).prop_map(|(i, x)| Cmd::Update(i, x)),
        (0u8..3, -5i64..20).prop_map(|(i, x)| Cmd::Delete(i, x)),
        (0u8..3).prop_map(Cmd::Drop),
        (0u8..3, 0u8..2).prop_map(|(i, j)| Cmd::Pick(i, j)),
        Just(Cmd::Checkpoint),
    ];
    prop::collection::vec(cmd, 1..7)
}

fn concretize(cmds: &[Cmd]) -> Vec<Stmt> {
    let mut exists = std::collections::HashSet::new();
    let mut out = Vec::new();
    for c in cmds {
        match c {
            Cmd::Create(i) => {
                if exists.insert(format!("t{i}")) {
                    out.push(sql(format!(
                        "create table t{i} (a bigint, w double precision)"
                    )));
                }
            }
            Cmd::Insert(i, vals) => {
                if exists.contains(&format!("t{i}")) {
                    let rows: Vec<String> =
                        vals.iter().map(|v| format!("({v}, 0.5)")).collect();
                    out.push(sql(format!(
                        "insert into t{i} values {}",
                        rows.join(", ")
                    )));
                }
            }
            Cmd::Update(i, x) => {
                if exists.contains(&format!("t{i}")) {
                    out.push(sql(format!(
                        "update t{i} set a = a + 1 where a > {x}"
                    )));
                }
            }
            Cmd::Delete(i, x) => {
                if exists.contains(&format!("t{i}")) {
                    out.push(sql(format!("delete from t{i} where a < {x}")));
                }
            }
            Cmd::Drop(i) => {
                if exists.remove(&format!("t{i}")) {
                    out.push(sql(format!("drop table t{i}")));
                }
            }
            Cmd::Pick(i, j) => {
                if exists.contains(&format!("t{i}")) && exists.insert(format!("p{j}")) {
                    out.push(sql(format!(
                        "create table p{j} as select * from \
                         (pick tuples from t{i} with probability 0.5) x"
                    )));
                }
            }
            Cmd::Checkpoint => out.push(Stmt::Checkpoint),
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// For a random valid script, inject a storage fault at every file
    /// operation in turn; after each crash, recovery must land on the
    /// oracle state just before or just after the statement in flight,
    /// and recovering twice must equal recovering once.
    #[test]
    fn random_scripts_recover_to_oracle_state(cmds in arb_cmds()) {
        let stmts = concretize(&cmds);
        let fps = oracle_fingerprints(&stmts);
        for fail_at in 1u64..500 {
            let mem = MemVfs::new();
            let fault = FaultVfs::new(mem.clone(), fail_at, FaultMode::Torn);
            let (opened, failed_step) =
                match MayBms::open_with_vfs(Arc::new(fault.clone())) {
                    Err(_) => (false, None),
                    Ok(mut db) => (true, run_stmts(&mut db, &stmts)),
                };
            if !fault.triggered() {
                prop_assert_eq!(failed_step, None);
                break;
            }
            // Power cut on top of the fault: unsynced bytes vanish too.
            mem.crash();
            let recovered = MayBms::open_with_vfs(Arc::new(mem.clone()))
                .expect("recovery after injected fault must succeed");
            let got = fp(&recovered);
            let allowed: Vec<&Vec<u8>> = match (opened, failed_step) {
                (false, _) => vec![&fps[0]],
                (true, Some(k)) => vec![&fps[k], &fps[k + 1]],
                (true, None) => unreachable!("fault triggered but nothing failed"),
            };
            prop_assert!(
                allowed.iter().any(|a| **a == got),
                "fail_at={} landed on neither pre- nor post-statement state",
                fail_at
            );
            let again = MayBms::open_with_vfs(Arc::new(mem.clone())).unwrap();
            prop_assert_eq!(&got, &fp(&again), "recovery not idempotent");
        }
    }
}
