//! End-to-end reproduction of the paper's Figure 1 ("Random walk on a
//! stochastic matrix") and §3 "Fitness prediction": the two SQL statements
//! are run *verbatim* and the resulting three-day fitness distribution is
//! checked against the matrix power M³ computed independently.

use maybms::MayBms;
use maybms_engine::{rel, DataType, Value};

/// Bryant's stochastic matrix from Figure 1 (rows: F, SE, SL).
const BRYANT: [[f64; 3]; 3] = [
    [0.8, 0.05, 0.15],
    [0.1, 0.6, 0.3],
    [0.8, 0.0, 0.2],
];

/// A second player so the test exercises per-player grouping.
const DUNCAN: [[f64; 3]; 3] = [
    [0.6, 0.2, 0.2],
    [0.3, 0.5, 0.2],
    [0.5, 0.1, 0.4],
];

const STATES: [&str; 3] = ["F", "SE", "SL"];

fn matmul(a: &[[f64; 3]; 3], b: &[[f64; 3]; 3]) -> [[f64; 3]; 3] {
    let mut out = [[0.0; 3]; 3];
    for (i, row) in out.iter_mut().enumerate() {
        for (j, cell) in row.iter_mut().enumerate() {
            *cell = (0..3).map(|k| a[i][k] * b[k][j]).sum();
        }
    }
    out
}

fn ft_rows(player: &str, m: &[[f64; 3]; 3]) -> Vec<Vec<Value>> {
    let mut rows = Vec::new();
    for (i, from) in STATES.iter().enumerate() {
        for (j, to) in STATES.iter().enumerate() {
            if m[i][j] > 0.0 {
                rows.push(vec![
                    player.into(),
                    (*from).into(),
                    (*to).into(),
                    Value::Float(m[i][j]),
                ]);
            }
        }
    }
    rows
}

fn setup() -> MayBms {
    let mut db = MayBms::new();
    let mut rows = ft_rows("Bryant", &BRYANT);
    rows.extend(ft_rows("Duncan", &DUNCAN));
    db.register(
        "ft",
        rel(
            &[
                ("player", DataType::Text),
                ("init", DataType::Text),
                ("final", DataType::Text),
                ("p", DataType::Float),
            ],
            rows,
        ),
    )
    .unwrap();
    // Initial states: Bryant fit, Duncan seriously injured.
    db.register(
        "states",
        rel(
            &[("player", DataType::Text), ("state", DataType::Text)],
            vec![
                vec!["Bryant".into(), "F".into()],
                vec!["Duncan".into(), "SE".into()],
            ],
        ),
    )
    .unwrap();
    db
}

/// The exact statements printed in the paper (Figure 1), unchanged.
const FT2_SQL: &str = "\
create table FT2 as
select R1.Player, R1.Init, R2.Final, conf() as p from
(repair key Player, Init in FT weight by p) R1,
(repair key Player, Init in FT weight by p) R2, States S
where R1.Player = S.Player and R1.Init = S.State
and R1.Final = R2.Init and R1.Player = R2.Player
group by R1.Player, R1.Init, R2.Final;";

#[test]
fn figure1_one_step_walk_is_r2() {
    // `repair key Player, Init in FT weight by p` produces Figure 1's R2:
    // one condition column over independent variables, alternatives within
    // a (Player, Init) group mutually exclusive.
    let mut db = setup();
    let u = db
        .query_uncertain("select * from (repair key Player, Init in FT weight by p) R")
        .unwrap();
    // 17 rows: Bryant has 8 nonzero transitions (SE→F dropped? no — SL→SE
    // is the zero one), Duncan has 9.
    assert_eq!(u.len(), 17);
    assert!(!u.is_t_certain());
    // Mass per (player, init) group sums to 1.
    let wt = db.world_table();
    for player in ["Bryant", "Duncan"] {
        for init in STATES {
            let mass: f64 = u
                .tuples()
                .iter()
                .filter(|t| {
                    t.data.value(0) == &Value::str(player)
                        && t.data.value(1) == &Value::str(init)
                })
                .map(|t| t.wsd.prob(wt).unwrap())
                .sum();
            assert!((mass - 1.0).abs() < 1e-9, "{player} {init}: {mass}");
        }
    }
}

#[test]
fn figure1_three_step_walk_matches_matrix_power() {
    let mut db = setup();
    db.run(FT2_SQL).unwrap();

    // FT2 holds the 2-step distribution for each player's initial state.
    let ft2 = db.query("select Player, Init, Final, p from FT2").unwrap();
    let m2b = matmul(&BRYANT, &BRYANT);
    let m2d = matmul(&DUNCAN, &DUNCAN);
    for t in ft2.tuples() {
        let player = t.value(0).as_str().unwrap();
        let init = t.value(1).as_str().unwrap();
        let fin = t.value(2).as_str().unwrap();
        let p = t.value(3).as_f64().unwrap();
        let i = STATES.iter().position(|s| *s == init).unwrap();
        let j = STATES.iter().position(|s| *s == fin).unwrap();
        let expected = match player {
            "Bryant" => {
                assert_eq!(init, "F"); // States pins Bryant to F
                m2b[i][j]
            }
            "Duncan" => {
                assert_eq!(init, "SE");
                m2d[i][j]
            }
            other => panic!("unexpected player {other}"),
        };
        assert!((p - expected).abs() < 1e-9, "{player} {init}->{fin}: {p} vs {expected}");
    }

    // The paper's second statement: the 3-step walk.
    let walk = db
        .query(
            "select R1.Player, R2.Final as State, conf() as p from
             (repair key Player, Init in FT2 weight by p) R1,
             (repair key Player, Init in FT weight by p) R2
             where R1.Final = R2.Init and R1.Player = R2.Player
             group by R1.player, R2.Final;",
        )
        .unwrap();
    let m3b = matmul(&m2b, &BRYANT);
    let m3d = matmul(&m2d, &DUNCAN);
    let mut checked = 0;
    for t in walk.tuples() {
        let player = t.value(0).as_str().unwrap();
        let state = t.value(1).as_str().unwrap();
        let p = t.value(2).as_f64().unwrap();
        let j = STATES.iter().position(|s| *s == state).unwrap();
        let expected = match player {
            "Bryant" => m3b[0][j],  // started at F
            "Duncan" => m3d[1][j],  // started at SE
            other => panic!("unexpected player {other}"),
        };
        assert!(
            (p - expected).abs() < 1e-9,
            "{player} 3-step to {state}: {p} vs {expected}"
        );
        checked += 1;
    }
    assert_eq!(checked, 6, "three states per player");
    // Each player's distribution sums to 1.
    for player in ["Bryant", "Duncan"] {
        let total: f64 = walk
            .tuples()
            .iter()
            .filter(|t| t.value(0) == &Value::str(player))
            .map(|t| t.value(2).as_f64().unwrap())
            .sum();
        assert!((total - 1.0).abs() < 1e-9);
    }
}

#[test]
fn figure1_aconf_agrees_with_conf() {
    let mut db = setup();
    db.run(FT2_SQL).unwrap();
    let exact = db
        .query(
            "select R1.Player, R2.Final as State, conf() as p from
             (repair key Player, Init in FT2 weight by p) R1,
             (repair key Player, Init in FT weight by p) R2
             where R1.Final = R2.Init and R1.Player = R2.Player
             group by R1.player, R2.Final
             order by R1.player, R2.Final",
        )
        .unwrap();
    let approx = db
        .query(
            "select R1.Player, R2.Final as State, aconf(0.05, 0.01) as p from
             (repair key Player, Init in FT2 weight by p) R1,
             (repair key Player, Init in FT weight by p) R2
             where R1.Final = R2.Init and R1.Player = R2.Player
             group by R1.player, R2.Final
             order by R1.player, R2.Final",
        )
        .unwrap();
    assert_eq!(exact.len(), approx.len());
    for (e, a) in exact.tuples().iter().zip(approx.tuples()) {
        let pe = e.value(2).as_f64().unwrap();
        let pa = a.value(2).as_f64().unwrap();
        assert!(
            ((pe - pa) / pe).abs() < 0.05,
            "aconf {pa} too far from conf {pe} for {e}"
        );
    }
}

#[test]
fn longer_walks_by_iterated_squaring() {
    // §3: "For a 3-step random walk, we join the outcome of the previous
    // 2-step walk with a 1-step walk" — extend to a 4-step walk the same
    // way and verify against M⁴.
    let mut db = setup();
    db.run(FT2_SQL).unwrap();
    db.run(
        "create table FT3 as
         select R1.Player, R1.Init, R2.Final, conf() as p from
         (repair key Player, Init in FT2 weight by p) R1,
         (repair key Player, Init in FT weight by p) R2
         where R1.Final = R2.Init and R1.Player = R2.Player
         group by R1.Player, R1.Init, R2.Final;",
    )
    .unwrap();
    let walk4 = db
        .query(
            "select R1.Player, R2.Final as State, conf() as p from
             (repair key Player, Init in FT3 weight by p) R1,
             (repair key Player, Init in FT weight by p) R2
             where R1.Final = R2.Init and R1.Player = R2.Player
             group by R1.player, R2.Final;",
        )
        .unwrap();
    let m2 = matmul(&BRYANT, &BRYANT);
    let m4 = matmul(&matmul(&m2, &BRYANT), &BRYANT);
    for t in walk4.tuples() {
        if t.value(0) != &Value::str("Bryant") {
            continue;
        }
        let j = STATES
            .iter()
            .position(|s| *s == t.value(1).as_str().unwrap())
            .unwrap();
        let p = t.value(2).as_f64().unwrap();
        assert!((p - m4[0][j]).abs() < 1e-9, "4-step {j}: {p} vs {}", m4[0][j]);
    }
}
