//! Drive the interactive shell binary end to end through a pipe — the
//! closest thing to the original demo's web front-end smoke test.

use std::io::Write;
use std::process::{Command, Stdio};

fn shell_binary() -> Option<std::path::PathBuf> {
    // target/debug/maybms-shell next to the test executable.
    let mut exe = std::env::current_exe().ok()?;
    exe.pop(); // test binary name
    if exe.ends_with("deps") {
        exe.pop();
    }
    let candidate = exe.join("maybms-shell");
    candidate.exists().then_some(candidate)
}

#[test]
fn shell_runs_a_session() {
    let Some(bin) = shell_binary() else {
        eprintln!("maybms-shell binary not built; skipping");
        return;
    };
    let mut child = Command::new(bin)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn shell");
    let script = "\
create table t (a bigint, w double precision);
insert into t values (1, 1.0), (2, 3.0);
select a, conf() as p from (repair key in t weight by w) r group by a;
\\d
\\w
bad sql here;
\\q
";
    child
        .stdin
        .as_mut()
        .expect("stdin piped")
        .write_all(script.as_bytes())
        .expect("write script");
    let out = child.wait_with_output().expect("shell exits");
    assert!(out.status.success(), "shell exited with {:?}", out.status);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("CREATE TABLE"), "{stdout}");
    assert!(stdout.contains("INSERT 2"), "{stdout}");
    assert!(stdout.contains("0.25"), "{stdout}");
    assert!(stdout.contains("0.75"), "{stdout}");
    assert!(stdout.contains("t-certain"), "{stdout}");
    assert!(stdout.contains("possible worlds"), "{stdout}");
    // Errors are reported inline, not fatal.
    assert!(stdout.contains("error"), "{stdout}");
}
