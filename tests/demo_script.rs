//! The shipped shell demo script (`scripts/nba_demo.sql`) must run
//! end-to-end — it is the paper's Figure 1 program, so the final statement
//! must produce one 3-state distribution per player.

use maybms::{MayBms, QueryOutput, StatementResult};

#[test]
fn nba_demo_script_runs() {
    let script = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/scripts/nba_demo.sql"
    ))
    .expect("demo script present");
    let mut db = MayBms::new();
    let results = db.run_script(&script).expect("script runs");
    // 5 statements: 2 create, 2 insert, 1 create-as … plus the final select.
    let Some(StatementResult::Query(QueryOutput::Certain(walk))) = results.last().cloned()
    else {
        panic!("last statement must be a certain query result");
    };
    assert_eq!(walk.len(), 6, "3 states × 2 players");
    // Distributions sum to 1 per player.
    let mut sums = std::collections::HashMap::new();
    for t in walk.tuples() {
        *sums.entry(t.value(0).to_string()).or_insert(0.0) +=
            t.value(2).as_f64().unwrap();
    }
    assert_eq!(sums.len(), 2);
    for (player, s) in sums {
        assert!((s - 1.0).abs() < 1e-9, "{player}: {s}");
    }
    // Rows are ordered per player by descending probability.
    let bryant: Vec<f64> = walk
        .tuples()
        .iter()
        .filter(|t| t.value(0).as_str() == Some("Bryant"))
        .map(|t| t.value(2).as_f64().unwrap())
        .collect();
    assert!(bryant.windows(2).all(|w| w[0] >= w[1]));
}
