//! Data cleaning as uncertainty management (§1: "Data cleaning can be
//! fruitfully approached as a problem of taming uncertainty in the
//! data."): conflicting records become a hypothesis space via
//! `repair key`; constraints prune worlds; `conf` ranks golden records.
//!
//! Run with: `cargo run --example data_cleaning`

use maybms::MayBms;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut db = MayBms::new();

    // Three sources disagree about customers. Source trust differs.
    db.run(
        "create table staging (cust bigint, name text, city text, source text, trust double precision)",
    )?;
    db.run(
        "insert into staging values
           (1, 'J. Smith',  'Oxford',     'crm',    3.0),
           (1, 'John Smith','Oxford',     'web',    2.0),
           (1, 'J. Smith',  'Cambridge',  'legacy', 1.0),
           (2, 'A. Jones',  'Ithaca',     'crm',    3.0),
           (2, 'Ann Jones', 'Ithaca',     'web',    2.0),
           (3, 'B. Brown',  'Providence', 'crm',    3.0)",
    )?;

    println!("== Raw staging data ==");
    println!("{}", db.query("select * from staging order by cust")?);

    // One record per customer per world, weighted by source trust.
    println!("== Candidate golden records with confidence ==");
    let golden = db.query(
        "select R.cust, R.name, R.city, conf() as p
         from (repair key cust in staging weight by trust) R
         group by R.cust, R.name, R.city
         order by R.cust, p desc",
    )?;
    println!("{golden}");

    // Per-attribute marginals: what is the probability distribution of
    // each customer's *city*, regardless of the name?
    println!("== City marginals per customer ==");
    let cities = db.query(
        "select R.cust, R.city, conf() as p
         from (repair key cust in staging weight by trust) R
         group by R.cust, R.city
         order by R.cust, p desc",
    )?;
    println!("{cities}");

    // A cleaning constraint: we know customer 1 is in the UK; Cambridge(MA)
    // records were mis-geocoded. Condition the space by filtering before
    // the repair (constraint-driven cleaning).
    println!("== After applying the constraint city <> 'Cambridge' ==");
    let cleaned = db.query(
        "select R.cust, R.name, R.city, conf() as p
         from (repair key cust in
                 (select cust, name, city, trust from staging where city <> 'Cambridge')
               weight by trust) R
         group by R.cust, R.name, R.city
         order by R.cust, p desc",
    )?;
    println!("{cleaned}");

    // Expected number of distinct spellings in the clean table — a data
    // quality metric via ecount.
    println!("== Expected records kept per repair (always 1 per customer) ==");
    let quality = db.query(
        "select R.cust, ecount() as expected_records
         from (repair key cust in staging weight by trust) R
         group by R.cust
         order by R.cust",
    )?;
    println!("{quality}");

    // Decision: accept the maximum-confidence repair per customer.
    println!("== Accepted golden records (argmax over confidence) ==");
    db.run(
        "create table scored as
         select R.cust, R.name, R.city, conf() as p
         from (repair key cust in staging weight by trust) R
         group by R.cust, R.name, R.city",
    )?;
    let accepted = db.query(
        "select cust, argmax(name || ' @ ' || city, p) as golden
         from scored group by cust order by cust",
    )?;
    println!("{accepted}");

    Ok(())
}
