//! §1 motivation: "Sensor and RFID data are inherently uncertain." A small
//! sensor-network monitoring scenario: noisy temperature readings carry
//! per-reading reliabilities; repair-key models mutually-exclusive
//! calibration hypotheses; queries compute alarm confidences and expected
//! aggregate load.
//!
//! Run with: `cargo run --example sensor_network`

use maybms::MayBms;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut db = MayBms::new();

    // Readings: each row is one sensor's reported temperature with the
    // probability that the report is genuine (link quality).
    db.run(
        "create table readings (sensor bigint, room text, temp double precision, reliability double precision)",
    )?;
    db.run(
        "insert into readings values
           (1, 'server_room', 41.0, 0.95),
           (2, 'server_room', 39.5, 0.70),
           (3, 'lobby',       22.0, 0.99),
           (4, 'lobby',       35.0, 0.20),
           (5, 'lab',         30.5, 0.80),
           (6, 'lab',         29.0, 0.60)",
    )?;

    println!("== Raw readings ==");
    println!("{}", db.query("select * from readings order by sensor")?);

    // The *true* set of readings is a random subset: a reading exists iff
    // it was genuine.
    db.run(
        "create table genuine as
         select * from (pick tuples from readings
                        independently with probability reliability) r",
    )?;

    // Alarm: P(some genuine reading in the room exceeds 38°C).
    println!("== Overheating alarms: P(any genuine reading > 38) per room ==");
    let alarms = db.query(
        "select room, conf() as p_alarm
         from genuine
         where temp > 38.0
         group by room
         order by p_alarm desc",
    )?;
    println!("{alarms}");

    // Expected number of genuine readings per room (network health).
    println!("== Expected genuine readings per room ==");
    let health = db.query(
        "select room, ecount() as expected_readings
         from genuine group by room order by room",
    )?;
    println!("{health}");

    // Expected heat load: esum of temperatures per room.
    println!("== Expected sum of genuine temperatures per room ==");
    let load = db.query(
        "select room, esum(temp) as expected_heat
         from genuine group by room order by room",
    )?;
    println!("{load}");

    // Calibration hypotheses: sensor 5 is drifting by one of three offsets,
    // mutually exclusive — a repair-key space joined with the readings.
    db.run("create table drift (sensor bigint, offset_c double precision, w double precision)")?;
    db.run("insert into drift values (5, 0.0, 1), (5, 1.5, 2), (5, 3.0, 1)")?;
    println!("== Corrected lab estimate under drift hypotheses ==");
    let corrected = db.query(
        "select esum(r.temp - d.offset_c) as expected_corrected_sum
         from genuine r, (repair key sensor in drift weight by w) d
         where r.sensor = d.sensor",
    )?;
    println!("{corrected}");

    // Which sensor most likely produced the lab's hottest genuine reading?
    println!("== Most likely hottest lab sensor ==");
    db.run(
        "create table lab_max as
         select r.sensor, tconf() as p
         from genuine r
         where r.room = 'lab'",
    )?;
    let hottest = db.query("select argmax(sensor, p) as sensor from lab_max")?;
    println!("{hottest}");

    Ok(())
}
