//! §3 "Team management" under a budget cut: "the manager intends to lay
//! off some players with high salaries but at the same time without
//! compromising the competitiveness of the team significantly. For
//! instance, we may want to keep the availability of skill shooting at
//! least 90% and of passing at least 95%. The manager needs to know
//! whether this is possible and who can be laid off."
//!
//! Run with: `cargo run --example risk_management`

use maybms::MayBms;

const SHOOTING_MIN: f64 = 0.90;
const PASSING_MIN: f64 = 0.95;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut db = MayBms::new();

    db.run("create table roster (player text, salary bigint, avail double precision)")?;
    db.run(
        "insert into roster values
           ('Bryant', 25, 0.95), ('Gasol', 18, 0.90), ('Fisher', 5, 0.85),
           ('Odom', 9, 0.80), ('Artest', 7, 0.90)",
    )?;
    db.run("create table skills (player text, skill text)")?;
    db.run(
        "insert into skills values
           ('Bryant', 'shooting'), ('Bryant', 'passing'),
           ('Gasol',  'passing'),  ('Gasol',  'shooting'),
           ('Fisher', 'passing'),  ('Odom',   'shooting'),
           ('Artest', 'shooting')",
    )?;

    println!("== Roster ==");
    println!("{}", db.query("select * from roster order by salary desc")?);

    // Baseline skill availability with the full roster.
    let baseline = skill_availability(&mut db, "")?;
    println!("== Baseline availability ==\n{baseline}");

    // What-if: lay off each player in turn, check the two constraints.
    println!(
        "== Lay-off analysis (need shooting ≥ {SHOOTING_MIN}, passing ≥ {PASSING_MIN}) ==\n"
    );
    let players: Vec<(String, i64)> = db
        .query("select player, salary from roster order by salary desc")?
        .tuples()
        .iter()
        .map(|t| {
            (
                t.value(0).as_str().unwrap().to_string(),
                t.value(1).as_int().unwrap(),
            )
        })
        .collect();

    let mut feasible = Vec::new();
    for (player, salary) in &players {
        let table = skill_availability(&mut db, &format!("where player <> '{player}'"))?;
        let get = |skill: &str| -> f64 {
            table
                .tuples()
                .iter()
                .find(|t| t.value(0).as_str() == Some(skill))
                .map(|t| t.value(1).as_f64().unwrap())
                .unwrap_or(0.0)
        };
        let shooting = get("shooting");
        let passing = get("passing");
        let ok = shooting >= SHOOTING_MIN && passing >= PASSING_MIN;
        println!(
            "lay off {player:<7} (saves {salary:>2}M): shooting {shooting:.4}, \
             passing {passing:.4} → {}",
            if ok { "FEASIBLE" } else { "violates constraints" }
        );
        if ok {
            feasible.push((player.clone(), *salary));
        }
    }

    println!();
    match feasible.iter().max_by_key(|(_, s)| *s) {
        Some((player, salary)) => println!(
            "Recommendation: lay off {player} — saves {salary}M while keeping \
             shooting ≥ {SHOOTING_MIN} and passing ≥ {PASSING_MIN}."
        ),
        None => println!("No single lay-off satisfies the competitiveness constraints."),
    }

    Ok(())
}

/// P(someone with each skill is available), over the random squad drawn by
/// availability — with an optional roster filter for the what-if.
fn skill_availability(
    db: &mut MayBms,
    roster_filter: &str,
) -> Result<maybms_engine::Relation, Box<dyn std::error::Error>> {
    let sql = format!(
        "select s.skill, conf() as p from
           (pick tuples from
              (select player, avail from roster {roster_filter})
            independently with probability avail) a,
           skills s
         where a.player = s.player
         group by s.skill
         order by s.skill"
    );
    Ok(db.query(&sql)?)
}
