//! The paper's §3 demonstration: NBA decision support by what-if analysis
//! of team dynamics — fitness prediction as random walks on stochastic
//! matrices (Figure 1), skill management, and performance prediction.
//!
//! The original demo scraped www.nba.com and served a PHP front-end; here
//! a seeded generator stands in for the scrape and the console for the
//! browser (see DESIGN.md §1 for the substitution argument).
//!
//! Run with: `cargo run --example nba_whatif`

use maybms::MayBms;
use maybms_engine::{rel, DataType, Value};

const STATES: [&str; 3] = ["F", "SE", "SL"]; // fit / seriously / slightly injured

/// Per-player fitness transition matrices (rows/cols ordered F, SE, SL).
/// Bryant's matrix is the one printed in Figure 1.
fn rosters() -> Vec<(&'static str, [[f64; 3]; 3], &'static str)> {
    vec![
        ("Bryant", [[0.8, 0.05, 0.15], [0.1, 0.6, 0.3], [0.8, 0.0, 0.2]], "F"),
        ("Gasol", [[0.7, 0.1, 0.2], [0.2, 0.5, 0.3], [0.6, 0.1, 0.3]], "SL"),
        ("Fisher", [[0.9, 0.02, 0.08], [0.15, 0.55, 0.3], [0.7, 0.05, 0.25]], "F"),
        ("Odom", [[0.65, 0.15, 0.2], [0.1, 0.7, 0.2], [0.55, 0.15, 0.3]], "SE"),
    ]
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut db = MayBms::new();

    // FT (FitnessTransition) — the relational encoding of the stochastic
    // matrices, exactly as in Figure 1.
    let mut ft_rows = Vec::new();
    let mut state_rows = Vec::new();
    for (player, m, init) in rosters() {
        for (i, from) in STATES.iter().enumerate() {
            for (j, to) in STATES.iter().enumerate() {
                if m[i][j] > 0.0 {
                    ft_rows.push(vec![
                        player.into(),
                        (*from).into(),
                        (*to).into(),
                        Value::Float(m[i][j]),
                    ]);
                }
            }
        }
        state_rows.push(vec![player.into(), init.into()]);
    }
    db.register(
        "ft",
        rel(
            &[
                ("player", DataType::Text),
                ("init", DataType::Text),
                ("final", DataType::Text),
                ("p", DataType::Float),
            ],
            ft_rows,
        ),
    )?;
    db.register(
        "states",
        rel(&[("player", DataType::Text), ("state", DataType::Text)], state_rows),
    )?;

    println!("=== Fitness prediction (Figure 1): 3-day random walk ===\n");
    // The 1-step walk, shown as a U-relation (Figure 1's R2).
    let r2 = db.query_uncertain(
        "select * from (repair key Player, Init in FT weight by p) R where R.player = 'Bryant'",
    )?;
    println!("U-relation R2 (1-step random walk on FT, Bryant):");
    println!("{}", r2.to_table_string(db.world_table())?);

    // The two statements from the paper, verbatim.
    db.run(
        "create table FT2 as
         select R1.Player, R1.Init, R2.Final, conf() as p from
         (repair key Player, Init in FT weight by p) R1,
         (repair key Player, Init in FT weight by p) R2, States S
         where R1.Player = S.Player and R1.Init = S.State
         and R1.Final = R2.Init and R1.Player = R2.Player
         group by R1.Player, R1.Init, R2.Final;",
    )?;
    let walk3 = db.query(
        "select R1.Player, R2.Final as State, conf() as p from
         (repair key Player, Init in FT2 weight by p) R1,
         (repair key Player, Init in FT weight by p) R2
         where R1.Final = R2.Init and R1.Player = R2.Player
         group by R1.player, R2.Final
         order by R1.player, p desc;",
    )?;
    println!("Three-day fitness forecast (P of each state after 3 days):");
    println!("{walk3}");

    // Probability each player is *fit* for the must-win match.
    let fit = db.query(
        "select R1.Player, conf() as p_fit from
         (repair key Player, Init in FT2 weight by p) R1,
         (repair key Player, Init in FT weight by p) R2
         where R1.Final = R2.Init and R1.Player = R2.Player and R2.Final = 'F'
         group by R1.Player
         order by p_fit desc;",
    )?;
    println!("P(fit in 3 days) — who can the coach count on:");
    println!("{fit}");

    println!("=== Team management: skill availability ===\n");
    db.run("create table skills (player text, skill text)")?;
    db.run(
        "insert into skills values
           ('Bryant', 'three_point'), ('Bryant', 'free_shooting'),
           ('Gasol',  'defense'),     ('Gasol',  'free_shooting'),
           ('Fisher', 'three_point'), ('Odom',   'defense')",
    )?;
    // The playing squad is the random subset of players who end up fit.
    db.run(
        "create table fit3 as
         select R1.Player, conf() as p_fit from
         (repair key Player, Init in FT2 weight by p) R1,
         (repair key Player, Init in FT weight by p) R2
         where R1.Final = R2.Init and R1.Player = R2.Player and R2.Final = 'F'
         group by R1.Player;",
    )?;
    let skills = db.query(
        "select s.skill, conf() as p_available from
         (pick tuples from fit3 independently with probability p_fit) a,
         skills s
         where a.player = s.player
         group by s.skill
         order by p_available desc;",
    )?;
    println!("P(someone with each skill is playing), given fitness forecasts:");
    println!("{skills}");

    println!("=== Performance prediction: expected weighted points ===\n");
    db.run("create table recent (player text, game bigint, pts bigint, w double precision)")?;
    db.run(
        "insert into recent values
           ('Bryant', 1, 42, 0.5), ('Bryant', 2, 35, 0.3), ('Bryant', 3, 28, 0.2),
           ('Gasol',  1, 20, 0.5), ('Gasol',  2, 14, 0.3), ('Gasol',  3, 22, 0.2),
           ('Fisher', 1, 10, 0.5), ('Fisher', 2,  8, 0.3), ('Fisher', 3, 12, 0.2)",
    )?;
    let predicted = db.query(
        "select R.player, esum(R.pts) as predicted_pts
         from (repair key player in recent weight by w) R
         group by R.player
         order by predicted_pts desc;",
    )?;
    println!("Predicted points (recency-weighted expectation):");
    println!("{predicted}");

    Ok(())
}
