//! Monte Carlo what-if analysis: §3 describes "simulating random walks on
//! stochastic matrices" — this example shows the sampling counterpart to
//! exact confidence computation. `MayBms::sample_instance` draws one
//! possible world of the whole database; repeated draws estimate any
//! statistic, including ones outside the query language (here: the
//! probability that the *majority* of the squad is fit, a non-monotone
//! property that `conf()` alone cannot phrase).
//!
//! Run with: `cargo run --example monte_carlo`

use maybms::MayBms;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut db = MayBms::new();
    db.run("create table roster (player text, fit double precision)")?;
    db.run(
        "insert into roster values
           ('Bryant', 0.9), ('Gasol', 0.7), ('Fisher', 0.8),
           ('Odom', 0.6), ('Artest', 0.75)",
    )?;
    // The hypothesis space: which players show up fit.
    db.run(
        "create table squad as
         select * from (pick tuples from roster independently with probability fit) s",
    )?;

    // Exact, via the query language: expected number of fit players.
    let expected = db.query("select ecount() as expected_fit from squad")?;
    println!("Expected fit players (exact, by linearity):");
    println!("{expected}");

    // Monte Carlo, via world sampling: P(at least 3 of 5 fit).
    let runs: u64 = 20_000;
    let mut majority = 0u32;
    let mut total_fit = 0usize;
    for seed in 0..runs {
        let instance = db.sample_instance(seed);
        let squad = instance
            .iter()
            .find(|(name, _)| name == "squad")
            .map(|(_, rel)| rel)
            .expect("squad table exists");
        total_fit += squad.len();
        if squad.len() >= 3 {
            majority += 1;
        }
    }
    let p_majority = f64::from(majority) / runs as f64;
    let mean_fit = total_fit as f64 / runs as f64;
    println!("Monte Carlo over {runs} sampled worlds:");
    println!("  mean fit players  = {mean_fit:.3}   (exact: 3.750)");
    println!("  P(majority fit)   = {p_majority:.3}");

    // Cross-check the sampler against an exact query on one player.
    let exact_bryant = db.query(
        "select conf() as p from squad where player = 'Bryant'",
    )?;
    let p_exact = exact_bryant.tuples()[0].value(0).as_f64().unwrap();
    let mut bryant_fit = 0u32;
    for seed in 0..runs {
        let instance = db.sample_instance(seed);
        let squad = instance
            .iter()
            .find(|(name, _)| name == "squad")
            .map(|(_, rel)| rel)
            .unwrap();
        if squad
            .tuples()
            .iter()
            .any(|t| t.value(0).as_str() == Some("Bryant"))
        {
            bryant_fit += 1;
        }
    }
    println!(
        "  P(Bryant fit): sampled {:.3} vs exact {:.3}",
        f64::from(bryant_fit) / runs as f64,
        p_exact
    );
    Ok(())
}
