//! Quickstart: create uncertain data with `repair key` and `pick tuples`,
//! query it with `conf`, `tconf`, `possible`, `esum`/`ecount`.
//!
//! Run with: `cargo run --example quickstart`

use maybms::MayBms;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut db = MayBms::new();

    // Ordinary (t-certain) tables are plain SQL.
    db.run("create table census (name text, city text, quality double precision)")?;
    db.run(
        "insert into census values
           ('Smith', 'Oxford',  2.0),
           ('Smith', 'Ithaca',  1.0),
           ('Brown', 'Ithaca',  1.0),
           ('Brown', 'Geneva',  3.0)",
    )?;

    println!("== The dirty census table (certain) ==");
    println!("{}", db.query("select * from census")?);

    // `repair key` turns key violations into a space of possible worlds:
    // each person lives in exactly one city per world, weighted by record
    // quality (§2.2).
    println!("== Marginal confidence of each repaired record ==");
    let conf = db.query(
        "select R.name, R.city, conf() as p
         from (repair key name in census weight by quality) R
         group by R.name, R.city
         order by R.name, p desc",
    )?;
    println!("{conf}");

    // `possible` lists tuples that occur in at least one world (§2.2).
    println!("== Possible cities ==");
    let possible = db.query(
        "select possible R.city from (repair key name in census weight by quality) R",
    )?;
    println!("{possible}");

    // `pick tuples` represents every subset of a table — here: which
    // sensors survive the night, independently (§2.2).
    db.run("create table sensors (id bigint, works double precision)")?;
    db.run("insert into sensors values (1, 0.9), (2, 0.5), (3, 0.1)")?;
    println!("== Expected number of live sensors (ecount by linearity) ==");
    let live = db.query(
        "select ecount() as expected_live
         from (pick tuples from sensors independently with probability works) s",
    )?;
    println!("{live}");

    // tconf(): the marginal probability of each representation tuple.
    println!("== Per-tuple marginals of a self-join ==");
    let marginals = db.query(
        "select a.id, tconf() as p
         from (pick tuples from sensors independently with probability works) a,
              (pick tuples from sensors independently with probability works) b
         where a.id = b.id",
    )?;
    println!("{marginals}");

    // Everything is still SQL: updates are representation-level edits (§2.3).
    db.run("update census set quality = 5.0 where city = 'Ithaca'")?;
    println!("== After UPDATE, the repair weights shift ==");
    let conf = db.query(
        "select R.name, R.city, conf() as p
         from (repair key name in census weight by quality) R
         group by R.name, R.city
         order by R.name, p desc",
    )?;
    println!("{conf}");

    Ok(())
}
