//! An interactive MayBMS shell (psql-style) over the in-memory database.
//!
//! ```text
//! $ cargo run --bin maybms-shell
//! maybms> create table coin (face text, w double precision);
//! CREATE TABLE
//! maybms> insert into coin values ('heads', 1.0), ('tails', 1.0);
//! INSERT 2
//! maybms> select face, conf() as p from (repair key face in coin weight by w) c group by face;
//! ...
//! maybms> \d
//! maybms> \q
//! ```
//!
//! Meta commands: `\q` quit, `\d [table]` list/describe tables, `\w` world
//! table summary, `\threads [N]` show/resize the execution pool,
//! `\timing` toggle timing (on by default, so parallel speedups are
//! visible per statement), `\i FILE` run a SQL script, `\help`.
//!
//! `EXPLAIN <query>;` prints the morsel-driven executor's pipeline
//! decomposition (fused stages and breakers) instead of the result.
//!
//! The execution pool honours `MAYBMS_THREADS` at startup (unset or `0`
//! → all cores) and can be resized at runtime with `\threads N`.

use std::io::{BufRead, Write};
use std::time::Instant;

use maybms::{MayBms, QueryOutput, StatementResult};

fn main() {
    let mut db = MayBms::new();
    let mut timing = true;
    let stdin = std::io::stdin();
    let mut buffer = String::new();
    print_banner();
    prompt(&buffer);
    for line in stdin.lock().lines() {
        let line = match line {
            Ok(l) => l,
            Err(_) => break,
        };
        let trimmed = line.trim();
        if buffer.trim().is_empty() && trimmed.starts_with('\\') {
            buffer.clear();
            if !handle_meta(trimmed, &mut db, &mut timing) {
                return;
            }
            prompt(&buffer);
            continue;
        }
        buffer.push_str(&line);
        buffer.push('\n');
        while let Some(stmt) = take_statement(&mut buffer) {
            execute(&stmt, &mut db, timing);
        }
        prompt(&buffer);
    }
}

fn print_banner() {
    println!("MayBMS shell — probabilistic database management system (SIGMOD 2009 reproduction)");
    println!(
        "Execution pool: {} thread(s) (MAYBMS_THREADS or \\threads N to change)",
        maybms_par::current_threads()
    );
    println!("Type SQL terminated by `;`, or \\help for meta commands.\n");
}

fn prompt(buffer: &str) {
    if buffer.trim().is_empty() {
        print!("maybms> ");
    } else {
        print!("....... ");
    }
    let _ = std::io::stdout().flush();
}

/// Pop the first complete `;`-terminated statement off the buffer,
/// respecting string literals (a `;` inside `'…'` does not terminate).
fn take_statement(buffer: &mut String) -> Option<String> {
    let mut in_string = false;
    let chars: Vec<char> = buffer.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        match chars[i] {
            '\'' => {
                // `''` is an escaped quote inside a string.
                if in_string && chars.get(i + 1) == Some(&'\'') {
                    i += 1;
                } else {
                    in_string = !in_string;
                }
            }
            ';' if !in_string => {
                let stmt: String = chars[..=i].iter().collect();
                let rest: String = chars[i + 1..].iter().collect();
                *buffer = rest;
                let stmt = stmt.trim().to_string();
                if stmt == ";" {
                    return take_statement(buffer);
                }
                return Some(stmt);
            }
            _ => {}
        }
        i += 1;
    }
    None
}

fn execute(sql: &str, db: &mut MayBms, timing: bool) {
    let t0 = Instant::now();
    match db.run(sql) {
        Ok(StatementResult::Ok { message }) => println!("{message}"),
        Ok(StatementResult::Query(QueryOutput::Certain(rel))) => {
            print!("{}", rel.to_table_string());
        }
        Ok(StatementResult::Query(QueryOutput::Uncertain(u))) => {
            // Render as Figure 1 renders U-relations: data columns plus
            // condition and P.
            match u.to_table_string(db.world_table()) {
                Ok(s) => print!("{s}"),
                Err(e) => println!("error rendering result: {e}"),
            }
        }
        Err(e) => println!("error: {e}"),
    }
    if timing {
        println!("Time: {:.3} ms", t0.elapsed().as_secs_f64() * 1e3);
    }
}

/// Returns `false` when the shell should exit.
fn handle_meta(cmd: &str, db: &mut MayBms, timing: &mut bool) -> bool {
    let mut parts = cmd.splitn(2, char::is_whitespace);
    let head = parts.next().unwrap_or("");
    let arg = parts.next().map(str::trim).filter(|s| !s.is_empty());
    match head {
        "\\q" | "\\quit" => return false,
        "\\help" | "\\?" => {
            println!("EXPLAIN <query>;  print the executed pipeline decomposition");
            println!("\\d [table]   list tables / describe one");
            println!("\\w           world-table summary (variables, worlds)");
            println!("\\threads [N] show or set the execution pool size");
            println!("\\timing      toggle per-statement timing (default on)");
            println!("\\i FILE      execute a SQL script");
            println!("\\q           quit");
        }
        "\\d" => match arg {
            None => {
                let names = db.table_names();
                if names.is_empty() {
                    println!("(no tables)");
                }
                for n in names {
                    let t = db.table(n).expect("listed table exists");
                    println!(
                        "{n}  — {} rows, {}",
                        t.len(),
                        if t.is_t_certain() { "t-certain" } else { "uncertain" }
                    );
                }
            }
            Some(name) => match db.table(name) {
                Ok(t) => {
                    println!(
                        "{name} ({} rows, {})",
                        t.len(),
                        if t.is_t_certain() { "t-certain" } else { "uncertain" }
                    );
                    for f in t.schema().fields() {
                        println!("  {}  {}", f.name, f.dtype);
                    }
                }
                Err(e) => println!("error: {e}"),
            },
        },
        "\\w" => {
            let wt = db.world_table();
            match wt.world_count() {
                Some(n) => println!("{} variables; {} possible worlds", wt.num_vars(), n),
                None => println!(
                    "{} variables; more than 2^128 possible worlds",
                    wt.num_vars()
                ),
            }
        }
        "\\timing" => {
            *timing = !*timing;
            println!("Timing is {}.", if *timing { "on" } else { "off" });
        }
        "\\threads" => match arg {
            None => println!("Execution pool: {} thread(s)", maybms_par::current_threads()),
            Some(n) => match n.parse::<usize>() {
                Ok(n) if n > 0 => {
                    let pool = maybms_par::set_threads(n);
                    println!("Execution pool resized to {} thread(s)", pool.threads());
                }
                _ => println!("usage: \\threads N   (N ≥ 1)"),
            },
        },
        "\\i" => match arg {
            None => println!("usage: \\i FILE"),
            Some(path) => match std::fs::read_to_string(path) {
                Ok(script) => match db.run_script(&script) {
                    Ok(results) => println!("{} statements executed", results.len()),
                    Err(e) => println!("error: {e}"),
                },
                Err(e) => println!("error reading {path}: {e}"),
            },
        },
        other => println!("unknown meta command `{other}` — try \\help"),
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_statement_splits_on_semicolons() {
        let mut buf = "select 1; select 2;".to_string();
        assert_eq!(take_statement(&mut buf).as_deref(), Some("select 1;"));
        assert_eq!(take_statement(&mut buf).as_deref(), Some("select 2;"));
        assert_eq!(take_statement(&mut buf), None);
    }

    #[test]
    fn take_statement_ignores_semicolons_in_strings() {
        let mut buf = "insert into t values ('a;b');".to_string();
        let stmt = take_statement(&mut buf).unwrap();
        assert!(stmt.contains("'a;b'"));
        assert!(buf.is_empty());
    }

    #[test]
    fn take_statement_handles_escaped_quotes() {
        let mut buf = "insert into t values ('it''s; fine');".to_string();
        let stmt = take_statement(&mut buf).unwrap();
        assert!(stmt.contains("it''s; fine"));
    }

    #[test]
    fn take_statement_waits_for_terminator() {
        let mut buf = "select 1".to_string();
        assert_eq!(take_statement(&mut buf), None);
        assert_eq!(buf, "select 1");
    }

    #[test]
    fn take_statement_skips_empty_statements() {
        let mut buf = "; ;select 1;".to_string();
        assert_eq!(take_statement(&mut buf).as_deref(), Some("select 1;"));
    }

    #[test]
    fn meta_commands_do_not_quit_except_q() {
        let mut db = MayBms::new();
        let mut timing = false;
        assert!(handle_meta("\\d", &mut db, &mut timing));
        assert!(handle_meta("\\w", &mut db, &mut timing));
        assert!(handle_meta("\\timing", &mut db, &mut timing));
        assert!(timing);
        assert!(handle_meta("\\nonsense", &mut db, &mut timing));
        assert!(!handle_meta("\\q", &mut db, &mut timing));
    }

    #[test]
    fn threads_meta_command_resizes_pool() {
        let mut db = MayBms::new();
        let mut timing = false;
        let before = maybms_par::current_threads();
        assert!(handle_meta("\\threads", &mut db, &mut timing));
        assert!(handle_meta("\\threads 2", &mut db, &mut timing));
        assert_eq!(maybms_par::current_threads(), 2);
        // Invalid arguments are reported, not applied.
        assert!(handle_meta("\\threads 0", &mut db, &mut timing));
        assert!(handle_meta("\\threads potato", &mut db, &mut timing));
        assert_eq!(maybms_par::current_threads(), 2);
        maybms_par::set_threads(before);
    }

    #[test]
    fn execute_reports_errors_without_panicking() {
        let mut db = MayBms::new();
        execute("select * from missing;", &mut db, false);
        execute("create table t (a bigint);", &mut db, true);
        execute("select a from t;", &mut db, false);
    }
}
