//! An interactive MayBMS shell (psql-style).
//!
//! By default the database is in-memory and vanishes on exit. With
//! `--data-dir DIR` the catalog is durable: every DDL/DML statement is
//! WAL-logged before it applies, `\checkpoint` folds the log into an
//! atomic snapshot, and restarting on the same directory recovers the
//! catalog (replaying the WAL tail, truncating a torn final record if
//! the previous process died mid-append).
//!
//! ```text
//! $ cargo run --bin maybms-shell -- --data-dir ./nba-data
//! maybms> create table coin (face text, w double precision);
//! CREATE TABLE
//! maybms> insert into coin values ('heads', 1.0), ('tails', 1.0);
//! INSERT 2
//! maybms> select face, conf() as p from (repair key face in coin weight by w) c group by face;
//! ...
//! maybms> \d
//! maybms> \q
//! ```
//!
//! Meta commands: `\q` quit, `\d [table]` list/describe tables, `\w` world
//! table summary, `\threads [N]` show/resize the execution pool,
//! `\timing [on|off]` toggle or set timing (on by default, so parallel
//! speedups are visible per statement; the line also reports rows
//! returned and pipelines executed), `\metrics` dump the process-wide
//! metrics registry in Prometheus text format, `\latency` show the
//! sliding-window p50/p95/p99 latency table per statement kind,
//! `\trace [on|off|dump [N]]` control the tracing span subsystem and
//! print recent statement span trees, `\slowlog [N|off]` log
//! statements slower than N ms to stderr, `\i FILE` run a SQL script,
//! `\checkpoint` snapshot the catalog and truncate the WAL,
//! `\timeout [N|off]` set a per-statement deadline in ms, `\memlimit
//! [N|off]` cap tracked working memory per statement in MiB, `\cancel
//! [N]` cancel the *next* statement after N ms (watchdog thread),
//! `\reopen` recover a poisoned durable store in-process, `\help`.
//!
//! With `--metrics-addr ADDR` (or `MAYBMS_METRICS_ADDR`) the shell
//! serves the metrics registry over HTTP: `GET /metrics` returns the
//! Prometheus text format, `GET /healthz` returns `ok`. Tracing can be
//! pre-enabled with `MAYBMS_TRACE=1`; `MAYBMS_TRACE_FILE=trace.jsonl`
//! additionally streams finished spans as Chrome `trace_event` JSON
//! lines (load the file in `about:tracing` / Perfetto).
//!
//! `EXPLAIN <query>;` prints the morsel-driven executor's pipeline
//! decomposition (fused stages and breakers) instead of the result;
//! `EXPLAIN ANALYZE <query>;` adds measured per-stage row counts,
//! morsel counts, wall times, and confidence-estimator effort.
//!
//! The execution pool honours `MAYBMS_THREADS` at startup (unset or `0`
//! → all cores) and can be resized at runtime with `\threads N`.

use std::io::{BufRead, Write};
use std::time::Instant;

use maybms::{MayBms, QueryOutput, StatementResult};

fn main() {
    maybms_obs::trace::init_from_env();
    let (mut db, config) = match open_database(std::env::args().skip(1)) {
        Ok(pair) => pair,
        Err(message) => {
            eprintln!("error: {message}");
            std::process::exit(1);
        }
    };
    let metrics_addr = config.metrics_addr.or_else(|| {
        std::env::var("MAYBMS_METRICS_ADDR").ok().filter(|s| !s.is_empty())
    });
    let bound = metrics_addr.map(|addr| match maybms_obs::http::serve(&addr) {
        Ok(local) => local,
        Err(e) => {
            eprintln!("error: cannot serve metrics on {addr}: {e}");
            std::process::exit(1);
        }
    });
    let mut timing = true;
    let stdin = std::io::stdin();
    let mut buffer = String::new();
    print_banner(&db, bound);
    prompt(&buffer);
    for line in stdin.lock().lines() {
        let line = match line {
            Ok(l) => l,
            Err(_) => break,
        };
        let trimmed = line.trim();
        if buffer.trim().is_empty() && trimmed.starts_with('\\') {
            buffer.clear();
            if !handle_meta(trimmed, &mut db, &mut timing) {
                return;
            }
            prompt(&buffer);
            continue;
        }
        buffer.push_str(&line);
        buffer.push('\n');
        while let Some(stmt) = take_statement(&mut buffer) {
            execute(&stmt, &mut db, timing);
        }
        prompt(&buffer);
    }
}

/// Shell options beyond the database location.
#[derive(Debug)]
struct ShellConfig {
    /// `--metrics-addr ADDR`: serve `GET /metrics` + `/healthz` here.
    metrics_addr: Option<String>,
}

/// Parse command-line arguments and open the database. In-memory unless
/// `--data-dir DIR` is given; a missing directory is created, a corrupt
/// one is reported with the failing file and byte offset — never a panic.
fn open_database(
    args: impl Iterator<Item = String>,
) -> Result<(MayBms, ShellConfig), String> {
    let mut data_dir: Option<String> = None;
    let mut metrics_addr: Option<String> = None;
    let mut args = args.peekable();
    while let Some(arg) = args.next() {
        if arg == "--data-dir" {
            match args.next() {
                Some(dir) => data_dir = Some(dir),
                None => return Err("--data-dir requires a directory argument".into()),
            }
        } else if let Some(dir) = arg.strip_prefix("--data-dir=") {
            data_dir = Some(dir.to_string());
        } else if arg == "--metrics-addr" {
            match args.next() {
                Some(addr) => metrics_addr = Some(addr),
                None => {
                    return Err("--metrics-addr requires an ADDR argument (e.g. 127.0.0.1:9187)".into())
                }
            }
        } else if let Some(addr) = arg.strip_prefix("--metrics-addr=") {
            metrics_addr = Some(addr.to_string());
        } else {
            return Err(format!(
                "unknown argument `{arg}` (usage: maybms-shell [--data-dir DIR] [--metrics-addr ADDR])"
            ));
        }
    }
    let config = ShellConfig { metrics_addr };
    match data_dir {
        None => Ok((MayBms::new(), config)),
        Some(dir) => MayBms::open(&dir)
            .map(|db| (db, config))
            .map_err(|e| format!("cannot open data directory {dir}: {e}")),
    }
}

fn print_banner(db: &MayBms, metrics: Option<std::net::SocketAddr>) {
    println!("MayBMS shell — probabilistic database management system (SIGMOD 2009 reproduction)");
    println!(
        "Execution pool: {} thread(s) (MAYBMS_THREADS or \\threads N to change)",
        maybms_par::current_threads()
    );
    match db.durability_status() {
        Some(status) => {
            println!(
                "Durability: data dir {} — {} WAL byte(s) since last checkpoint{}",
                status.location,
                status.wal_bytes,
                if status.has_snapshot { "" } else { " (no snapshot yet)" }
            );
            if let Some(r) = db.recovery_report() {
                println!(
                    "Recovered {} table(s), replayed {} WAL record(s){}",
                    r.tables,
                    r.replayed,
                    if r.truncated_tail { ", truncated a torn WAL tail" } else { "" }
                );
            }
        }
        None => println!("Durability: in-memory only (start with --data-dir DIR to persist)"),
    }
    let timeout = maybms_gov::statement_timeout_ms();
    let budget = maybms_gov::mem_budget_bytes();
    if timeout.is_some() || budget.is_some() {
        println!(
            "Governor: timeout {}, memory budget {} (\\timeout / \\memlimit to change)",
            timeout.map(|ms| format!("{ms} ms")).unwrap_or_else(|| "off".into()),
            budget.map(|b| format!("{} MiB", b >> 20)).unwrap_or_else(|| "off".into()),
        );
    }
    if let Some(addr) = metrics {
        println!("Metrics: serving http://{addr}/metrics (and /healthz)");
    }
    if maybms_obs::trace::enabled() {
        println!("Tracing: on (\\trace dump shows recent statement span trees)");
    }
    println!("Type SQL terminated by `;`, or \\help for meta commands.\n");
}

fn prompt(buffer: &str) {
    if buffer.trim().is_empty() {
        print!("maybms> ");
    } else {
        print!("....... ");
    }
    let _ = std::io::stdout().flush();
}

/// Pop the first complete `;`-terminated statement off the buffer,
/// respecting string literals (a `;` inside `'…'` does not terminate)
/// and `--` line comments (whose content — quotes included — is inert,
/// so piping a commented .sql file through stdin behaves like `\i`).
fn take_statement(buffer: &mut String) -> Option<String> {
    let mut in_string = false;
    let chars: Vec<char> = buffer.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        match chars[i] {
            '-' if !in_string && chars.get(i + 1) == Some(&'-') => {
                while i < chars.len() && chars[i] != '\n' {
                    i += 1;
                }
                continue;
            }
            '\'' => {
                // `''` is an escaped quote inside a string.
                if in_string && chars.get(i + 1) == Some(&'\'') {
                    i += 1;
                } else {
                    in_string = !in_string;
                }
            }
            ';' if !in_string => {
                let stmt: String = chars[..=i].iter().collect();
                let rest: String = chars[i + 1..].iter().collect();
                *buffer = rest;
                let stmt = stmt.trim().to_string();
                if stmt == ";" {
                    return take_statement(buffer);
                }
                return Some(stmt);
            }
            _ => {}
        }
        i += 1;
    }
    None
}

fn execute(sql: &str, db: &mut MayBms, timing: bool) {
    let t0 = Instant::now();
    match db.run(sql) {
        Ok(StatementResult::Ok { message }) => println!("{message}"),
        Ok(StatementResult::Query(QueryOutput::Certain(rel))) => {
            print!("{}", rel.to_table_string());
        }
        Ok(StatementResult::Query(QueryOutput::Uncertain(u))) => {
            // Render as Figure 1 renders U-relations: data columns plus
            // condition and P.
            match u.to_table_string(db.world_table()) {
                Ok(s) => print!("{s}"),
                Err(e) => println!("error rendering result: {e}"),
            }
        }
        Err(e) => println!("error: {e}"),
    }
    if timing {
        let stats = db
            .last_stats()
            .map(|s| {
                format!(
                    " ({} row(s), {} pipeline(s))",
                    s.rows_returned.get(),
                    s.pipeline_count()
                )
            })
            .unwrap_or_default();
        println!("Time: {:.3} ms{stats}", t0.elapsed().as_secs_f64() * 1e3);
    }
}

/// Returns `false` when the shell should exit.
fn handle_meta(cmd: &str, db: &mut MayBms, timing: &mut bool) -> bool {
    let mut parts = cmd.splitn(2, char::is_whitespace);
    let head = parts.next().unwrap_or("");
    let arg = parts.next().map(str::trim).filter(|s| !s.is_empty());
    match head {
        "\\q" | "\\quit" => return false,
        "\\help" | "\\?" => {
            println!("EXPLAIN <query>;          print the executed pipeline decomposition");
            println!("EXPLAIN ANALYZE <query>;  …with measured per-stage rows, morsels, time");
            println!("\\d [table]     list tables / describe one");
            println!("\\w             world-table summary (variables, worlds)");
            println!("\\threads [N]   show or set the execution pool size");
            println!("\\timing [on|off] toggle or set per-statement timing (default on)");
            println!("\\metrics       dump the engine metrics registry (Prometheus text format)");
            println!("\\latency       sliding-window p50/p95/p99 statement latency per kind");
            println!("\\trace [on|off] enable/disable tracing spans (or show the state)");
            println!("\\trace dump [N] print the last N statement span trees (default 5)");
            println!("\\slowlog [N|off] log statements slower than N ms to stderr (0 = all)");
            println!("\\i FILE        execute a SQL script");
            println!("\\checkpoint    snapshot the catalog atomically and truncate the WAL");
            println!("\\timeout [N|off] per-statement deadline in ms (also MAYBMS_STATEMENT_TIMEOUT_MS)");
            println!("\\memlimit [N|off] per-statement memory budget in MiB (also MAYBMS_MEM_BUDGET_MB)");
            println!("\\cancel [N]    cancel the NEXT statement after N ms (default 0: immediately)");
            println!("\\reopen        recover a poisoned durable store in-process (re-runs recovery)");
            println!("\\q             quit");
        }
        "\\d" => match arg {
            None => {
                let names = db.table_names();
                if names.is_empty() {
                    println!("(no tables)");
                }
                for n in names {
                    let t = db.table(n).expect("listed table exists");
                    println!(
                        "{n}  — {} rows, {}",
                        t.len(),
                        if t.is_t_certain() { "t-certain" } else { "uncertain" }
                    );
                }
            }
            Some(name) => match db.table(name) {
                Ok(t) => {
                    println!(
                        "{name} ({} rows, {})",
                        t.len(),
                        if t.is_t_certain() { "t-certain" } else { "uncertain" }
                    );
                    for f in t.schema().fields() {
                        println!("  {}  {}", f.name, f.dtype);
                    }
                }
                Err(e) => println!("error: {e}"),
            },
        },
        "\\w" => {
            let wt = db.world_table();
            match wt.world_count() {
                Some(n) => println!("{} variables; {} possible worlds", wt.num_vars(), n),
                None => println!(
                    "{} variables; more than 2^128 possible worlds",
                    wt.num_vars()
                ),
            }
        }
        "\\timing" => {
            // Bare `\timing` toggles; an explicit argument sets the state
            // (so `\timing off` in a script is idempotent).
            match arg {
                None => *timing = !*timing,
                Some("on") => *timing = true,
                Some("off") => *timing = false,
                Some(other) => {
                    println!("usage: \\timing [on|off]   (got `{other}`)");
                    return true;
                }
            }
            println!("Timing is {}.", if *timing { "on" } else { "off" });
        }
        "\\metrics" => print!("{}", maybms_obs::render_prometheus()),
        "\\latency" => print!("{}", maybms_obs::window::latency_report()),
        "\\trace" => match arg {
            None => println!(
                "Tracing is {}.",
                if maybms_obs::trace::enabled() { "on" } else { "off" }
            ),
            Some("on") => {
                maybms_obs::trace::set_enabled(true);
                println!("Tracing is on.");
            }
            Some("off") => {
                maybms_obs::trace::set_enabled(false);
                println!("Tracing is off.");
            }
            Some(rest) if rest == "dump" || rest.starts_with("dump ") => {
                let n = rest.strip_prefix("dump").unwrap_or("").trim();
                let n = if n.is_empty() { Ok(5) } else { n.parse::<usize>() };
                match n {
                    Ok(n) if n > 0 => {
                        let dump = maybms_obs::trace::render_recent(n);
                        if dump.is_empty() {
                            println!(
                                "(no spans recorded — is tracing on? try \\trace on)"
                            );
                        } else {
                            print!("{dump}");
                        }
                    }
                    _ => println!("usage: \\trace dump [N]   (N ≥ 1)"),
                }
            }
            Some(other) => {
                println!("usage: \\trace [on|off|dump [N]]   (got `{other}`)")
            }
        },
        "\\slowlog" => match arg {
            None => match maybms_obs::slow_log_threshold_ms() {
                Some(ms) => println!("Slow-query log: statements ≥ {ms} ms go to stderr."),
                None => println!("Slow-query log is off."),
            },
            Some("off") => {
                maybms_obs::set_slow_log_threshold(None);
                println!("Slow-query log is off.");
            }
            Some(n) => match n.parse::<u64>() {
                Ok(ms) => {
                    maybms_obs::set_slow_log_threshold(Some(ms));
                    println!("Slow-query log: statements ≥ {ms} ms go to stderr.");
                }
                Err(_) => println!("usage: \\slowlog [N|off]   (N in milliseconds)"),
            },
        },
        "\\checkpoint" => match db.checkpoint() {
            Ok(()) => match db.durability_status() {
                Some(status) => {
                    println!("CHECKPOINT — snapshot written to {}", status.location)
                }
                None => println!("CHECKPOINT"),
            },
            Err(e) => println!("error: {e}"),
        },
        "\\timeout" => match arg {
            None => match maybms_gov::statement_timeout_ms() {
                Some(ms) => println!("Statement timeout: {ms} ms."),
                None => println!("Statement timeout is off."),
            },
            Some("off") => {
                maybms_gov::set_statement_timeout_ms(None);
                println!("Statement timeout is off.");
            }
            Some(n) => match n.parse::<u64>() {
                Ok(ms) if ms > 0 => {
                    maybms_gov::set_statement_timeout_ms(Some(ms));
                    println!("Statement timeout: {ms} ms.");
                }
                _ => println!("usage: \\timeout [N|off]   (N in milliseconds, ≥ 1)"),
            },
        },
        "\\memlimit" => match arg {
            None => match maybms_gov::mem_budget_bytes() {
                Some(b) => println!("Memory budget: {} MiB per statement.", b >> 20),
                None => println!("Memory budget is off."),
            },
            Some("off") => {
                maybms_gov::set_mem_budget_mb(None);
                println!("Memory budget is off.");
            }
            Some(n) => match n.parse::<u64>() {
                Ok(mb) if mb > 0 => {
                    maybms_gov::set_mem_budget_mb(Some(mb));
                    println!("Memory budget: {mb} MiB per statement.");
                }
                _ => println!("usage: \\memlimit [N|off]   (N in MiB, ≥ 1)"),
            },
        },
        "\\cancel" => {
            let delay = match arg {
                None => Ok(0),
                Some(n) => n.parse::<u64>(),
            };
            match delay {
                Ok(ms) => {
                    maybms_gov::arm_cancel(ms);
                    println!(
                        "Armed: the next statement will be cancelled after {ms} ms."
                    );
                }
                Err(_) => println!("usage: \\cancel [N]   (N in milliseconds)"),
            }
        }
        "\\reopen" => match db.reopen() {
            Ok(r) => println!(
                "REOPEN — recovered {} table(s), replayed {} WAL record(s){}",
                r.tables,
                r.replayed,
                if r.truncated_tail { ", truncated a torn WAL tail" } else { "" }
            ),
            Err(e) => println!("error: {e}"),
        },
        "\\threads" => match arg {
            None => println!("Execution pool: {} thread(s)", maybms_par::current_threads()),
            Some(n) => match n.parse::<usize>() {
                Ok(n) if n > 0 => {
                    let pool = maybms_par::set_threads(n);
                    println!("Execution pool resized to {} thread(s)", pool.threads());
                }
                _ => println!("usage: \\threads N   (N ≥ 1)"),
            },
        },
        "\\i" => match arg {
            None => println!("usage: \\i FILE"),
            Some(path) => match std::fs::read_to_string(path) {
                Ok(script) => match db.run_script(&script) {
                    Ok(results) => println!("{} statements executed", results.len()),
                    Err(e) => println!("error: {e}"),
                },
                Err(e) => println!("error reading {path}: {e}"),
            },
        },
        other => println!("unknown meta command `{other}` — try \\help"),
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_statement_splits_on_semicolons() {
        let mut buf = "select 1; select 2;".to_string();
        assert_eq!(take_statement(&mut buf).as_deref(), Some("select 1;"));
        assert_eq!(take_statement(&mut buf).as_deref(), Some("select 2;"));
        assert_eq!(take_statement(&mut buf), None);
    }

    #[test]
    fn take_statement_ignores_semicolons_in_strings() {
        let mut buf = "insert into t values ('a;b');".to_string();
        let stmt = take_statement(&mut buf).unwrap();
        assert!(stmt.contains("'a;b'"));
        assert!(buf.is_empty());
    }

    #[test]
    fn take_statement_handles_escaped_quotes() {
        let mut buf = "insert into t values ('it''s; fine');".to_string();
        let stmt = take_statement(&mut buf).unwrap();
        assert!(stmt.contains("it''s; fine"));
    }

    #[test]
    fn take_statement_waits_for_terminator() {
        let mut buf = "select 1".to_string();
        assert_eq!(take_statement(&mut buf), None);
        assert_eq!(buf, "select 1");
    }

    #[test]
    fn take_statement_skips_empty_statements() {
        let mut buf = "; ;select 1;".to_string();
        assert_eq!(take_statement(&mut buf).as_deref(), Some("select 1;"));
    }

    #[test]
    fn take_statement_ignores_quotes_and_semicolons_in_comments() {
        // An unbalanced quote in a `--` comment (e.g. "SIGMOD'09") must
        // not poison the string-state tracking for the rest of the file.
        let mut buf = "-- it's a comment; really\nselect 1;\n".to_string();
        let stmt = take_statement(&mut buf).unwrap();
        assert!(stmt.contains("select 1"), "{stmt}");
        let mut buf = "select -- trailing; note\n 2;".to_string();
        assert_eq!(take_statement(&mut buf).as_deref(), Some("select -- trailing; note\n 2;"));
    }

    #[test]
    fn meta_commands_do_not_quit_except_q() {
        let mut db = MayBms::new();
        let mut timing = false;
        assert!(handle_meta("\\d", &mut db, &mut timing));
        assert!(handle_meta("\\w", &mut db, &mut timing));
        assert!(handle_meta("\\timing", &mut db, &mut timing));
        assert!(timing);
        assert!(handle_meta("\\metrics", &mut db, &mut timing));
        assert!(handle_meta("\\latency", &mut db, &mut timing));
        assert!(handle_meta("\\slowlog", &mut db, &mut timing));
        assert!(handle_meta("\\nonsense", &mut db, &mut timing));
        assert!(!handle_meta("\\q", &mut db, &mut timing));
    }

    #[test]
    fn trace_meta_toggles_and_dumps() {
        let mut db = MayBms::new();
        let mut timing = false;
        let before = maybms_obs::trace::enabled();
        assert!(handle_meta("\\trace on", &mut db, &mut timing));
        assert!(maybms_obs::trace::enabled());
        execute("create table trace_meta_t (a bigint);", &mut db, false);
        assert!(handle_meta("\\trace dump", &mut db, &mut timing));
        assert!(handle_meta("\\trace dump 2", &mut db, &mut timing));
        assert!(handle_meta("\\trace dump potato", &mut db, &mut timing));
        assert!(handle_meta("\\trace off", &mut db, &mut timing));
        assert!(!maybms_obs::trace::enabled());
        assert!(handle_meta("\\trace", &mut db, &mut timing));
        assert!(handle_meta("\\trace potato", &mut db, &mut timing));
        maybms_obs::trace::set_enabled(before);
    }

    #[test]
    fn timing_meta_accepts_explicit_state() {
        // `\timing off` when already off must stay off (the old bare
        // toggle flipped it back on); bare `\timing` still toggles.
        let mut db = MayBms::new();
        let mut timing = false;
        assert!(handle_meta("\\timing off", &mut db, &mut timing));
        assert!(!timing);
        assert!(handle_meta("\\timing on", &mut db, &mut timing));
        assert!(timing);
        assert!(handle_meta("\\timing on", &mut db, &mut timing));
        assert!(timing);
        assert!(handle_meta("\\timing", &mut db, &mut timing));
        assert!(!timing);
        // An unknown argument is reported and changes nothing.
        assert!(handle_meta("\\timing potato", &mut db, &mut timing));
        assert!(!timing);
    }

    #[test]
    fn slowlog_meta_sets_and_clears_threshold() {
        let mut db = MayBms::new();
        let mut timing = false;
        assert!(handle_meta("\\slowlog 150", &mut db, &mut timing));
        assert_eq!(maybms_obs::slow_log_threshold_ms(), Some(150));
        assert!(handle_meta("\\slowlog off", &mut db, &mut timing));
        assert_eq!(maybms_obs::slow_log_threshold_ms(), None);
        assert!(handle_meta("\\slowlog potato", &mut db, &mut timing));
        assert_eq!(maybms_obs::slow_log_threshold_ms(), None);
    }

    #[test]
    fn threads_meta_command_resizes_pool() {
        let mut db = MayBms::new();
        let mut timing = false;
        let before = maybms_par::current_threads();
        assert!(handle_meta("\\threads", &mut db, &mut timing));
        assert!(handle_meta("\\threads 2", &mut db, &mut timing));
        assert_eq!(maybms_par::current_threads(), 2);
        // Invalid arguments are reported, not applied.
        assert!(handle_meta("\\threads 0", &mut db, &mut timing));
        assert!(handle_meta("\\threads potato", &mut db, &mut timing));
        assert_eq!(maybms_par::current_threads(), 2);
        maybms_par::set_threads(before);
    }

    #[test]
    fn governor_meta_commands_set_and_clear_limits() {
        // Large values: these settings are process-wide, and sibling
        // tests in this binary run statements concurrently — a 60 s
        // timeout or 1 GiB budget can never trip them.
        let mut db = MayBms::new();
        let mut timing = false;
        assert!(handle_meta("\\timeout 60000", &mut db, &mut timing));
        assert_eq!(maybms_gov::statement_timeout_ms(), Some(60000));
        assert!(handle_meta("\\timeout", &mut db, &mut timing));
        assert!(handle_meta("\\timeout off", &mut db, &mut timing));
        assert_eq!(maybms_gov::statement_timeout_ms(), None);
        assert!(handle_meta("\\timeout potato", &mut db, &mut timing));
        assert_eq!(maybms_gov::statement_timeout_ms(), None);

        assert!(handle_meta("\\memlimit 1024", &mut db, &mut timing));
        assert_eq!(maybms_gov::mem_budget_bytes(), Some(1024 << 20));
        assert!(handle_meta("\\memlimit off", &mut db, &mut timing));
        assert_eq!(maybms_gov::mem_budget_bytes(), None);

        assert!(handle_meta("\\cancel 60000", &mut db, &mut timing));
        assert_eq!(maybms_gov::armed_cancel_ms(), Some(60000));
        // Consume the one-shot arming so no later statement inherits it
        // (the 60 s watchdog then targets an already-finished epoch).
        drop(maybms_gov::begin_statement());
        assert_eq!(maybms_gov::armed_cancel_ms(), None);
        assert!(handle_meta("\\cancel potato", &mut db, &mut timing));
        assert_eq!(maybms_gov::armed_cancel_ms(), None);

        // \reopen without a data directory is a clean error.
        assert!(handle_meta("\\reopen", &mut db, &mut timing));
    }

    #[test]
    fn execute_reports_errors_without_panicking() {
        let mut db = MayBms::new();
        execute("select * from missing;", &mut db, false);
        execute("create table t (a bigint);", &mut db, true);
        execute("select a from t;", &mut db, false);
    }

    fn args(list: &[&str]) -> impl Iterator<Item = String> {
        list.iter().map(|s| s.to_string()).collect::<Vec<_>>().into_iter()
    }

    #[test]
    fn open_database_parses_arguments() {
        assert!(open_database(args(&[])).is_ok());
        assert!(open_database(args(&["--data-dir"])).is_err());
        assert!(open_database(args(&["--bogus"])).is_err());
        assert!(open_database(args(&["--metrics-addr"])).is_err());
        let (_, config) =
            open_database(args(&["--metrics-addr=127.0.0.1:0"])).unwrap();
        assert_eq!(config.metrics_addr.as_deref(), Some("127.0.0.1:0"));
        let (_, config) =
            open_database(args(&["--metrics-addr", "127.0.0.1:9187"])).unwrap();
        assert_eq!(config.metrics_addr.as_deref(), Some("127.0.0.1:9187"));
    }

    #[test]
    fn checkpoint_on_in_memory_database_is_a_clean_error() {
        let mut db = MayBms::new();
        let mut timing = false;
        // Must print an error and keep the shell alive, not panic.
        assert!(handle_meta("\\checkpoint", &mut db, &mut timing));
    }

    #[test]
    fn data_dir_roundtrip_survives_restart() {
        let dir = std::env::temp_dir()
            .join(format!("maybms-shell-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let dir_arg = format!("--data-dir={}", dir.display());
        {
            let (mut db, _) = open_database(args(&[&dir_arg])).unwrap();
            db.run("create table t (a bigint)").unwrap();
            db.run("insert into t values (7)").unwrap();
            let mut timing = false;
            assert!(handle_meta("\\checkpoint", &mut db, &mut timing));
            db.run("insert into t values (8)").unwrap(); // WAL tail on top
        }
        let (mut db, _) = open_database(args(&[&dir_arg])).unwrap();
        print_banner(&db, None); // must not panic on a durable database
        let r = db.query("select a from t").unwrap();
        assert_eq!(r.len(), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_data_dir_is_a_clean_error_with_offset() {
        let dir = std::env::temp_dir()
            .join(format!("maybms-shell-corrupt-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("wal"), b"not a wal at all").unwrap();
        let dir_arg = format!("--data-dir={}", dir.display());
        let err = open_database(args(&[&dir_arg])).unwrap_err();
        assert!(err.contains("cannot open data directory"), "{err}");
        assert!(err.contains("wal"), "{err}");
        assert!(err.contains("byte 0"), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
