//! # MayBMS — a probabilistic database management system (Rust reproduction)
//!
//! A from-scratch reproduction of *MayBMS: A Probabilistic Database
//! Management System* (Huang, Antova, Koch, Olteanu — SIGMOD 2009): the
//! U-relational representation system, the uncertainty-aware SQL dialect
//! (`repair key`, `pick tuples`, `conf`, `aconf`, `tconf`, `possible`,
//! `esum`, `ecount`, `argmax`), and the full portfolio of confidence
//! computation engines (exact decomposition trees, Karp–Luby + DKLR
//! optimal Monte Carlo, SPROUT safe plans) on top of an in-memory
//! relational engine.
//!
//! This facade crate re-exports the public API of the workspace:
//!
//! * [`MayBms`] — the database: SQL in, relations out;
//! * [`engine`] — the relational substrate;
//! * [`sql`] — the parser/AST;
//! * [`urel`] — U-relations, world-set descriptors, `repair-key`;
//! * [`conf`] — confidence computation;
//! * [`core`] — planner/executor internals;
//! * [`store`] — durability: write-ahead log, checkpoints, recovery.
//!
//! ## Quickstart
//!
//! ```
//! use maybms::MayBms;
//!
//! let mut db = MayBms::new();
//! db.run("create table coin (face text, w double precision)").unwrap();
//! db.run("insert into coin values ('heads', 0.5), ('tails', 0.5)").unwrap();
//! // One nondeterministic coin: repair the empty key — exactly one face
//! // survives per possible world, weighted by w.
//! let r = db.query(
//!     "select face, conf() as p from (repair key in coin weight by w) c group by face",
//! ).unwrap();
//! assert_eq!(r.len(), 2);
//! let p0 = r.tuples()[0].value(1).as_f64().unwrap();
//! assert!((p0 - 0.5).abs() < 1e-9);
//! ```

pub use maybms_conf as conf;
pub use maybms_core as core;
pub use maybms_engine as engine;
pub use maybms_par as par;
pub use maybms_pipe as pipe;
pub use maybms_sql as sql;
pub use maybms_store as store;
pub use maybms_urel as urel;

pub use maybms_core::{ConfContext, CoreError, MayBms, QueryOutput, Result, StatementResult};
